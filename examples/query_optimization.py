"""Classical query optimization: containment, minimization, decompositions.

The machinery around the paper — Chandra–Merlin homomorphisms (the paper's
reference [5]), acyclicity detection with join trees, and the treewidth
fallback for cyclic queries — applied to concrete optimization questions,
ending with the adaptive ``QueryEngine`` that automates the dispatch:
analyze the structure, plan with a cost model, cache the plan by shape,
execute with the evaluator whose tractability guarantee applies.

Run:  python examples/query_optimization.py
"""

from repro import Database, NaiveEvaluator, QueryEngine, parse_query
from repro.evaluation import TreewidthEvaluator
from repro.hypergraph import JoinTree
from repro.query import are_equivalent, find_homomorphism, is_contained_in, minimize


def main() -> None:
    print("=== containment via homomorphisms ===")
    broad = parse_query("Q(x) :- E(x, y).")
    narrow = parse_query("Q(x) :- E(x, y), E(y, z), F(z).")
    print("broad :", broad)
    print("narrow:", narrow)
    print("narrow ⊆ broad?", is_contained_in(narrow, broad))
    print("broad ⊆ narrow?", is_contained_in(broad, narrow))
    witness = find_homomorphism(broad, narrow)
    print("witnessing homomorphism broad → narrow:",
          {v.name: repr(t) for v, t in witness.items()})

    print("\n=== minimization (computing the core) ===")
    redundant = parse_query(
        "Q(x) :- E(x, y), E(x, z), E(y, w), E(z, w2)."
    )
    core = minimize(redundant)
    print("original:", redundant, f"({len(redundant.atoms)} atoms)")
    print("core    :", core, f"({len(core.atoms)} atoms)")
    print("equivalent?", are_equivalent(redundant, core))

    db = Database.from_tuples({"E": [(1, 2), (2, 3), (1, 4)], "F": [(3,)]})
    engine = NaiveEvaluator()
    print("same answers on data?",
          engine.evaluate(redundant, db) == engine.evaluate(core, db))

    print("\n=== plan structure: join trees for acyclic queries ===")
    acyclic = parse_query("Q(a, d) :- R(a, b), S(b, c), T(c, d), U(b, e).")
    print("query:", acyclic)
    print("acyclic?", acyclic.is_acyclic())
    tree = JoinTree.from_hypergraph(acyclic.hypergraph())
    print("join tree:", tree)
    print("running intersection holds?", tree.verify_running_intersection())

    print("\n=== cyclic queries: the treewidth fallback ===")
    cyclic = parse_query("Q() :- E(x, y), E(y, z), E(z, w), E(w, x).")
    print("query:", cyclic, "— acyclic?", cyclic.is_acyclic())
    tw = TreewidthEvaluator()
    print("decomposition width:", tw.width(cyclic))
    db2 = Database.from_tuples(
        {"E": [(1, 2), (2, 3), (3, 4), (4, 1), (2, 1)]}
    )
    print("4-cycle present?", tw.decide(cyclic, db2))
    print("naive agrees?", NaiveEvaluator().decide(cyclic, db2) == tw.decide(cyclic, db2))

    print("\n=== the adaptive engine: all of the above, automatically ===")
    engine = QueryEngine()
    chain_db = Database.from_tuples(
        {
            "R": [(1, 2), (2, 3)],
            "S": [(2, 5), (3, 5)],
            "T": [(5, 7)],
            "U": [(2, 9), (3, 9)],
        }
    )
    print(engine.explain(acyclic, chain_db))
    print("answers:", sorted(engine.execute(acyclic, chain_db).rows))
    print()
    print(engine.explain(cyclic, db2))
    print("engine agrees with naive?",
          engine.execute(cyclic, db2)
          == engine.execute(cyclic, db2, evaluator="naive"))

    # Parameterized execution: every binding of the same query shape hits
    # the same cached plan (the second explain reports a cache hit).
    print("\n=== plan-cache reuse across constant bindings ===")
    for start in (1, 2):
        bound = acyclic.decision_instance((start, 7))
        print(f"t=({start}, 7) ∈ Q(d)?", engine.decide(bound, chain_db))
    print(engine.explain(acyclic.decision_instance((1, 7)), chain_db))


if __name__ == "__main__":
    main()
