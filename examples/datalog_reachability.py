"""Datalog: recursion, fixed arity, and the W[1] oracle argument (§4).

Computes transitive closure and same-generation queries with the naive and
semi-naive engines, then re-runs the evaluation through the explicit
conjunctive-query oracle — counting the oracle calls that witness the
paper's "polynomial number of W[1] problems" membership argument.

Run:  python examples/datalog_reachability.py
"""

from repro import Database, DatalogEvaluator, parse_program
from repro.reductions import evaluate_via_cq_oracle, w1_cq_oracle


def main() -> None:
    db = Database.from_tuples(
        {"E": [(1, 2), (2, 3), (3, 4), (4, 2), (5, 1)]}
    )

    print("=== transitive closure ===")
    program = parse_program(
        """
        T(x, y) :- E(x, y).
        T(x, y) :- E(x, z), T(z, y).
        """
    )
    engine = DatalogEvaluator()
    closure = engine.evaluate(program, db, method="seminaive")
    print("T =", sorted(closure.rows))
    assert closure == engine.evaluate(program, db, method="naive")

    print("\n=== the same evaluation through a CQ decision oracle ===")
    goal, stats = evaluate_via_cq_oracle(program, db)
    assert goal.rows == closure.rows
    n = len(db.domain())
    print(f"oracle calls: {stats.calls} "
          f"(≤ stages·rules·n^r = {stats.stages}·{len(program.rules)}·{n}^2)")
    print(f"max oracle-query parameters: q = {stats.max_parameter_q}, "
          f"v = {stats.max_parameter_v}")

    print("\n=== routing each oracle call through the W[1] machinery ===")
    goal_w1, stats_w1 = evaluate_via_cq_oracle(program, db, w1_cq_oracle)
    assert goal_w1.rows == closure.rows
    print(f"same fixpoint via CQ → weighted 2-CNF → independent-set search "
          f"({stats_w1.calls} oracle calls)")

    print("\n=== same generation ===")
    sg = parse_program(
        """
        SG(x, y) :- F(p, x), F(p, y).
        SG(x, y) :- F(p, x), F(q, y), SG(p, q).
        """
    )
    family = Database.from_tuples(
        {"F": [(1, 2), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7)]}
    )
    result = DatalogEvaluator().evaluate(sg, family)
    cousins = [(a, b) for a, b in sorted(result.rows) if a < b]
    print("same-generation pairs:", cousins)


if __name__ == "__main__":
    main()
