"""A tour of the W hierarchy through the paper's reductions.

Walks the classification table bottom to top — W[1] (clique/conjunctive),
W[SAT] (weighted formula/positive), W[P] (weighted circuit/first-order) —
running each reduction on a concrete instance and printing the verdicts,
plus the Figure 1 partial order and the Theorem 1 table itself.

Run:  python examples/parametric_tour.py
"""

from repro.benchlib import print_table
from repro.circuits import CircuitBuilder, fand, fnot, for_, var
from repro.parametric import theorem1_table
from repro.parametric.problems import (
    CliqueInstance,
    WeightedCircuitInstance,
    WeightedFormulaInstance,
)
from repro.reductions import (
    CIRCUIT_TO_FO_V,
    CLIQUE_TO_CQ_Q,
    CQ_TO_WEIGHTED_2CNF,
    PRENEX_POSITIVE_TO_WSAT,
    WSAT_TO_POSITIVE,
    clique_to_cq,
    wsat_to_positive,
)
from repro.workloads import random_graph


def main() -> None:
    print("The Theorem 1 classification table:")
    print_table(
        ("problem", "parameter", "classification"),
        theorem1_table().rows(),
    )

    print("\n--- W[1]: clique ⇄ conjunctive queries ---")
    graph = random_graph(9, 0.55, seed=4)
    clique_instance = CliqueInstance(graph, 3)
    record = CLIQUE_TO_CQ_Q.verify([clique_instance])[0]
    print(f"clique (n={graph.num_nodes}, k=3): {record.expected}; "
          f"via query evaluation: {record.produced}; q' = {record.parameter_out}")
    query_instance = clique_to_cq(clique_instance)
    record = CQ_TO_WEIGHTED_2CNF.verify([query_instance])[0]
    print(f"query → weighted 2-CNF: {record.produced}; k' = {record.parameter_out}")

    print("\n--- W[SAT]: weighted formulas ⇄ positive queries ---")
    formula = for_(fand(var("x1"), var("x2")), fand(fnot(var("x3")), var("x4")))
    wsat_instance = WeightedFormulaInstance(formula, 2)
    record = WSAT_TO_POSITIVE.verify([wsat_instance])[0]
    print(f"weighted formula SAT (k=2): {record.expected}; "
          f"via positive query: {record.produced}; v' = {record.parameter_out}")
    positive_instance = wsat_to_positive(wsat_instance)
    record = PRENEX_POSITIVE_TO_WSAT.verify([positive_instance])[0]
    print(f"prenex positive → weighted formula: {record.produced}; "
          f"k' = {record.parameter_out}")

    print("\n--- W[P]: monotone circuits → first-order queries ---")
    builder = CircuitBuilder()
    xs = [builder.input(f"i{j}") for j in range(4)]
    circuit = builder.build(
        builder.or_(builder.and_(xs[0], xs[1]), builder.and_(xs[2], xs[3]))
    )
    for k in (1, 2):
        record = CIRCUIT_TO_FO_V.verify([WeightedCircuitInstance(circuit, k)])[0]
        print(f"weighted circuit SAT (k={k}): {record.expected}; "
              f"via FO query with v = k+2 = {record.parameter_out}: {record.produced}")

    print("\n--- Figure 1: the four parametrizations ---")
    from repro.parametric import FIGURE_1_ARCS

    for lower, upper in FIGURE_1_ARCS:
        print(f"  {lower.label}  ≤  {upper.label}   (identity reduction)")


if __name__ == "__main__":
    main()
