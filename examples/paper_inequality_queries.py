"""The paper's §5 running examples, evaluated by the Theorem 2 algorithm.

* employees working on more than one project,
* students taking courses outside their department,
* employees earning more than their manager (comparisons — evaluated by
  the generic engine, with the Klug consistency/collapse preprocessing).

Run:  python examples/paper_inequality_queries.py
"""

from repro import NaiveEvaluator
from repro.comparisons import collapse_equalities, is_acyclic_with_comparisons
from repro.inequalities import (
    AcyclicInequalityEvaluator,
    RandomHashFamily,
    build_engine,
    partition_inequalities,
)
from repro.workloads import (
    employees_projects_database,
    employees_projects_query,
    salary_database,
    salary_query,
    students_courses_database,
    students_courses_query,
)


def show_partition(query) -> None:
    partition = partition_inequalities(query)
    print(f"  I1 (hashed): {list(partition.i1)}")
    print(f"  I2 (pushed into selections): {list(partition.i2)}")
    print(f"  V1 = {[v.name for v in partition.v1]}, k = {partition.k}")


def main() -> None:
    naive = NaiveEvaluator()
    deterministic = AcyclicInequalityEvaluator()          # perfect family
    monte_carlo = AcyclicInequalityEvaluator(
        RandomHashFamily(confidence=4.0, seed=0)
    )

    print("=== employees on more than one project ===")
    query = employees_projects_query()
    db = employees_projects_database(employees=12, projects=5, seed=1)
    print("query:", query)
    show_partition(query)
    answers = deterministic.evaluate(query, db)
    print("answers (deterministic):", sorted(answers.rows))
    print("matches naive engine?", answers == naive.evaluate(query, db))
    print("Monte-Carlo decide:", monte_carlo.decide(query, db))

    print("\n=== students taking courses outside their department ===")
    query = students_courses_query()
    db = students_courses_database(students=10, courses=6, seed=2)
    print("query:", query)
    show_partition(query)
    engine = build_engine(query, db)
    print("join tree:", engine.tree)
    answers = deterministic.evaluate(query, db)
    print("answers:", sorted(answers.rows))
    print("matches naive engine?", answers == naive.evaluate(query, db))

    print("\n=== employees earning more than their manager (< comparison) ===")
    query = salary_query()
    db = salary_database(employees=10, seed=3)
    print("query:", query)
    print("acyclic with comparisons?", is_acyclic_with_comparisons(query))
    collapsed = collapse_equalities(query)
    print("after equality collapse:", collapsed.query)
    answers = naive.evaluate(query, db)
    print("answers:", sorted(answers.rows))


if __name__ == "__main__":
    main()
