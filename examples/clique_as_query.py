"""Theorem 1 in action: solving clique through query evaluation and back.

The pipeline of the conjunctive row of the classification table:

  clique (G, k)
    → the Boolean query P ← ⋀_{i<j} G(x_i, x_j)     (hardness direction)
    → a weighted 2-CNF with k' = #atoms              (membership direction)
    → a weight-k' witness, decoded back into a clique.

Run:  python examples/clique_as_query.py
"""

from repro import NaiveEvaluator
from repro.circuits.weighted_sat import negative_cnf_weighted_satisfiable
from repro.parametric.problems import CliqueInstance, find_clique
from repro.reductions import clique_to_cq, cq_to_weighted_2cnf
from repro.workloads import planted_clique_graph


def main() -> None:
    graph, planted = planted_clique_graph(n=14, k=4, p=0.25, seed=8)
    print(f"graph: {graph}, planted 4-clique: {planted}")

    # --- hardness direction: clique as a conjunctive query ---------------
    instance = clique_to_cq(CliqueInstance(graph, 4))
    print("\nthe clique query:")
    print(" ", instance.query)
    print(f"  q = {instance.query.query_size()}, v = {instance.query.num_variables()}")

    naive = NaiveEvaluator()
    print("query nonempty (naive engine)?", naive.decide(instance.query, instance.database))

    # --- membership direction: the query as weighted 2-CNF ---------------
    result = cq_to_weighted_2cnf(instance.query, instance.database)
    cnf = result.instance.cnf
    print(f"\nweighted 2-CNF: {len(cnf.clauses)} clauses over "
          f"{len(cnf.variables())} z-variables, target weight k' = {result.instance.k}")
    print("all literals negative?", cnf.all_literals_negative())

    witness = negative_cnf_weighted_satisfiable(
        cnf, result.instance.k, groups=result.groups
    )
    print("weight-k' witness found?", witness is not None)

    # --- decode the witness back into a clique ---------------------------
    valuation = result.decode(witness)
    clique_nodes = tuple(sorted(set(valuation.values())))
    print("decoded node set:", clique_nodes)
    print("is a clique?", graph.is_clique(clique_nodes))

    # Cross-check against the direct branch-and-bound solver.
    direct = find_clique(graph, 4)
    print("direct solver found:", direct)


if __name__ == "__main__":
    main()
