"""Quickstart: build a database, write queries, evaluate them five ways.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    NaiveEvaluator,
    YannakakisEvaluator,
    parse_query,
)
from repro.evaluation import TreewidthEvaluator
from repro.inequalities import AcyclicInequalityEvaluator


def main() -> None:
    # A small directed graph as a database with one binary relation E.
    db = Database.from_tuples(
        {"E": [(1, 2), (2, 3), (3, 4), (1, 3), (4, 2)]}
    )

    # Rule notation: head :- body.  Lowercase identifiers are variables.
    two_hop = parse_query("Q(x, z) :- E(x, y), E(y, z).")

    naive = NaiveEvaluator()          # the generic n^O(q) backtracking engine
    yannakakis = YannakakisEvaluator()  # polynomial for acyclic queries

    print("query:", two_hop)
    print("acyclic?", two_hop.is_acyclic())
    print("naive      :", sorted(naive.evaluate(two_hop, db).rows))
    print("yannakakis :", sorted(yannakakis.evaluate(two_hop, db).rows))

    # The decision problem: is a specific tuple in the answer?
    print("(1, 3) in Q(d)?", yannakakis.contains(two_hop, db, (1, 3)))
    print("(3, 1) in Q(d)?", yannakakis.contains(two_hop, db, (3, 1)))

    # Inequalities (Theorem 2): nodes with two distinct out-neighbours.
    branching = parse_query("B(x) :- E(x, y), E(x, z), y != z.")
    theorem2 = AcyclicInequalityEvaluator()
    print("branching nodes:", sorted(theorem2.evaluate(branching, db).rows))

    # Cyclic queries still run on the naive engine or, for bounded
    # treewidth, on the decomposition engine.
    triangle = parse_query("T() :- E(x, y), E(y, z), E(z, x).")
    print("triangle?", naive.decide(triangle, db))
    tw = TreewidthEvaluator()
    print("triangle via treewidth engine?", tw.decide(triangle, db),
          f"(width {tw.width(triangle)})")


if __name__ == "__main__":
    main()
