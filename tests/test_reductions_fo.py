"""Theorem 1(3) reductions: monotone circuits into first-order queries."""

import pytest

from repro.circuits import CircuitBuilder, check_alternation, level_alternate
from repro.errors import ReductionError
from repro.evaluation import FirstOrderEvaluator
from repro.parametric.problems import (
    AlternatingWeightedCircuitInstance,
    WeightedCircuitInstance,
)
from repro.reductions import (
    ALTERNATING_CIRCUIT_TO_FO,
    CIRCUIT_TO_FO_V,
    circuit_to_fo,
    circuit_to_fo_query,
    make_depth_t_reduction,
    wiring_database,
)


def two_pair_circuit():
    builder = CircuitBuilder()
    xs = [builder.input(f"i{j}") for j in range(4)]
    return builder.build(
        builder.or_(builder.and_(xs[0], xs[1]), builder.and_(xs[2], xs[3]))
    )


def and_or_circuit():
    builder = CircuitBuilder()
    xs = [builder.input(f"i{j}") for j in range(3)]
    return builder.build(builder.and_(builder.or_(xs[0], xs[1]), xs[2]))


def deep_circuit():
    builder = CircuitBuilder()
    xs = [builder.input(f"i{j}") for j in range(4)]
    layer1 = builder.or_(builder.and_(xs[0], xs[1]), xs[2])
    layer2 = builder.and_(layer1, builder.or_(xs[2], xs[3]))
    return builder.build(builder.or_(layer2, builder.and_(xs[0], xs[3])))


def suite():
    circuits = [two_pair_circuit(), and_or_circuit(), deep_circuit()]
    return [
        WeightedCircuitInstance(c, k) for c in circuits for k in (1, 2, 3)
    ]


class TestCircuitToFO:
    def test_verified_parameter_v(self):
        records = CIRCUIT_TO_FO_V.verify(suite())
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_v_is_k_plus_2(self):
        instance = circuit_to_fo(WeightedCircuitInstance(two_pair_circuit(), 2))
        assert instance.query.num_variables() == 4

    def test_query_size_linear_in_t_and_k(self):
        builder = CircuitBuilder()
        xs = [builder.input(f"i{j}") for j in range(2)]
        current = builder.and_(xs[0], xs[1])
        for _ in range(3):
            current = builder.and_(builder.or_(current, xs[0]), xs[1])
        tall = builder.build(builder.or_(current, xs[0]))
        query1, _ = circuit_to_fo_query(and_or_circuit(), 1)
        query2, _ = circuit_to_fo_query(tall, 1)
        # deeper circuit => strictly bigger query, but still small.
        assert query1.query_size() < query2.query_size() < 300

    def test_fixed_schema_single_binary_relation(self):
        instance = circuit_to_fo(WeightedCircuitInstance(and_or_circuit(), 1))
        assert instance.database.names() == ("C",)

    def test_wiring_self_loops_on_inputs(self):
        circuit = and_or_circuit()
        db = wiring_database(circuit)
        for name in circuit.inputs:
            assert (name, name) in db["C"]

    def test_depth_t_reduction_verified(self):
        red = make_depth_t_reduction(2)
        records = red.verify(
            [WeightedCircuitInstance(two_pair_circuit(), k) for k in (1, 2)]
        )
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_depth_t_rejects_deeper(self):
        red = make_depth_t_reduction(2)
        deep = WeightedCircuitInstance(deep_circuit(), 1)
        with pytest.raises(ReductionError):
            red.verify([deep])

    def test_non_monotone_rejected(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        circuit = builder.build(builder.not_(a))
        with pytest.raises(ReductionError):
            circuit_to_fo(WeightedCircuitInstance(circuit, 1))

    def test_k_larger_than_inputs_rejected(self):
        with pytest.raises(ReductionError):
            circuit_to_fo(WeightedCircuitInstance(and_or_circuit(), 4))

    def test_direct_fo_semantics(self):
        """θ construction: FO truth tracks weighted satisfiability."""
        circuit = two_pair_circuit()
        evaluator = FirstOrderEvaluator()
        for k in (1, 2):
            query, db = circuit_to_fo_query(circuit, k)
            from repro.circuits import weighted_circuit_satisfiable

            expected = weighted_circuit_satisfiable(circuit, k) is not None
            assert evaluator.decide(query, db) == expected


class TestAlternatingExtension:
    def make_instance(self, blocks, weights):
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input("b")
        c = builder.input("c")
        d = builder.input("d")
        circuit = builder.build(
            builder.or_(
                builder.and_(a, c),
                builder.and_(a, d),
                builder.and_(b, c),
            )
        )
        return AlternatingWeightedCircuitInstance(circuit, blocks, weights)

    def test_verified_true_and_false_cases(self):
        yes = self.make_instance((("a", "b"), ("c", "d")), (1, 1))
        no = self.make_instance((("b",), ("c", "d")), (1, 1))
        records = ALTERNATING_CIRCUIT_TO_FO.verify([yes, no])
        assert records[0].expected is True
        assert records[1].expected is False
        assert all(r.answers_match for r in records)

    def test_single_existential_block(self):
        instance = self.make_instance((("a", "b"),), (1,))
        records = ALTERNATING_CIRCUIT_TO_FO.verify([instance])
        assert all(r.answers_match for r in records)


class TestLevelAlternateIntegration:
    def test_all_suite_circuits_normalize(self):
        for instance in suite():
            leveled, t = level_alternate(instance.circuit)
            assert check_alternation(leveled)
            assert leveled.level(leveled.output) == 2 * t
