"""In-process protocol tests: a real TCP server on localhost, asyncio end.

Covers the wire facade (every op against sequential-engine references),
the structured error taxonomy (connections survive every failure), the
per-client fairness and backpressure semantics the FairQueue provides,
graceful drain, and both client flavors.  The *cross-process* stress —
the same server in a real subprocess — lives in
``test_protocol_cross_process.py``.
"""

import asyncio

import pytest

from repro import QueryEngine
from repro.protocol import (
    AsyncQueryClient,
    QueryClient,
    QueryServer,
    RemoteQueryError,
)
from repro.workloads import chain_database, star_database
from repro.operations import DECIDE, EXECUTE, operations_of
from repro.workloads.queries import path_query, star_query

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def chain_db():
    return chain_database(layers=5, width=32, p=0.3, seed=11)


@pytest.fixture(scope="module")
def star_db():
    return star_database(3, 120, seed=5)


@pytest.fixture(scope="module")
def sequential():
    return QueryEngine(parallel=False)


def run(coroutine):
    return asyncio.run(coroutine)


class TestFacadeOverTheWire:
    def test_every_op_matches_sequential(self, chain_db, star_db, sequential):
        query = path_query(4, head_arity=1)
        star = star_query(3)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:12]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            async with QueryServer(
                {"chain": chain_db, "star": star_db}, batch_window=0.002
            ) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    executed = await client.execute(query, "chain")
                    decided = await client.decide(star, "star")
                    batch = await client.run_batch(operations_of(EXECUTE, instances), "chain")
                    decisions = await client.run_batch(operations_of(DECIDE, instances), "chain")
                    rendering = await client.explain(query, "chain")
                    stats = await client.stats()
                    assert await client.ping()
            return executed, decided, batch, decisions, rendering, stats

        executed, decided, batch, decisions, rendering, stats = run(main())
        want = sequential.execute(query, chain_db)
        assert executed == want
        assert executed.rows == want.rows  # byte-identical content
        assert decided == sequential.decide(star, star_db)
        assert batch == [sequential.execute(q, chain_db) for q in instances]
        assert decisions == [sequential.decide(q, chain_db) for q in instances]
        assert "QueryPlan" in rendering
        assert stats["service"]["completed"] >= 2 + 2 * len(instances)
        assert stats["clients"][0]["client"] == "conn-1"

    def test_text_queries_over_the_wire(self, chain_db, sequential):
        text = "Q(x, y) :- E(x, y)."

        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    return await client.execute(text, "chain")

        from repro import parse_query

        assert run(main()) == sequential.execute(parse_query(text), chain_db)

    def test_sync_client_from_thread(self, chain_db, sequential):
        query = path_query(3, head_arity=1)

        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address

                def work():
                    with QueryClient(host, port) as client:
                        result = client.execute(query, "chain")
                        decision = client.decide(query, "chain")
                        return result, decision

                return await asyncio.to_thread(work)

        result, decision = run(main())
        assert result == sequential.execute(query, chain_db)
        assert decision == sequential.decide(query, chain_db)


class TestErrorTaxonomy:
    def test_structured_errors_and_surviving_connection(self, chain_db):
        query = path_query(3, head_arity=1)

        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    observed = {}
                    for label, coroutine in [
                        ("parse", client.execute("Q(x) :- ", "chain")),
                        ("unknown_db", client.execute(query, "nope")),
                        ("schema", client.execute("Q(x) :- Missing(x).", "chain")),
                        ("unsafe", client.execute("Q(z) :- E(x, y).", "chain")),
                    ]:
                        with pytest.raises(RemoteQueryError) as excinfo:
                            await coroutine
                        observed[label] = excinfo.value
                    # The connection survived four failures.
                    result = await client.execute(query, "chain")
                    stats = await client.stats()
            return observed, result, stats

        observed, result, stats = run(main())
        assert observed["parse"].code == "parse_error"
        assert observed["parse"].detail["line"] == 1
        assert observed["parse"].detail["position"] >= 0
        assert observed["unknown_db"].code == "unknown_database"
        assert observed["schema"].code == "schema_error"
        assert observed["unsafe"].code == "invalid_query"
        assert result.cardinality > 0
        assert stats["service"]["completed"] >= 1

    def test_raw_garbage_frames_get_error_responses(self, chain_db):
        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                responses = []
                for line in [
                    b"this is not json\n",
                    b'{"v": 99, "op": "ping", "id": 4}\n',
                    b'{"v": 1, "op": "frobnicate", "id": 7}\n',
                    b'{"v": 1, "ok": true, "kind": "pong", "result": null, "id": 1}\n',
                ]:
                    writer.write(line)
                    await writer.drain()
                    responses.append(await reader.readline())
                writer.close()
                return responses

        from repro.protocol import decode

        responses = [decode(line) for line in run(main())]
        assert [r.error.code for r in responses] == [
            "not_json",
            "unsupported_version",
            "bad_request",
            "bad_request",
        ]
        # Best-effort id attribution: valid JSON frames keep their id.
        assert responses[1].id == 4
        assert responses[2].id == 7

    def test_batch_with_one_bad_member_fails_whole_batch(self, chain_db):
        query = path_query(3, head_arity=1)

        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    with pytest.raises(RemoteQueryError) as excinfo:
                        await client.run_batch(
                            operations_of(EXECUTE, [query, "E(x :-"]), "chain"
                        )
                    return excinfo.value.code

        assert run(main()) == "parse_error"


class TestSingleFlightAcrossConnections:
    def test_identical_pipelined_requests_coalesce(self, chain_db):
        query = path_query(4, head_arity=1)
        clients, per_client = 4, 8

        async def main():
            async with QueryServer({"chain": chain_db}, batch_window=0.0) as server:
                host, port = server.address
                connections = [
                    await AsyncQueryClient.connect(host, port)
                    for _ in range(clients)
                ]
                try:
                    results = await asyncio.gather(
                        *(
                            connection.execute(query, "chain")
                            for connection in connections
                            for _ in range(per_client)
                        )
                    )
                    stats = await connections[0].stats()
                finally:
                    for connection in connections:
                        await connection.aclose()
            return results, stats

        results, stats = run(main())
        assert all(result == results[0] for result in results)
        counters = stats["service"]
        total = clients * per_client
        assert counters["submitted"] + counters["coalesced"] == total
        # Identical in-flight requests shared executions across connections.
        assert counters["coalesced"] > 0
        assert stats["engine"]["executions"] < total


class TestFairnessAndBackpressure:
    def test_flood_does_not_starve_polite_clients(self, chain_db, sequential):
        """One pipelining flooder + 3 polite clients on a 1-dispatcher
        server: round-robin lanes mean every polite request is served
        after at most one group per active lane, so polite latencies stay
        bounded by lane count, not by the flood's queue depth."""
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})
        flood_instances = [
            query.decision_instance((starts[i % len(starts)],)) for i in range(48)
        ]
        polite_instances = [
            query.decision_instance((value,)) for value in starts[:6]
        ]

        async def main():
            async with QueryServer(
                {"chain": chain_db}, batch_window=0.0, dispatchers=1
            ) as server:
                host, port = server.address
                flooder = await AsyncQueryClient.connect(host, port)
                polite = [
                    await AsyncQueryClient.connect(host, port) for _ in range(3)
                ]
                loop = asyncio.get_running_loop()

                async def flood():
                    return await asyncio.gather(
                        *(
                            flooder.execute(instance, "chain")
                            for instance in flood_instances
                        )
                    )

                async def polite_client(connection):
                    latencies = []
                    results = []
                    for instance in polite_instances:
                        started = loop.time()
                        results.append(await connection.execute(instance, "chain"))
                        latencies.append(loop.time() - started)
                    return results, latencies

                started = loop.time()
                flood_task = asyncio.ensure_future(flood())
                await asyncio.sleep(0.01)  # the flood owns the queue now
                polite_outcomes = await asyncio.gather(
                    *(polite_client(connection) for connection in polite)
                )
                flood_results = await flood_task
                total_seconds = loop.time() - started
                stats = await flooder.stats()
                for connection in [flooder, *polite]:
                    await connection.aclose()
            return polite_outcomes, flood_results, total_seconds, stats

        polite_outcomes, flood_results, total_seconds, stats = run(main())
        # Zero starvation: every polite request completed, correctly.
        for results, _ in polite_outcomes:
            assert results == [
                sequential.execute(q, chain_db) for q in polite_instances
            ]
        for result, instance in zip(flood_results, flood_instances):
            assert result == sequential.execute(instance, chain_db)
        # Round-robin drain: polite p95 stays a small fraction of the
        # flood's wall clock even though the flood held a 40+-deep lane.
        latencies = sorted(
            latency for _, client_latencies in polite_outcomes
            for latency in client_latencies
        )
        p95 = latencies[int(0.95 * (len(latencies) - 1))]
        assert p95 < total_seconds / 2, (p95, total_seconds)
        # The per-client rollup saw all four lanes.
        assert len(stats["clients"]) >= 4

    def test_backpressure_rejections_are_structured(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})
        instances = [query.decision_instance((value,)) for value in starts[:24]]

        async def main():
            async with QueryServer(
                {"chain": chain_db},
                batch_window=0.0,
                dispatchers=1,
                max_pending_per_client=4,
            ) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    outcomes = await asyncio.gather(
                        *(client.execute(q, "chain") for q in instances),
                        return_exceptions=True,
                    )
                    # The connection survived the rejections.
                    assert await client.ping()
                    stats = await client.stats()
            return outcomes, stats

        outcomes, stats = run(main())
        rejected = [
            outcome
            for outcome in outcomes
            if isinstance(outcome, RemoteQueryError)
        ]
        succeeded = [
            outcome
            for outcome in outcomes
            if not isinstance(outcome, BaseException)
        ]
        assert rejected, "a 24-deep pipeline against budget 4 must reject"
        assert succeeded, "the within-budget prefix must still succeed"
        for error in rejected:
            assert error.code == "backpressure"
            assert error.detail["budget"] == 4
        assert stats["service"]["rejected"] == len(rejected)
        assert stats["clients"][0]["rejected"] == len(rejected)


class TestReviewRegressions:
    def test_oversized_result_is_answered_not_dropped(self, chain_db, monkeypatch):
        """A result relation whose encoded response exceeds the frame
        bound must come back as a structured frame_too_large error on the
        same request id — never a silently dropped request."""
        import repro.protocol.codec as codec

        # Small enough that a full-E result blows the bound, large enough
        # that requests and error responses still encode.
        monkeypatch.setattr(codec, "MAX_LINE_BYTES", 600)
        big = "Q(x, y) :- E(x, y)."
        small = path_query(3, head_arity=1)

        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    with pytest.raises(RemoteQueryError) as excinfo:
                        await asyncio.wait_for(
                            client.execute(big, "chain"), timeout=10
                        )
                    # The connection survives and keeps serving.
                    decision = await asyncio.wait_for(
                        client.decide(small, "chain"), timeout=10
                    )
            return excinfo.value, decision

        error, decision = run(main())
        assert error.code == "frame_too_large"
        assert isinstance(decision, bool)

    def test_parse_error_coordinates_point_into_callers_text(self):
        """Leading whitespace must not shift the parse-error coordinates
        the codec sends to remote clients."""
        from repro import parse_query
        from repro.errors import ParseError

        text = "\n\n  Q(x) :- {"
        with pytest.raises(ParseError) as excinfo:
            parse_query(text)
        error = excinfo.value
        assert error.position == text.index("{")
        assert error.line == 3
        assert error.column == text.index("{") - text.rindex("\n")

    def test_async_client_reads_large_frames(self, chain_db):
        """AsyncQueryClient's reader must use the protocol's frame bound,
        not asyncio's 64 KiB default — a big result relation killed the
        pipelined connection before the fix."""
        from repro.protocol import encode_relation

        big = "Q(x, y, z) :- E(x, y), E(y, z)."

        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    result = await asyncio.wait_for(
                        client.execute(big, "chain"), timeout=30
                    )
                    # Still serving after the large frame.
                    assert await client.ping()
            return result

        result = run(main())
        import json

        encoded = json.dumps(encode_relation(result))
        assert len(encoded) > 64 * 1024, "workload no longer exercises the limit"
        from repro import parse_query

        want = QueryEngine(parallel=False).execute(parse_query(big), chain_db)
        assert result == want

    def test_sync_client_timeout_poisons_the_connection(self, chain_db):
        """A socket timeout can fire mid-frame; the blocking client must
        refuse reuse instead of decoding a desynchronized stream."""
        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address

                def work():
                    client = QueryClient(host, port)
                    # A timeout no real response can beat forces the
                    # mid-read failure path deterministically.
                    client._sock.settimeout(0.0001)
                    with pytest.raises(OSError):
                        client.execute(path_query(3, head_arity=1), "chain")
                    with pytest.raises(ConnectionError):
                        client.ping()
                    client.close()

                await asyncio.to_thread(work)

        run(main())

    def test_connection_level_error_breaks_client_loudly(self):
        """An id=null error frame fails the outstanding caller AND marks
        the client broken — later requests raise instead of hanging on a
        dead reader."""
        from repro.protocol import ProtocolError, error_response
        from repro.protocol.codec import encode

        async def main():
            async def hostile(reader, writer):
                await reader.readline()
                writer.write(
                    encode(
                        error_response(
                            None, ProtocolError("overrun", code="frame_too_large")
                        )
                    )
                )
                await writer.drain()

            server = await asyncio.start_server(hostile, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            async with server:
                client = await AsyncQueryClient.connect(host, port)
                with pytest.raises(RemoteQueryError) as excinfo:
                    await asyncio.wait_for(client.ping(), timeout=10)
                assert excinfo.value.code == "frame_too_large"
                with pytest.raises(ConnectionError):
                    await asyncio.wait_for(client.ping(), timeout=10)
                await client.aclose()

        run(main())


class TestDisconnectTeardown:
    def test_mid_request_disconnect_releases_the_slot(self, chain_db, sequential):
        """A client that vanishes mid-request must not leave zombie work
        holding a dispatcher: the server cancels the in-flight task,
        the service releases the FairQueue slot, and other connections
        keep being served promptly."""
        import random as _random

        from repro import Database, parse_query

        rng = _random.Random(11)
        rows = {(rng.randrange(60), rng.randrange(60)) for _ in range(1400)}
        slow_db = Database.from_tuples({"E": sorted(rows)})
        slow = parse_query(
            "Q(x1) :- E(x1, x2), E(x2, x3), E(x3, x4), E(x4, x5), "
            "E(x5, x6), E(x6, x1)."
        )
        fast = path_query(3, head_arity=1)

        async def main():
            # One dispatcher: if the abandoned slow query kept its slot,
            # the fast query below would queue behind its full runtime.
            async with QueryServer(
                {"slow": slow_db, "chain": chain_db},
                dispatchers=1,
                parallel=False,
            ) as server:
                host, port = server.address
                doomed = await AsyncQueryClient.connect(host, port)
                request = asyncio.ensure_future(doomed.execute(slow, "slow"))
                await asyncio.sleep(0.15)  # the request reaches the engine
                # Abrupt disconnect: abort the transport, no goodbye.
                doomed._writer.transport.abort()
                with pytest.raises((ConnectionError, OSError)):
                    await asyncio.wait_for(request, timeout=10)
                await doomed.aclose()
                async with await AsyncQueryClient.connect(host, port) as client:
                    import time as _time

                    started = _time.monotonic()
                    result = await asyncio.wait_for(
                        client.execute(fast, "chain"), timeout=15
                    )
                    elapsed = _time.monotonic() - started
                    stats = await client.stats()
            return result, elapsed, stats

        result, elapsed, stats = run(main())
        assert result == sequential.execute(fast, chain_db)
        assert elapsed < 10  # served promptly, not behind the zombie query
        assert stats["service"]["cancelled"] >= 1


class TestLifecycle:
    def test_graceful_drain_completes_in_flight(self, chain_db, sequential):
        query = path_query(4, head_arity=1)

        async def main():
            server = QueryServer({"chain": chain_db}, batch_window=0.0)
            await server.start()
            host, port = server.address
            client = await AsyncQueryClient.connect(host, port)
            request = asyncio.ensure_future(client.execute(query, "chain"))
            await asyncio.sleep(0.005)  # request reaches the service
            await server.aclose()
            result = await request
            await client.aclose()
            return result

        assert run(main()) == sequential.execute(query, chain_db)

    def test_closed_server_stops_accepting(self, chain_db):
        async def main():
            server = QueryServer({"chain": chain_db})
            await server.start()
            host, port = server.address
            await server.aclose()
            await server.aclose()  # idempotent
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout=2
                )

        run(main())

    def test_conflicting_service_kwargs_rejected(self, chain_db):
        from repro import QueryService

        with pytest.raises(ValueError):
            QueryServer({"chain": chain_db}, service=QueryService(), batch_window=0.5)
