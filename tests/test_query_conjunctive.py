"""Tests for ConjunctiveQuery: safety, parameters, substitution, structure."""

import pytest

from repro.errors import QueryError
from repro.query import Atom, C, ConjunctiveQuery, Inequality, V, parse_query
from repro.query.atoms import Comparison


def simple_query() -> ConjunctiveQuery:
    return parse_query("Q(x, z) :- E(x, y), E(y, z).")


class TestValidation:
    def test_head_variable_must_be_in_body(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(("w",), [Atom.of("E", "x", "y")])

    def test_range_restriction_inequality(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                (), [Atom.of("E", "x", "y")], [Inequality("x", "z")]
            )

    def test_range_restriction_comparison(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                (), [Atom.of("E", "x", "y")], comparisons=[Comparison("x", "w")]
            )

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery((), [])

    def test_head_constants_allowed(self):
        q = ConjunctiveQuery((C(7), "x"), [Atom.of("E", "x", "y")])
        assert q.head_terms[0] == C(7)


class TestParameters:
    def test_num_variables(self):
        assert simple_query().num_variables() == 3

    def test_query_size_grows_with_atoms(self):
        small = parse_query("Q() :- E(x, y).")
        large = parse_query("Q() :- E(x, y), E(y, z), E(z, w).")
        assert large.query_size() > small.query_size()

    def test_num_atoms(self):
        assert simple_query().num_atoms() == 2

    def test_existential_variables(self):
        q = simple_query()
        assert [v.name for v in q.existential_variables()] == ["y"]

    def test_is_boolean(self):
        assert parse_query("Q() :- E(x, y).").is_boolean()
        assert not simple_query().is_boolean()


class TestSubstitution:
    def test_decision_instance_binds_head(self):
        q = simple_query()
        decided = q.decision_instance((1, 3))
        assert decided.is_boolean()
        assert decided.atoms[0] == Atom("E", (C(1), V("y")))
        assert decided.atoms[1] == Atom("E", (V("y"), C(3)))

    def test_decision_instance_arity_check(self):
        with pytest.raises(QueryError):
            simple_query().decision_instance((1,))

    def test_decision_instance_repeated_head_variable(self):
        q = parse_query("Q(x, x) :- E(x, y).")
        decided = q.decision_instance((1, 1))
        assert decided.atoms[0] == Atom("E", (C(1), V("y")))
        with pytest.raises(QueryError):
            q.decision_instance((1, 2))

    def test_decision_instance_head_constant(self):
        q = ConjunctiveQuery((C(5), "x"), [Atom.of("E", "x", "y")])
        assert q.decision_instance((5, 1)).is_boolean()
        with pytest.raises(QueryError):
            q.decision_instance((6, 1))

    def test_substitute_drops_true_inequalities(self):
        q = parse_query("Q(x) :- E(x, y), x != 3.")
        decided = q.decision_instance((4,))
        assert decided.inequalities == ()

    def test_substitute_falsifying_inequality_raises(self):
        q = parse_query("Q(x) :- E(x, y), x != 3.")
        with pytest.raises(QueryError):
            q.decision_instance((3,))

    def test_substitute_comparisons(self):
        q = parse_query("Q(x) :- E(x, y), x < 5.")
        assert q.decision_instance((4,)).comparisons == ()
        with pytest.raises(QueryError):
            q.decision_instance((6,))


class TestStructure:
    def test_path_query_acyclic(self):
        assert simple_query().is_acyclic()

    def test_triangle_cyclic(self):
        q = parse_query("Q() :- E(x, y), E(y, z), E(z, x).")
        assert not q.is_acyclic()

    def test_hypergraph_edges_match_atoms(self):
        q = simple_query()
        h = q.hypergraph()
        assert h.num_edges == 2
        assert {frozenset({V("x"), V("y")}), frozenset({V("y"), V("z")})} == set(
            h.edges
        )

    def test_without_constraints(self):
        q = parse_query("Q(x) :- E(x, y), x != y.")
        stripped = q.without_constraints()
        assert stripped.inequalities == ()
        assert stripped.atoms == q.atoms

    def test_equality_ignores_inequality_order(self):
        q1 = parse_query("Q() :- E(x, y), E(y, z), x != z, x != y.")
        q2 = parse_query("Q() :- E(x, y), E(y, z), x != y, x != z.")
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_repr_is_rule_notation(self):
        text = repr(simple_query())
        assert ":-" in text and "E(x, y)" in text
