"""Cross-process stress: the real server in a subprocess, clients over TCP.

This is the gap the protocol layer exists to close — PR 4's stress suites
ran clients and service in one interpreter.  Here the server is spawned
as a genuinely separate process (``python -m repro.protocol.server``) and
16 concurrent TCP clients drive it from worker threads; every response is
byte-compared (identical attribute order, identical row sets) against
sequential in-process ``QueryEngine(parallel=False)`` answers, and
single-flight coalescing of the cross-client hot queries is observed
through the wire ``stats`` op.
"""

import os
import signal
import subprocess
import sys
import threading

import pytest

from repro import QueryEngine
from repro.protocol import QueryClient
from repro.relational.io import save_database_json
from repro.workloads import chain_database
from repro.workloads.queries import path_query

CLIENTS = 16
PER_CLIENT = 8
READY_TIMEOUT = 60


@pytest.fixture(scope="module")
def chain_db():
    return chain_database(layers=5, width=32, p=0.3, seed=11)


@pytest.fixture(scope="module")
def server_process(chain_db, tmp_path_factory):
    """A real ``repro.protocol.server`` subprocess serving the workload."""
    path = tmp_path_factory.mktemp("protocol") / "chain.json"
    save_database_json(chain_db, str(path))
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.protocol.server",
            "--port",
            "0",
            "--database",
            f"chain={path}",
            "--batch-window",
            "0.002",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        ready = process.stdout.readline()
        assert ready.startswith("QUERYSERVER READY"), (
            ready,
            process.stderr.read() if process.poll() is not None else "",
        )
        port = int(ready.rsplit("port=", 1)[1])
        yield ("127.0.0.1", port)
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.communicate()


def build_workload(chain_db):
    """Per client, a mix of hot (cross-client identical) and private
    decision instances plus a full evaluation — the shape mix the
    in-process stress uses, now crossing a process boundary."""
    query = path_query(4, head_arity=1)
    wide = path_query(3, head_arity=2)
    starts = sorted({row[0] for row in chain_db["E"].rows})
    hot = starts[:4]
    workload = []
    for client_index in range(CLIENTS):
        requests = []
        for i in range(PER_CLIENT):
            if i % 4 == 0:
                requests.append(("execute", wide))
            elif i % 2 == 0:
                value = hot[(i // 2) % len(hot)]
                requests.append(("decide", query.decision_instance((value,))))
            else:
                value = starts[(client_index * PER_CLIENT + i) % len(starts)]
                requests.append(("execute", query.decision_instance((value,))))
        workload.append(requests)
    return workload


def test_16_tcp_clients_match_sequential_byte_for_byte(server_process, chain_db):
    host, port = server_process
    workload = build_workload(chain_db)
    sequential = QueryEngine(parallel=False)
    reference = [
        [
            sequential.execute(query, chain_db)
            if kind == "execute"
            else sequential.decide(query, chain_db)
            for kind, query in requests
        ]
        for requests in workload
    ]

    results = [None] * CLIENTS
    errors = []

    def client_worker(index, requests):
        try:
            with QueryClient(host, port) as client:
                answers = []
                for kind, query in requests:
                    if kind == "execute":
                        answers.append(client.execute(query, "chain"))
                    else:
                        answers.append(client.decide(query, "chain"))
                results[index] = answers
        except BaseException as exc:  # noqa: BLE001 - surfaced by the assert
            errors.append((index, exc))

    threads = [
        threading.Thread(target=client_worker, args=(index, requests))
        for index, requests in enumerate(workload)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(READY_TIMEOUT)
    assert errors == []
    for got_list, want_list in zip(results, reference):
        assert got_list is not None
        for got, want in zip(got_list, want_list):
            assert got == want
            if hasattr(want, "rows"):
                # Byte-for-byte: same attribute tuple, same row set.
                assert got.attributes == want.attributes
                assert got.rows == want.rows

    with QueryClient(host, port) as client:
        stats = client.stats()
    counters = stats["service"]
    total = CLIENTS * PER_CLIENT
    assert counters["submitted"] + counters["coalesced"] >= total
    assert counters["failed"] == 0
    assert len(stats["clients"]) >= CLIENTS


def test_cross_process_hot_flood_coalesces(server_process, chain_db):
    """All 16 clients fire the same decision instance concurrently; the
    wire stats must show single-flight absorbing cross-process traffic
    (executions strictly below requests)."""
    host, port = server_process
    query = path_query(4, head_arity=1)
    starts = sorted({row[0] for row in chain_db["E"].rows})
    hot_instance = query.decision_instance((starts[0],))

    with QueryClient(host, port) as probe:
        before = probe.stats()

    barrier = threading.Barrier(CLIENTS)
    outcomes = [None] * CLIENTS
    errors = []

    def worker(index):
        try:
            with QueryClient(host, port) as client:
                barrier.wait(timeout=READY_TIMEOUT)
                answers = [
                    client.decide(hot_instance, "chain") for _ in range(4)
                ]
                outcomes[index] = answers
        except BaseException as exc:  # noqa: BLE001
            errors.append((index, exc))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(READY_TIMEOUT)
    assert errors == []

    sequential = QueryEngine(parallel=False)
    want = sequential.decide(hot_instance, chain_db)
    assert all(answers == [want] * 4 for answers in outcomes)

    with QueryClient(host, port) as probe:
        after = probe.stats()
    requests = (
        after["service"]["submitted"]
        + after["service"]["coalesced"]
        - before["service"]["submitted"]
        - before["service"]["coalesced"]
    )
    work = (
        after["service"]["submitted"] - before["service"]["submitted"],
        after["service"]["coalesced"] - before["service"]["coalesced"],
        after["engine"]["executions"] - before["engine"]["executions"],
    )
    assert requests == CLIENTS * 4
    # Micro-batching plus single-flight: far fewer executions than
    # requests.  (Coalescing proper is also asserted in-process; across
    # processes, arrival jitter means we pin the aggregate effect.)
    assert work[2] < requests, work


def test_cross_process_counting_matches_local(server_process, chain_db):
    """Counting and aggregation over the subprocess boundary: 8 clients mix
    count/exists/forall/grouped_count and mixed-kind ``run_batch`` frames;
    every answer must equal the local sequential engine's."""
    from repro.operations import Operation

    host, port = server_process
    query = path_query(3, head_arity=2)
    sequential = QueryEngine(parallel=False)
    want_count = sequential.count(query, chain_db)
    want_grouped = sequential.grouped_count(query, chain_db, ("x0",))
    want_exists = sequential.exists(query, chain_db)
    want_forall = sequential.forall(query, chain_db)
    want_rows = sequential.execute(query, chain_db)
    assert want_count == want_rows.cardinality

    workers = 8
    outcomes = [None] * workers
    errors = []

    def worker(index):
        try:
            with QueryClient(host, port) as client:
                outcomes[index] = (
                    client.count(query, "chain"),
                    client.grouped_count(query, "chain", ("x0",)),
                    client.exists(query, "chain"),
                    client.forall(query, "chain"),
                    client.run_batch(
                        [
                            Operation.count(query),
                            Operation.execute(query),
                            Operation.decide(query),
                        ],
                        "chain",
                    ),
                )
        except BaseException as exc:  # noqa: BLE001
            errors.append((index, exc))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(READY_TIMEOUT)
    assert errors == []
    for outcome in outcomes:
        assert outcome is not None
        count, grouped, exists, forall, batch = outcome
        assert count == want_count
        assert grouped == want_grouped
        assert grouped.rows == want_grouped.rows
        assert exists is want_exists
        assert forall is want_forall
        assert batch[0] == want_count
        assert batch[1] == want_rows and batch[1].rows == want_rows.rows
        assert batch[2] is True
