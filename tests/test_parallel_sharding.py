"""Property tests for the sharded execution layer.

The contract under test: every sharded operation agrees exactly with its
unsharded kernel counterpart — for any shard count, any key choice, and in
the presence of empty shards and maximally skewed keys (all rows hashing
into one shard).  Sharding is an execution strategy, never a semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.parallel import (
    ShardedRelation,
    WorkerPool,
    bucket_semijoin,
    parallel_hash_join,
    parallel_select_eq,
    parallel_semijoin,
    shard_relation,
)
from repro.relational.attributes import positions_of
from repro.relational.columns import VALUES
from repro.relational.relation import Relation

SETTINGS = settings(max_examples=40, deadline=None)

values = st.integers(min_value=0, max_value=7)
rows2 = st.sets(st.tuples(values, values), max_size=40)
rows3 = st.sets(st.tuples(values, values, values), max_size=40)
shard_counts = st.integers(min_value=1, max_value=7)


def rel(attributes, rows):
    return Relation.from_rows(attributes, rows)


class TestKernelPartition:
    @SETTINGS
    @given(rows2, shard_counts)
    def test_partition_is_a_partition(self, rows, count):
        relation = rel(("x", "y"), rows)
        shards = relation._partition((1,), count)
        assert len(shards) == count
        assert sum(s.cardinality for s in shards) == relation.cardinality
        assert frozenset().union(*(s.rows for s in shards)) == relation.rows

    @SETTINGS
    @given(rows2, shard_counts)
    def test_partition_routes_whole_buckets(self, rows, count):
        relation = rel(("x", "y"), rows)
        shards = relation._partition((0,), count)
        for index, shard in enumerate(shards):
            for row in shard.rows:
                # Routing is by process-global pool code, so co-partitioned
                # relations agree on shard indexes (see relational.columns).
                assert VALUES.encode(row[0]) % count == index

    def test_partition_is_cached_and_preseeds_indexes(self):
        relation = rel(("x", "y"), {(i, i % 3) for i in range(30)})
        shards = relation._partition((1,), 4)
        assert relation._partition((1,), 4) is shards
        for shard in shards:
            assert (1,) in shard._indexes  # born with the key index


class TestShardedRelationAgreement:
    @SETTINGS
    @given(rows2, rows2, shard_counts)
    def test_semijoin_matches_kernel(self, left_rows, right_rows, count):
        left = rel(("x", "y"), left_rows)
        right = rel(("y", "z"), right_rows)
        sharded = ShardedRelation(left, ("y",), count)
        partner = ShardedRelation(right, ("y",), count)
        assert sharded.co_partitioned_with(partner)
        assert sharded.semijoin(partner).to_relation() == left.semijoin(right)
        # Against an unsharded operand too.
        assert sharded.semijoin(right).to_relation() == left.semijoin(right)

    @SETTINGS
    @given(rows2, rows2, shard_counts)
    def test_natural_join_matches_kernel(self, left_rows, right_rows, count):
        left = rel(("x", "y"), left_rows)
        right = rel(("y", "z"), right_rows)
        sharded = ShardedRelation(left, ("y",), count)
        partner = ShardedRelation(right, ("y",), count)
        expected = left.natural_join(right)
        assert sharded.natural_join(partner).to_relation() == expected
        assert sharded.natural_join(right).to_relation() == expected

    @SETTINGS
    @given(rows3, shard_counts)
    def test_project_matches_kernel(self, rows, count):
        relation = rel(("x", "y", "z"), rows)
        sharded = ShardedRelation(relation, ("y",), count)
        kept = sharded.project(("y", "z"))
        assert kept.to_relation() == relation.project(("y", "z"))
        # Key-dropping projection merges (duplicates may cross shards).
        dropped = sharded.project(("x",))
        assert isinstance(dropped, Relation)
        assert dropped == relation.project(("x",))

    @SETTINGS
    @given(rows2, rows2, shard_counts)
    def test_union_of_shards_matches_kernel(self, left_rows, right_rows, count):
        left = rel(("x", "y"), left_rows)
        right = rel(("x", "y"), right_rows)
        sharded = ShardedRelation(left, ("x",), count)
        partner = ShardedRelation(right, ("x",), count)
        assert sharded.union(partner).to_relation() == left.union(right)

    @SETTINGS
    @given(rows2, shard_counts)
    def test_select_eq_matches_kernel(self, rows, count):
        relation = rel(("x", "y"), rows)
        sharded = ShardedRelation(relation, ("x",), count)
        for value in (0, 3, 99):
            expected = relation.select_eq({"x": value})
            assert sharded.select_eq({"x": value}).to_relation() == expected


class TestDrivers:
    @SETTINGS
    @given(rows2, rows2, shard_counts)
    def test_parallel_semijoin(self, left_rows, right_rows, count):
        left = rel(("x", "y"), left_rows)
        right = rel(("y", "z"), right_rows)
        assert parallel_semijoin(left, right, count) == left.semijoin(right)

    @SETTINGS
    @given(rows2, rows2, shard_counts)
    def test_parallel_hash_join(self, left_rows, right_rows, count):
        left = rel(("x", "y"), left_rows)
        right = rel(("y", "z"), right_rows)
        assert parallel_hash_join(left, right, count) == left.natural_join(right)

    @SETTINGS
    @given(rows2, shard_counts, values)
    def test_parallel_select_eq(self, rows, count, value):
        relation = rel(("x", "y"), rows)
        assert parallel_select_eq(relation, {"y": value}, count) == (
            relation.select_eq({"y": value})
        )

    def test_parallel_select_eq_unhashable_probe_routes_to_fallback(self):
        """Regression (ISSUE 10): an unhashable probe key must take the
        kernel's linear-scan fallback — ``key_code_of`` probes a dict with
        the key, which raises ``TypeError`` for unhashables — instead of
        crashing or silently returning empty."""
        relation = rel(("x", "y"), {(i, i % 4) for i in range(24)})
        for count in (2, 4, 7):
            result = parallel_select_eq(relation, {"y": [1, 2]}, count)
            assert result == relation.select_eq({"y": [1, 2]})
            assert result.rows == frozenset()

    def test_parallel_select_eq_unhashable_but_equal_probe(self):
        """An unhashable probe that compares ``==`` to stored values must
        select exactly the rows the kernel's linear scan selects."""

        class EqTo:
            """Equal to one target value, but unhashable."""

            __hash__ = None

            def __init__(self, target):
                self.target = target

            def __eq__(self, other):
                return other == self.target

        relation = rel(("x", "y"), {(i, i % 4) for i in range(24)})
        probe = EqTo(3)
        expected = relation.select_eq({"y": probe})
        assert expected.rows == frozenset(
            (i, i % 4) for i in range(24) if i % 4 == 3
        )
        for count in (1, 2, 4, 7):
            assert parallel_select_eq(relation, {"y": probe}, count) == expected
        # Multi-position conditions hit the composite-key path.
        multi = {"x": 7, "y": EqTo(3)}
        expected_multi = relation.select_eq(multi)
        assert expected_multi.rows == frozenset({(7, 3)})
        for count in (2, 5):
            assert parallel_select_eq(relation, multi, count) == expected_multi

    @SETTINGS
    @given(rows2, rows2)
    def test_bucket_semijoin_matches_kernel(self, left_rows, right_rows):
        left = rel(("x", "y"), left_rows)
        right = rel(("y", "z"), right_rows)
        left_positions = positions_of(left.attributes, ("y",))
        right_positions = positions_of(right.attributes, ("y",))
        assert bucket_semijoin(
            left, right, left_positions, right_positions
        ) == left.semijoin(right)

    def test_drivers_under_thread_and_process_pools(self):
        left = rel(("x", "y"), {(i, i % 5) for i in range(60)})
        right = rel(("y", "z"), {(i % 5, i) for i in range(40) if i % 2})
        expected = left.semijoin(right)
        with WorkerPool(max_workers=3, mode="threads") as pool:
            assert parallel_semijoin(left, right, 4, pool) == expected
        with WorkerPool(max_workers=2, mode="processes") as pool:
            assert parallel_semijoin(left, right, 4, pool) == expected
            assert parallel_hash_join(left, right, 4, pool) == (
                left.natural_join(right)
            )


class TestEdgeCases:
    def test_empty_relation_shards(self):
        empty = Relation.from_rows(("x", "y"))
        sharded = ShardedRelation(empty, ("x",), 4)
        assert sharded.is_empty()
        assert sharded.cardinality == 0
        assert sharded.to_relation() == empty
        other = ShardedRelation(rel(("x", "y"), {(1, 2)}), ("x",), 4)
        assert sharded.semijoin(other).to_relation() == empty
        assert other.semijoin(sharded).to_relation().is_empty()

    def test_skewed_key_lands_in_one_shard(self):
        # Every row shares the join key: one shard holds everything and
        # the other shard pairs are pruned as empty partners.
        skewed = rel(("x", "y"), {(i, 7) for i in range(50)})
        sharded = ShardedRelation(skewed, ("y",), 5)
        occupied = [s for s in sharded.shards if not s.is_empty()]
        assert len(occupied) == 1
        assert occupied[0].cardinality == 50
        right = rel(("y", "z"), {(7, 1), (3, 2)})
        partner = ShardedRelation(right, ("y",), 5)
        assert sharded.semijoin(partner).to_relation() == skewed.semijoin(right)
        drained = rel(("y", "z"), {(3, 2)})
        assert sharded.semijoin(
            ShardedRelation(drained, ("y",), 5)
        ).to_relation() == skewed.semijoin(drained)

    def test_semijoin_identity_returns_self(self):
        left = rel(("x", "y"), {(i, i % 4) for i in range(40)})
        right = rel(("y", "z"), {(i % 4, i) for i in range(40)})
        sharded = ShardedRelation(left, ("y",), 4)
        assert sharded.semijoin(ShardedRelation(right, ("y",), 4)) is sharded

    def test_no_shared_attributes(self):
        left = rel(("x", "y"), {(1, 2), (3, 4)})
        right = rel(("u", "v"), {(9, 9)})
        sharded = ShardedRelation(left, ("x",), 3)
        assert sharded.semijoin(right) is sharded
        empty_right = Relation.from_rows(("u", "v"))
        assert sharded.semijoin(empty_right).to_relation().is_empty()
        assert parallel_semijoin(left, right, 3) == left.semijoin(right)
        assert parallel_hash_join(left, right, 3) == left.natural_join(right)

    def test_non_co_partitioned_operands_still_agree(self):
        left = rel(("x", "y"), {(i, i % 6) for i in range(30)})
        right = rel(("y", "z"), {(i % 6, i) for i in range(20)})
        sharded = ShardedRelation(left, ("y",), 4)
        mismatched = ShardedRelation(right, ("y",), 3)  # different count
        assert not sharded.co_partitioned_with(mismatched)
        assert sharded.semijoin(mismatched).to_relation() == left.semijoin(right)

    def test_shard_relation_helper_and_repr(self):
        relation = rel(("x", "y"), {(1, 2), (2, 2), (3, 1)})
        sharded = shard_relation(relation, ("y",), 2)
        assert sharded.key == ("y",)
        assert sharded.shard_count == 2
        assert "ShardedRelation" in repr(sharded)
