"""Tests for circuits, formulas, CNF, and the alternation normalizer."""

import pytest

from repro.circuits import (
    AND,
    CNF,
    CNFError,
    Circuit,
    CircuitBuilder,
    CircuitError,
    Gate,
    INPUT,
    Literal,
    OR,
    check_alternation,
    fand,
    fnot,
    for_,
    formula_to_circuit,
    is_nnf,
    level_alternate,
    negative_pair,
    to_nnf,
    var,
)


def xor_circuit() -> Circuit:
    builder = CircuitBuilder()
    a = builder.input("a")
    b = builder.input("b")
    na = builder.not_(a)
    nb = builder.not_(b)
    left = builder.and_(a, nb)
    right = builder.and_(na, b)
    return builder.build(builder.or_(left, right))


def monotone_sample() -> Circuit:
    builder = CircuitBuilder()
    inputs = [builder.input(f"i{j}") for j in range(4)]
    a1 = builder.and_(inputs[0], inputs[1])
    o1 = builder.or_(a1, inputs[2])
    return builder.build(builder.and_(o1, inputs[3]))


class TestCircuitStructure:
    def test_evaluation_xor(self):
        c = xor_circuit()
        assert c.evaluate({"a"})
        assert c.evaluate({"b"})
        assert not c.evaluate({"a", "b"})
        assert not c.evaluate(set())

    def test_unknown_input_rejected(self):
        with pytest.raises(CircuitError):
            xor_circuit().evaluate({"zz"})

    def test_monotone_detection(self):
        assert monotone_sample().is_monotone()
        assert not xor_circuit().is_monotone()

    def test_depth_ignores_not_on_inputs(self):
        # XOR: NOTs sit on inputs, so depth = AND + OR = 2.
        assert xor_circuit().depth() == 2

    def test_depth_counts_internal_not(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input("b")
        inner = builder.and_(a, b)
        negated = builder.not_(inner)
        c = builder.build(builder.or_(negated, a))
        assert c.depth() == 3

    def test_cycle_detection(self):
        gates = [
            Gate("a", INPUT),
            Gate("g1", AND, ("a", "g2")),
            Gate("g2", OR, ("g1",)),
        ]
        with pytest.raises(CircuitError):
            Circuit(gates, "g1")

    def test_undefined_source(self):
        with pytest.raises(CircuitError):
            Circuit([Gate("g", AND, ("missing",))], "g")

    def test_duplicate_gate_id(self):
        with pytest.raises(CircuitError):
            Circuit([Gate("a", INPUT), Gate("a", INPUT)], "a")

    def test_gate_validation(self):
        with pytest.raises(CircuitError):
            Gate("n", "NOT", ("a", "b"))
        with pytest.raises(CircuitError):
            Gate("x", "INPUT", ("a",))
        with pytest.raises(CircuitError):
            Gate("g", "AND", ())

    def test_topological_order(self):
        c = monotone_sample()
        seen = set()
        for gate in c.gates():
            assert all(s in seen for s in gate.inputs)
            seen.add(gate.gate_id)


class TestFormulas:
    def test_evaluate(self):
        f = for_(fand(var("x"), var("y")), fnot(var("z")))
        assert f.evaluate({"x", "y", "z"})
        assert f.evaluate(set())
        assert not f.evaluate({"z"})

    def test_flattening(self):
        f = fand(fand(var("a"), var("b")), var("c"))
        assert len(f.children) == 3

    def test_nnf(self):
        f = fnot(fand(var("a"), fnot(var("b"))))
        nnf = to_nnf(f)
        assert is_nnf(nnf)
        for assignment in [set(), {"a"}, {"b"}, {"a", "b"}]:
            assert f.evaluate(assignment) == nnf.evaluate(assignment)

    def test_formula_to_circuit_semantics(self):
        f = for_(fand(var("a"), fnot(var("b"))), var("c"))
        c = formula_to_circuit(f)
        for assignment in [set(), {"a"}, {"b"}, {"a", "c"}, {"a", "b", "c"}]:
            assert c.evaluate(frozenset(assignment)) == f.evaluate(assignment)

    def test_size(self):
        assert var("x").size() == 1
        assert fnot(var("x")).size() == 2
        assert fand(var("x"), var("y")).size() == 3


class TestCNF:
    def test_evaluate(self):
        cnf = CNF([[Literal("a"), Literal("b", False)]])
        assert cnf.evaluate({"a"})
        assert cnf.evaluate(set())
        assert not cnf.evaluate({"b"})

    def test_kcnf_check(self):
        cnf = CNF([[Literal("a")], [Literal("a"), Literal("b"), Literal("c")]])
        assert cnf.is_kcnf(3)
        assert not cnf.is_kcnf(2)

    def test_all_negative(self):
        assert CNF([negative_pair("a", "b")]).all_literals_negative()
        assert not CNF([[Literal("a")]]).all_literals_negative()

    def test_declared_variables(self):
        cnf = CNF([negative_pair("a", "b")], variables=["a", "b", "c"])
        assert cnf.variables() == frozenset({"a", "b", "c"})
        with pytest.raises(CNFError):
            CNF([negative_pair("a", "b")], variables=["a"])

    def test_empty_clause_rejected(self):
        with pytest.raises(CNFError):
            CNF([[]])

    def test_to_formula_and_circuit_agree(self):
        cnf = CNF(
            [
                [Literal("a"), Literal("b", False)],
                [Literal("c")],
            ]
        )
        formula = cnf.to_formula()
        circuit = cnf.to_circuit()
        for assignment in [set(), {"a"}, {"c"}, {"a", "c"}, {"b", "c"}]:
            expected = cnf.evaluate(assignment)
            assert formula.evaluate(assignment) == expected
            assert circuit.evaluate(frozenset(assignment)) == expected

    def test_cnf_circuit_depth_two(self):
        cnf = CNF([[Literal("a"), Literal("b", False)], [Literal("c")]])
        assert cnf.to_circuit().depth() == 2


class TestLevelAlternation:
    def test_invariants(self):
        leveled, t = level_alternate(monotone_sample())
        assert check_alternation(leveled)
        assert t >= 1
        assert leveled.level(leveled.output) == 2 * t

    def test_semantics_preserved(self):
        original = monotone_sample()
        leveled, _t = level_alternate(original)
        import itertools

        inputs = original.inputs
        for size in range(len(inputs) + 1):
            for chosen in itertools.combinations(inputs, size):
                assert original.evaluate(frozenset(chosen)) == leveled.evaluate(
                    frozenset(chosen)
                )

    def test_and_output_gets_or_wrapper(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input("b")
        c = builder.build(builder.and_(a, b))
        leveled, _ = level_alternate(c)
        assert leveled.gate(leveled.output).kind == OR

    def test_input_output_degenerate(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        c = builder.build(a)
        leveled, t = level_alternate(c)
        assert check_alternation(leveled)
        assert leveled.evaluate(frozenset({"a"}))
        assert not leveled.evaluate(frozenset())
        assert t == 1

    def test_non_monotone_rejected(self):
        with pytest.raises(CircuitError):
            level_alternate(xor_circuit())

    def test_deep_unbalanced_circuit(self):
        builder = CircuitBuilder()
        inputs = [builder.input(f"i{j}") for j in range(5)]
        current = inputs[0]
        for nxt in inputs[1:]:
            current = builder.or_(builder.and_(current, nxt), nxt)
        circuit = builder.build(current)
        leveled, _t = level_alternate(circuit)
        assert check_alternation(leveled)
        import itertools

        for size in range(6):
            for chosen in itertools.combinations(circuit.inputs, size):
                assert circuit.evaluate(frozenset(chosen)) == leveled.evaluate(
                    frozenset(chosen)
                )
