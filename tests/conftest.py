"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    FirstOrderEvaluator,
    NaiveEvaluator,
    PositiveEvaluator,
    TreewidthEvaluator,
    YannakakisEvaluator,
)
from repro.inequalities import AcyclicInequalityEvaluator
from repro.relational import Database


@pytest.fixture
def naive() -> NaiveEvaluator:
    return NaiveEvaluator()


@pytest.fixture
def yannakakis() -> YannakakisEvaluator:
    return YannakakisEvaluator()


@pytest.fixture
def positive_eval() -> PositiveEvaluator:
    return PositiveEvaluator()


@pytest.fixture
def fo_eval() -> FirstOrderEvaluator:
    return FirstOrderEvaluator()


@pytest.fixture
def theorem2() -> AcyclicInequalityEvaluator:
    return AcyclicInequalityEvaluator()


@pytest.fixture
def treewidth_eval() -> TreewidthEvaluator:
    return TreewidthEvaluator()


@pytest.fixture
def edge_db() -> Database:
    """A small digraph: 1→2→3→4 plus 1→3."""
    return Database.from_tuples({"E": [(1, 2), (2, 3), (3, 4), (1, 3)]})


@pytest.fixture
def ep_db() -> Database:
    """Employee–project assignments from the paper's §5 example."""
    return Database.from_tuples(
        {"EP": [("ann", "p1"), ("ann", "p2"), ("bob", "p1"), ("cat", "p3")]}
    )
