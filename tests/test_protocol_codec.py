"""Property tests for the wire codec: byte-exact round-trips, strict rejects.

The framing contract the server and both clients rely on: for every valid
message ``m``, ``decode(encode(m)) == m`` and — because ``encode`` is
canonical (sorted keys, no insignificant whitespace, deterministic row
order) — ``encode(decode(encode(m))) == encode(m)`` byte for byte.
Hypothesis drives the message space: every request and response kind,
unicode constants (including newlines and quotes, which JSON escaping must
neutralize), empty relations, and batches far beyond the service's
``batch_limit``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation, parse_query
from repro.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
    decode,
    decode_relation,
    encode,
    encode_relation,
    error_response,
    query_text,
    request_id_of,
)
from repro.protocol.messages import (
    BATCH_OPS,
    BOOLEAN,
    BOOLEANS,
    ERROR,
    PING,
    PONG,
    QUERY_OPS,
    RELATION,
    RELATIONS,
    STATS,
    STATS_RESULT,
    TEXT,
    ErrorInfo,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

ids = st.integers(min_value=0, max_value=2**31)
texts = st.text(max_size=80)  # arbitrary unicode: quotes, newlines, emoji
names = st.text(min_size=1, max_size=24)

query_requests = st.builds(
    Request,
    op=st.sampled_from(QUERY_OPS),
    id=ids,
    query=texts,
    database=names,
)

# "Oversized": far beyond DEFAULT_BATCH_LIMIT (64) — framing must not care.
batch_requests = st.builds(
    lambda op, rid, queries, database: Request(
        op=op, id=rid, queries=tuple(queries), database=database
    ),
    op=st.sampled_from(BATCH_OPS),
    rid=ids,
    queries=st.lists(texts, max_size=200),
    database=names,
)

nullary_requests = st.builds(Request, op=st.sampled_from((STATS, PING)), id=ids)

requests = st.one_of(query_requests, batch_requests, nullary_requests)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    texts,
)

json_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=12), children, max_size=4),
    ),
    max_leaves=12,
)


@st.composite
def relation_payloads(draw):
    """Canonical relation payloads, arity 0–4, 0–20 rows, unicode values."""
    arity = draw(st.integers(min_value=0, max_value=4))
    attributes = draw(
        st.lists(names, min_size=arity, max_size=arity, unique=True)
    )
    row = st.tuples(*([scalars] * arity))
    rows = draw(st.lists(row, max_size=20))
    return encode_relation(Relation.from_rows(tuple(attributes), rows))


@st.composite
def responses(draw):
    kind = draw(
        st.sampled_from(
            (RELATION, BOOLEAN, RELATIONS, BOOLEANS, TEXT, STATS_RESULT, PONG, ERROR)
        )
    )
    rid = draw(st.one_of(st.none(), ids))
    if kind == ERROR:
        error = ErrorInfo(
            code=draw(names),
            message=draw(texts),
            detail=draw(st.dictionaries(st.text(max_size=12), scalars, max_size=4)),
        )
        return Response(id=rid, kind=ERROR, error=error)
    if kind == RELATION:
        result = draw(relation_payloads())
    elif kind == RELATIONS:
        result = draw(st.lists(relation_payloads(), max_size=5))
    elif kind == BOOLEAN:
        result = draw(st.booleans())
    elif kind == BOOLEANS:
        result = draw(st.lists(st.booleans(), max_size=100))
    elif kind == TEXT:
        result = draw(texts)
    elif kind == STATS_RESULT:
        result = draw(json_values)
    else:  # PONG
        result = None
    return Response(id=rid, kind=kind, result=result)


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------


class TestRoundTrips:
    @given(message=requests)
    @settings(max_examples=200)
    def test_request_round_trip_byte_exact(self, message):
        data = encode(message)
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        decoded = decode(data)
        assert decoded == message
        assert encode(decoded) == data

    @given(message=responses())
    @settings(max_examples=200)
    def test_response_round_trip_byte_exact(self, message):
        data = encode(message)
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        decoded = decode(data)
        assert decoded == message
        assert encode(decoded) == data

    @given(message=st.one_of(requests, responses()))
    def test_encode_is_canonical_json(self, message):
        data = encode(message)
        payload = json.loads(data)
        assert payload["v"] == PROTOCOL_VERSION
        recanonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
        assert data == recanonical + b"\n"

    @given(payload=relation_payloads())
    def test_relation_payload_round_trip(self, payload):
        relation = decode_relation(payload)
        assert encode_relation(relation) == payload

    def test_empty_relation_round_trips(self):
        relation = Relation.from_rows(("a", "b"))
        payload = encode_relation(relation)
        assert payload == {"attributes": ["a", "b"], "rows": []}
        assert decode_relation(payload) == relation

    def test_unicode_constants_survive(self):
        relation = Relation.from_rows(("name",), [("héllo wörld",), ("改行\nあり",), ("'q'",)])
        assert decode_relation(encode_relation(relation)) == relation

    def test_query_text_round_trips_through_parser(self):
        query = parse_query("G(e) :- EP(e, p), EP(e, q), p != q.")
        assert parse_query(query_text(query)) == query
        assert query_text("Q(x) :- E(x, y).") == "Q(x) :- E(x, y)."


# ----------------------------------------------------------------------
# Strict rejection
# ----------------------------------------------------------------------


class TestRejects:
    @pytest.mark.parametrize(
        "line, code",
        [
            (b"not json at all\n", "not_json"),
            (b"[1, 2, 3]\n", "not_json"),
            (b'"just a string"\n', "not_json"),
            (b'{"op": "execute"}\n', "unsupported_version"),
            (b'{"v": 99, "op": "ping", "id": 1}\n', "unsupported_version"),
            (b'{"v": 1, "neither": true}\n', "bad_request"),
            (b'{"v": 1, "op": "frobnicate", "id": 1}\n', "bad_request"),
            (b'{"v": 1, "op": "ping", "id": -4}\n', "bad_request"),
            (b'{"v": 1, "op": "ping", "id": 1, "query": "Q"}\n', "bad_request"),
            (b'{"v": 1, "op": "execute", "id": 1}\n', "bad_request"),
            (b'{"v": 1, "op": "execute", "id": 1, "query": "Q", '
             b'"database": "d", "extra": 1}\n', "bad_request"),
            (b'{"v": 1, "op": "execute_batch", "id": 1, "queries": "Q", '
             b'"database": "d"}\n', "bad_request"),
            (b'{"v": 1, "ok": true, "kind": "nope", "result": 1}\n', "bad_request"),
            (b'{"v": 1, "ok": false, "kind": "error", "result": 1}\n', "bad_request"),
            (b'{"v": 1, "ok": false, "kind": "error", "error": {}}\n', "bad_request"),
            (b'{"v": 1, "ok": "yes", "kind": "text"}\n', "bad_request"),
            (b"\xff\xfe\n", "not_json"),
        ],
    )
    def test_bad_frames_raise_typed_errors(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            decode(line)
        assert excinfo.value.code == code

    def test_unrepresentable_relation_value_rejected(self):
        relation = Relation.from_rows(("x",), [(object(),)])
        with pytest.raises(ProtocolError) as excinfo:
            encode_relation(relation)
        assert excinfo.value.code == "unrepresentable"

    def test_request_id_recovery(self):
        assert request_id_of(b'{"v": 1, "op": "bad", "id": 17}') == 17
        assert request_id_of(b"garbage") is None
        assert request_id_of(b'{"id": -3}') is None
        assert request_id_of(b'{"id": true}') is None
        assert request_id_of(b"[4]") is None

    def test_error_response_taxonomy_is_json_able(self):
        response = error_response(5, ValueError("boom"))
        assert response.error.code == "internal_error"
        decoded = decode(encode(response))
        assert decoded == response
        assert decoded.error.detail["type"] == "ValueError"
