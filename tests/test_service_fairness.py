"""Service-layer fairness, typed rejections, and per-client stats.

The in-process half of the protocol PR: the :class:`FairQueue` round-robin
contract (deterministic, no timing), the per-client admission budget
(structured :class:`ServiceOverloadedError`, never a wedged queue), the
typed mapping of ``parse_query`` failures on **every** facade method (the
regression the PR fixes — raw ``ParseError`` tracebacks used to cross the
facade), and the per-client stats rollup.
"""

import asyncio

import pytest

from repro import QueryEngine, QueryService
from repro.errors import ParseError, RequestRejectedError, ServiceOverloadedError
from repro.operations import operations_of
from repro.service import ClientStats, FairQueue
from repro.workloads import chain_database
from repro.workloads.queries import path_query

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def chain_db():
    return chain_database(layers=5, width=32, p=0.3, seed=11)


class TestFairQueue:
    def test_round_robin_across_lanes(self):
        async def main():
            queue = FairQueue()
            for item in range(10):
                await queue.put(("flood", item), "flood")
            for item in range(2):
                await queue.put(("polite", item), "polite")
            order = [await queue.get() for _ in range(12)]
            return order

        order = asyncio.run(main())
        # The two polite items are served 2nd and 4th — never behind the
        # whole flood, which plain FIFO would force (11th and 12th).
        assert order[1] == ("polite", 0)
        assert order[3] == ("polite", 1)
        assert [item for item in order if item[0] == "flood"] == [
            ("flood", item) for item in range(10)
        ]  # FIFO within a lane

    def test_three_lanes_interleave(self):
        async def main():
            queue = FairQueue()
            for lane in ("a", "b", "c"):
                for item in range(3):
                    await queue.put((lane, item), lane)
            return [await queue.get() for _ in range(9)]

        order = asyncio.run(main())
        assert [lane for lane, _ in order] == list("abc" * 3)

    def test_bounded_put_blocks_and_join_settles(self):
        async def main():
            queue = FairQueue(maxsize=2)
            await queue.put(1, "a")
            await queue.put(2, "b")
            assert queue.full()
            blocked = asyncio.ensure_future(queue.put(3, "a"))
            await asyncio.sleep(0)
            assert not blocked.done()
            assert await queue.get() == 1
            await blocked  # the freed slot admits the waiter
            assert queue.qsize() == 2
            assert queue.pending_for("a") == 1
            assert queue.pending_for("b") == 1
            got = [await queue.get(), await queue.get()]
            assert sorted(got) == [2, 3]
            for _ in range(3):
                queue.task_done()
            await asyncio.wait_for(queue.join(), timeout=1)

        asyncio.run(main())

    def test_put_nowait_raises_when_full(self):
        async def main():
            queue = FairQueue(maxsize=1)
            queue.put_nowait(1, "a")
            with pytest.raises(asyncio.QueueFull):
                queue.put_nowait(2, "a")

        asyncio.run(main())

    def test_cancelled_putter_does_not_lose_the_slot(self):
        async def main():
            queue = FairQueue(maxsize=1)
            await queue.put(1, "a")
            first = asyncio.ensure_future(queue.put(2, "a"))
            second = asyncio.ensure_future(queue.put(3, "b"))
            await asyncio.sleep(0)
            first.cancel()
            await asyncio.gather(first, return_exceptions=True)
            await queue.get()
            await asyncio.wait_for(second, timeout=1)  # slot passed along
            assert queue.qsize() == 1

        asyncio.run(main())


class TestTypedRejections:
    """Malformed queries on every facade method: typed errors, not
    parser tracebacks, and the service stays fully usable afterwards."""

    BAD = "Q(x) :- E(x, "

    @pytest.mark.parametrize(
        "method, batch_kind",
        [
            ("execute", None),
            ("decide", None),
            ("explain", None),
            ("run_batch", "execute"),
            ("run_batch", "decide"),
        ],
    )
    def test_malformed_text_is_typed_on_every_facade_method(
        self, chain_db, method, batch_kind
    ):
        async def main():
            async with QueryService() as service:
                call = getattr(service, method)
                argument = (
                    operations_of(batch_kind, [self.BAD])
                    if batch_kind
                    else self.BAD
                )
                with pytest.raises(RequestRejectedError) as excinfo:
                    await call(argument, chain_db)
                error = excinfo.value
                assert not isinstance(error, ParseError)
                assert error.code == "parse_error"
                assert error.detail["position"] >= 0
                assert error.detail["line"] == 1
                assert error.__cause__.__class__ is ParseError
                # The service keeps serving after the rejection.
                query = path_query(3, head_arity=1)
                result = await service.execute(query, chain_db)
                stats = await service.stats()
                return result, stats

        result, stats = asyncio.run(main())
        assert result.cardinality > 0
        assert stats.service.rejected == 1
        assert stats.service.failed == 0

    @pytest.mark.parametrize("method", ["execute", "decide", "explain"])
    def test_non_query_objects_rejected_as_bad_request(self, chain_db, method):
        async def main():
            async with QueryService() as service:
                with pytest.raises(RequestRejectedError) as excinfo:
                    await getattr(service, method)(42, chain_db)
                return excinfo.value

        error = asyncio.run(main())
        assert error.code == "bad_request"

    def test_text_queries_execute_like_objects(self, chain_db):
        text = "Q(x, y) :- E(x, y)."

        async def main():
            async with QueryService() as service:
                from_text = await service.execute(text, chain_db)
                from_object = await service.execute(
                    path_query(1, head_arity=2), chain_db
                )
                return from_text, from_object

        from_text, from_object = asyncio.run(main())
        sequential = QueryEngine(parallel=False)
        from repro import parse_query

        assert from_text == sequential.execute(parse_query(text), chain_db)
        assert from_text.cardinality == chain_db["E"].cardinality
        assert from_object == from_text


class TestPerClientBudget:
    def test_flooding_client_rejected_polite_client_unaffected(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})
        flood = [query.decision_instance((value,)) for value in starts[:20]]
        polite = [query.decision_instance((value,)) for value in starts[20:24]]

        async def main():
            async with QueryService(
                batch_window=0.0, dispatchers=1, max_pending_per_client=3
            ) as service:
                flood_outcomes = await asyncio.gather(
                    *(
                        service.execute(q, chain_db, client="flood")
                        for q in flood
                    ),
                    return_exceptions=True,
                )
                polite_results = [
                    await service.execute(q, chain_db, client="polite")
                    for q in polite
                ]
                stats = await service.stats()
            return flood_outcomes, polite_results, stats

        flood_outcomes, polite_results, stats = asyncio.run(main())
        rejected = [
            outcome
            for outcome in flood_outcomes
            if isinstance(outcome, ServiceOverloadedError)
        ]
        completed = [
            outcome
            for outcome in flood_outcomes
            if not isinstance(outcome, BaseException)
        ]
        assert rejected and completed
        for error in rejected:
            assert error.code == "backpressure"
            assert error.detail["client"] == "flood"
            assert error.detail["budget"] == 3
        sequential = QueryEngine(parallel=False)
        assert polite_results == [
            sequential.execute(q, chain_db) for q in polite
        ]
        assert stats.client("flood").rejected == len(rejected)
        assert stats.client("polite").rejected == 0
        assert stats.service.rejected == len(rejected)

    def test_unbounded_by_default(self, chain_db):
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:16]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            async with QueryService(batch_window=0.0, dispatchers=1) as service:
                results = await asyncio.gather(
                    *(
                        service.execute(q, chain_db, client="one")
                        for q in instances
                    )
                )
                stats = await service.stats()
            return results, stats

        results, stats = asyncio.run(main())
        assert len(results) == len(instances)
        assert stats.service.rejected == 0

    def test_coalesced_requests_do_not_burn_budget(self, chain_db):
        query = path_query(4, head_arity=1)

        async def main():
            async with QueryService(
                batch_window=0.0, max_pending_per_client=2
            ) as service:
                results = await asyncio.gather(
                    *(
                        service.execute(query, chain_db, client="hot")
                        for _ in range(12)
                    )
                )
                stats = await service.stats()
            return results, stats

        results, stats = asyncio.run(main())
        # 12 identical requests: 1 admitted, 11 coalesced — none rejected,
        # because coalesced waiters ride an execution they do not own.
        assert all(result == results[0] for result in results)
        assert stats.service.rejected == 0
        assert stats.client("hot").coalesced == 11


class TestPerClientStats:
    def test_rollup_counts_and_latencies(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})
        alpha = [query.decision_instance((value,)) for value in starts[:6]]
        beta = [query.decision_instance((value,)) for value in starts[6:9]]

        async def main():
            async with QueryService(batch_window=0.0) as service:
                await asyncio.gather(
                    *(service.execute(q, chain_db, client="alpha") for q in alpha),
                    *(service.decide(q, chain_db, client="beta") for q in beta),
                )
                return await service.stats()

        stats = asyncio.run(main())
        names = {client.client for client in stats.clients}
        assert {"alpha", "beta"} <= names
        alpha_stats = stats.client("alpha")
        beta_stats = stats.client("beta")
        assert isinstance(alpha_stats, ClientStats)
        assert alpha_stats.submitted == len(alpha)
        assert alpha_stats.completed == len(alpha)
        assert beta_stats.requests == len(beta)
        assert alpha_stats.p95_seconds >= alpha_stats.p50_seconds >= 0.0
        assert alpha_stats.p95_seconds > 0.0
        with pytest.raises(KeyError):
            stats.client("nobody")

    def test_anonymous_callers_share_one_lane(self, chain_db):
        query = path_query(3, head_arity=1)

        async def main():
            async with QueryService(batch_window=0.0) as service:
                await service.execute(query, chain_db)
                stats = await service.stats()
            return stats

        stats = asyncio.run(main())
        assert [client.client for client in stats.clients] == [""]
        assert stats.clients[0].submitted == 1
