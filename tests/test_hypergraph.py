"""Tests for hypergraphs, GYO reduction, join trees."""

import pytest

from repro.errors import NotAcyclicError, SchemaError
from repro.hypergraph import (
    Hypergraph,
    gyo_reduce,
    is_acyclic,
    join_tree_of,
    primal_graph,
)


def hg(*edges, nodes=None):
    all_nodes = set()
    for e in edges:
        all_nodes |= set(e)
    return Hypergraph(nodes or all_nodes, [set(e) for e in edges])


class TestHypergraph:
    def test_stray_edge_node_rejected(self):
        with pytest.raises(SchemaError):
            Hypergraph({"a"}, [{"a", "b"}])

    def test_incidence(self):
        h = hg("ab", "bc")
        assert set(h.incidence()["b"]) == {0, 1}

    def test_connected(self):
        assert hg("ab", "bc").is_connected()
        assert not hg("ab", "cd").is_connected()
        assert hg().is_connected()

    def test_duplicate_edges_preserved(self):
        h = hg("ab", "ab")
        assert h.num_edges == 2


class TestGYO:
    def test_path_acyclic(self):
        assert is_acyclic(hg("ab", "bc", "cd"))

    def test_triangle_cyclic(self):
        assert not is_acyclic(hg("ab", "bc", "ca"))

    def test_star_acyclic(self):
        assert is_acyclic(hg("ab", "ac", "ad"))

    def test_triangle_with_covering_edge_acyclic(self):
        # alpha-acyclicity: adding the full edge makes the triangle acyclic.
        assert is_acyclic(hg("ab", "bc", "ca", "abc"))

    def test_cycle4_cyclic(self):
        assert not is_acyclic(hg("ab", "bc", "cd", "da"))

    def test_single_edge(self):
        assert is_acyclic(hg("abc"))

    def test_disconnected_acyclic(self):
        assert is_acyclic(hg("ab", "cd"))

    def test_disconnected_one_cyclic_component(self):
        assert not is_acyclic(hg("ab", "xy", "yz", "zx"))

    def test_contained_edges(self):
        assert is_acyclic(hg("ab", "abc", "bc"))

    def test_witnesses_cover_absorbed_edges(self):
        result = gyo_reduce(hg("ab", "bc", "cd"))
        assert result.is_empty
        absorbed = [i for i, w in result.witnesses.items() if w is not None]
        assert len(absorbed) == 2

    def test_residual_nonempty_for_cyclic(self):
        result = gyo_reduce(hg("ab", "bc", "ca"))
        assert not result.is_empty
        assert len(result.residual) == 3


class TestJoinTree:
    def test_cyclic_raises(self):
        with pytest.raises(NotAcyclicError):
            join_tree_of(hg("ab", "bc", "ca"))

    def test_path_tree_structure(self):
        tree = join_tree_of(hg("ab", "bc", "cd"))
        assert tree.num_nodes == 3
        assert tree.verify_running_intersection()
        assert len(list(tree.edges())) == 2

    def test_star_tree(self):
        tree = join_tree_of(hg("ab", "ac", "ad"))
        assert tree.verify_running_intersection()

    def test_disconnected_components_linked(self):
        tree = join_tree_of(hg("ab", "cd"))
        assert tree.num_nodes == 2
        assert tree.verify_running_intersection()

    def test_orders(self):
        tree = join_tree_of(hg("ab", "bc", "cd"))
        bottom_up = tree.bottom_up_order()
        for node in tree.nodes():
            parent = tree.parent(node)
            if parent is not None:
                assert bottom_up.index(node) < bottom_up.index(parent)
        assert tuple(reversed(bottom_up)) == tree.top_down_order()

    def test_subtree_vars(self):
        tree = join_tree_of(hg("ab", "bc", "cd"))
        root_vars = tree.subtree_vars(tree.root)
        assert root_vars == frozenset("abcd")

    def test_depth(self):
        tree = join_tree_of(hg("ab", "bc", "cd"))
        assert tree.depth(tree.root) == 0

    def test_duplicate_edge_nodes_each_present(self):
        tree = join_tree_of(hg("ab", "ab", "bc"))
        assert tree.num_nodes == 3
        assert tree.verify_running_intersection()


class TestPrimalGraph:
    def test_edges(self):
        adjacency = primal_graph(hg("abc", "cd"))
        assert adjacency["a"] == {"b", "c"}
        assert adjacency["d"] == {"c"}

    def test_isolated_node_present(self):
        h = Hypergraph({"a", "b"}, [{"a"}])
        adjacency = primal_graph(h)
        assert adjacency["b"] == set()
