"""Tests for the k-path special case (§5), the W[SAT] ≠-formula reduction,
and database persistence."""

import pytest

from repro.errors import ReductionError, SchemaError
from repro.inequalities import (
    AcyclicInequalityEvaluator,
    FormulaInequalityEvaluator,
    GreedyPerfectHashFamily,
    RandomHashFamily,
)
from repro.parametric.problems import (
    KPathInstance,
    has_simple_path_bruteforce,
    has_simple_path_color_coding,
)
from repro.reductions import (
    K_PATH_TO_ACYCLIC_NEQ,
    WSAT_TO_NEQ_FORMULA,
    k_path_query,
    k_path_to_query_instance,
    wsat_to_neq_formula,
)
from repro.circuits import fand, fnot, for_, var
from repro.parametric.problems import WeightedFormulaInstance
from repro.relational import (
    Database,
    database_from_json,
    database_to_json,
    load_database_csv,
    load_database_json,
    save_database_csv,
    save_database_json,
)
from repro.workloads import (
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    path_graph,
    random_graph,
)


class TestKPathSolvers:
    def graphs(self):
        return [
            path_graph(6),
            cycle_graph(5),
            complete_graph(4),
            grid_graph(2, 3),
            empty_graph(3),
            random_graph(7, 0.3, seed=1),
            random_graph(7, 0.5, seed=2),
        ]

    def test_color_coding_matches_bruteforce(self):
        for graph in self.graphs():
            for k in (2, 3, 4):
                expected = has_simple_path_bruteforce(graph, k)
                assert has_simple_path_color_coding(graph, k) == expected, (
                    graph, k,
                )

    def test_color_coding_with_random_family_no_false_positives(self):
        family = RandomHashFamily(confidence=1.0, seed=5)
        for graph in self.graphs():
            if has_simple_path_color_coding(graph, 3, family=family):
                assert has_simple_path_bruteforce(graph, 3)

    def test_trivial_parameters(self):
        g = path_graph(3)
        assert has_simple_path_bruteforce(g, 0)
        assert has_simple_path_bruteforce(g, 1)
        assert has_simple_path_color_coding(g, 1)
        assert not has_simple_path_color_coding(g, 5)  # k > |V|

    def test_path_graph_exact_length(self):
        g = path_graph(5)
        assert has_simple_path_bruteforce(g, 5)
        assert not has_simple_path_bruteforce(g, 6)


class TestKPathViaTheorem2:
    def test_reduction_verified(self):
        suite = [
            KPathInstance(g, k)
            for g in [path_graph(5), cycle_graph(5), random_graph(6, 0.4, seed=3)]
            for k in (2, 3, 4)
        ]
        records = K_PATH_TO_ACYCLIC_NEQ.verify(suite)
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_theorem2_engine_solves_k_path(self):
        evaluator = AcyclicInequalityEvaluator(GreedyPerfectHashFamily(seed=2))
        for graph in [path_graph(6), cycle_graph(6), random_graph(7, 0.35, seed=4)]:
            for k in (3, 4):
                instance = k_path_to_query_instance(KPathInstance(graph, k))
                expected = has_simple_path_bruteforce(graph, k)
                assert evaluator.decide(instance.query, instance.database) == expected

    def test_query_shape(self):
        q = k_path_query(4)
        assert q.is_acyclic()
        assert len(q.inequalities) == 6
        from repro.inequalities import partition_inequalities

        partition = partition_inequalities(q)
        # Adjacent pairs co-occur in atoms (I2); distant pairs are I1.
        assert len(partition.i2) == 3
        assert len(partition.i1) == 3

    def test_k1_rejected(self):
        with pytest.raises(ReductionError):
            k_path_query(1)

    def test_edgeless_graph(self):
        instance = k_path_to_query_instance(KPathInstance(empty_graph(3), 2))
        assert not AcyclicInequalityEvaluator().decide(
            instance.query, instance.database
        )


class TestWsatToNeqFormula:
    def test_reduction_verified(self):
        formulas = [
            for_(fand(var("x1"), var("x2")), fnot(var("x3"))),
            fand(for_(var("a"), var("b")), var("c")),
        ]
        suite = [
            WeightedFormulaInstance(f, k) for f in formulas for k in (1, 2)
        ]
        records = WSAT_TO_NEQ_FORMULA.verify(suite)
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_formula_evaluator_agrees_in_param_q_regime(self):
        instance = wsat_to_neq_formula(
            WeightedFormulaInstance(
                for_(fand(var("x1"), var("x2")), var("x3")), 2
            )
        )
        evaluator = FormulaInequalityEvaluator(allow_disjunctive_constants=True)
        fast = evaluator.decide(
            instance.query, instance.formula, instance.database
        )
        from repro.reductions import NEQ_FORMULA_EVALUATION_V

        assert fast == NEQ_FORMULA_EVALUATION_V.solve(instance)

    def test_produced_formula_is_disjunctive_in_constants(self):
        from repro.query import is_conjunctive_in_constants

        instance = wsat_to_neq_formula(
            WeightedFormulaInstance(for_(var("p"), var("q")), 1)
        )
        # Positive occurrences put x != c atoms under OR: the exact shape
        # the §5 W[SAT]-completeness claim is about.
        assert not is_conjunctive_in_constants(instance.formula)


class TestPersistence:
    def sample(self):
        return Database.from_tuples(
            {"E": [(1, 2), (2, 3)], "Name": [(1, "alice"), (2, "bob")]}
        )

    def test_csv_round_trip(self, tmp_path):
        db = self.sample()
        save_database_csv(db, tmp_path / "db")
        loaded = load_database_csv(tmp_path / "db")
        assert loaded["E"] == db["E"]
        assert loaded["Name"] == db["Name"]

    def test_csv_missing_directory(self, tmp_path):
        with pytest.raises(SchemaError):
            load_database_csv(tmp_path / "nope")

    def test_csv_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SchemaError):
            load_database_csv(tmp_path / "empty")

    def test_json_round_trip(self):
        db = self.sample()
        text = database_to_json(db)
        loaded = database_from_json(text)
        assert loaded["E"] == db["E"]
        assert loaded["Name"] == db["Name"]

    def test_json_file_round_trip(self, tmp_path):
        db = self.sample()
        save_database_json(db, tmp_path / "db.json")
        loaded = load_database_json(tmp_path / "db.json")
        assert loaded["E"] == db["E"]

    def test_json_rejects_garbage(self):
        with pytest.raises(SchemaError):
            database_from_json("{}")

    def test_csv_integer_parsing(self, tmp_path):
        db = Database.from_tuples({"R": [(-3, "x7"), (10, "0abc")]})
        save_database_csv(db, tmp_path / "db")
        loaded = load_database_csv(tmp_path / "db")
        assert (-3, "x7") in loaded["R"]
        assert (10, "0abc") in loaded["R"]

    def test_queries_run_on_loaded_database(self, tmp_path):
        from repro import NaiveEvaluator, parse_query

        db = self.sample()
        save_database_csv(db, tmp_path / "db")
        loaded = load_database_csv(tmp_path / "db")
        q = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        assert NaiveEvaluator().evaluate(q, loaded).rows == frozenset({(1, 3)})
