"""Tests for the §4 prenex-FO ↔ AW[SAT] correspondence (both directions)."""

import pytest

from repro.circuits import fand, fnot, for_, var
from repro.errors import ReductionError
from repro.parametric.problems import (
    AW_SAT,
    AlternatingWeightedFormulaInstance,
    alternating_weighted_formula_satisfiable,
)
from repro.query import FirstOrderQuery
from repro.query.builders import and_, atom, exists, forall, not_, or_
from repro.reductions import (
    AWSAT_TO_PRENEX_FO,
    PRENEX_FO_TO_AWSAT,
    QueryEvaluationInstance,
    prenex_fo_to_awsat,
)
from repro.relational import Database


@pytest.fixture
def graph_db():
    return Database.from_tuples(
        {"E": [(1, 2), (2, 3), (3, 1)], "Red": [(1,), (2,)]}
    )


def fo_instance(formula, db) -> QueryEvaluationInstance:
    return QueryEvaluationInstance(
        query=FirstOrderQuery((), formula), database=db
    )


class TestAWSATProblem:
    def test_exists_forall_formula(self):
        # ∃ one of {a,b}, ∀ one of {c,d}: (a∧c)∨(a∧d)∨(b∧c).
        formula = for_(
            fand(var("a"), var("c")),
            fand(var("a"), var("d")),
            fand(var("b"), var("c")),
        )
        yes = AlternatingWeightedFormulaInstance(
            formula, (("a", "b"), ("c", "d")), (1, 1)
        )
        assert AW_SAT.solve(yes)
        no = AlternatingWeightedFormulaInstance(
            formula, (("b",), ("c", "d")), (1, 1)
        )
        assert not alternating_weighted_formula_satisfiable(no)

    def test_ungoverned_formula_variables_fixed_false(self):
        # x sits outside every block: it is always false, so x alone is
        # unsatisfiable while ¬x holds whatever the block choice.
        positive = AlternatingWeightedFormulaInstance(var("x"), (("y",),), (1,))
        assert not AW_SAT.solve(positive)
        negative = AlternatingWeightedFormulaInstance(
            fnot(var("x")), (("y",),), (1,)
        )
        assert AW_SAT.solve(negative)

    def test_dummy_block_variables_allowed(self):
        instance = AlternatingWeightedFormulaInstance(
            var("x"), (("x",), ("__dummy",)), (1, 1)
        )
        assert AW_SAT.solve(instance)


class TestMembershipDirection:
    def suite(self, graph_db):
        # ∃x ∀y (¬E(x,y) ∨ Red(y)): all out-neighbours red.
        f1 = exists(
            "x", forall("y", or_(not_(atom("E", "x", "y")), atom("Red", "y")))
        )
        # ∀x ∃y E(x,y): total out-degree ≥ 1 (true on the 3-cycle).
        f2 = forall("x", exists("y", atom("E", "x", "y")))
        # ∃x ∃y (E(x,y) ∧ ¬Red(x)): needs a non-red source.
        f3 = exists("x", exists("y", and_(atom("E", "x", "y"), not_(atom("Red", "x")))))
        return [fo_instance(f, graph_db) for f in (f1, f2, f3)]

    def test_verified(self, graph_db):
        records = PRENEX_FO_TO_AWSAT.verify(self.suite(graph_db))
        assert all(r.answers_match and r.bound_holds for r in records)
        # Truth values differ across the suite (sanity of the workload).
        assert {r.expected for r in records} == {True, False} or all(
            r.expected for r in records
        )

    def test_alternation_padding(self, graph_db):
        # ∃x ∃y — same quantifier twice forces a dummy ∀ block between.
        f = exists("x", exists("y", atom("E", "x", "y")))
        instance = prenex_fo_to_awsat(fo_instance(f, graph_db))
        assert len(instance.blocks) == 3  # ∃, dummy ∀, ∃
        assert AW_SAT.solve(instance)

    def test_forall_first_padding(self, graph_db):
        f = forall("x", exists("y", atom("E", "x", "y")))
        instance = prenex_fo_to_awsat(fo_instance(f, graph_db))
        assert len(instance.blocks) == 3  # dummy ∃, ∀, ∃

    def test_non_prenex_rejected(self, graph_db):
        f = and_(
            exists("x", atom("Red", "x")), exists("y", atom("Red", "y"))
        )
        with pytest.raises(ReductionError):
            prenex_fo_to_awsat(fo_instance(f, graph_db))


class TestHardnessDirection:
    def suite(self):
        formula = for_(
            fand(var("a"), var("c")),
            fand(var("a"), var("d")),
            fand(var("b"), var("c")),
        )
        yes = AlternatingWeightedFormulaInstance(
            formula, (("a", "b"), ("c", "d")), (1, 1)
        )
        no = AlternatingWeightedFormulaInstance(
            formula, (("b",), ("c", "d")), (1, 1)
        )
        single = AlternatingWeightedFormulaInstance(
            fand(var("p"), fnot(var("q"))), (("p", "q"),), (1,)
        )
        return [yes, no, single]

    def test_verified(self):
        records = AWSAT_TO_PRENEX_FO.verify(self.suite())
        assert all(r.answers_match and r.bound_holds for r in records)
        assert [r.expected for r in records] == [True, False, True]

    def test_weight_two_block(self):
        # ∃ two of {p,q,r} with p∧q required: pick {p,q}.
        formula = fand(var("p"), var("q"))
        instance = AlternatingWeightedFormulaInstance(
            formula, (("p", "q", "r"),), (2,)
        )
        records = AWSAT_TO_PRENEX_FO.verify([instance])
        assert records[0].expected is True
        assert records[0].answers_match

    def test_degenerate_weight_rejected(self):
        instance = AlternatingWeightedFormulaInstance(
            var("p"), (("p",),), (2,)
        )
        from repro.reductions import awsat_to_prenex_fo

        with pytest.raises(ReductionError):
            awsat_to_prenex_fo(instance)

    def test_round_trip_composition(self, graph_db):
        """FO → AW[SAT] → FO preserves the answer."""
        from repro.reductions import FO_EVALUATION_V, awsat_to_prenex_fo

        f = forall("x", exists("y", atom("E", "x", "y")))
        original = fo_instance(f, graph_db)
        aw = prenex_fo_to_awsat(original)
        back = awsat_to_prenex_fo(aw)
        assert FO_EVALUATION_V.solve(back) == FO_EVALUATION_V.solve(original)
