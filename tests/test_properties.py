"""Property-based tests (hypothesis) for core invariants.

Covers the algebra laws of relations, GYO/join-tree structure, engine
equivalences on random acyclic queries, and hash-family perfectness — the
invariants DESIGN.md §6 commits to.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.evaluation import NaiveEvaluator, YannakakisEvaluator
from repro.hypergraph import Hypergraph, JoinTree, gyo_reduce, is_acyclic
from repro.inequalities import (
    AcyclicInequalityEvaluator,
    GreedyPerfectHashFamily,
    is_perfect_family,
)
from repro.relational import Relation
from repro.relational.schema import DatabaseSchema
from repro.workloads import random_acyclic_query, random_database

SETTINGS = settings(max_examples=40, deadline=None)

values = st.integers(min_value=0, max_value=4)
rows2 = st.frozensets(st.tuples(values, values), max_size=12)
rows1 = st.frozensets(st.tuples(values), max_size=6)


def rel_ab(rows):
    return Relation.from_rows(("a", "b"), rows)


def rel_bc(rows):
    return Relation.from_rows(("b", "c"), rows)


class TestRelationLaws:
    @SETTINGS
    @given(rows2, rows2)
    def test_union_commutative(self, r1, r2):
        left = rel_ab(r1)
        right = rel_ab(r2)
        assert left.union(right) == right.union(left)

    @SETTINGS
    @given(rows2, rows2)
    def test_intersection_via_difference(self, r1, r2):
        left = rel_ab(r1)
        right = rel_ab(r2)
        assert left.intersection(right) == left.difference(
            left.difference(right)
        )

    @SETTINGS
    @given(rows2, rows2)
    def test_join_commutative_up_to_column_order(self, r1, r2):
        left = rel_ab(r1)
        right = rel_bc(r2)
        assert left.natural_join(right) == right.natural_join(left)

    @SETTINGS
    @given(rows2, rows2, rows2)
    def test_join_associative(self, r1, r2, r3):
        a = rel_ab(r1)
        b = rel_bc(r2)
        c = Relation.from_rows(("c", "d"), r3)
        assert a.natural_join(b).natural_join(c) == a.natural_join(
            b.natural_join(c)
        )

    @SETTINGS
    @given(rows2, rows2)
    def test_semijoin_absorption(self, r1, r2):
        left = rel_ab(r1)
        right = rel_bc(r2)
        reduced = left.semijoin(right)
        # Semijoin is idempotent and never grows.
        assert reduced.semijoin(right) == reduced
        assert reduced.rows <= left.rows

    @SETTINGS
    @given(rows2, rows2)
    def test_semijoin_equals_projected_join(self, r1, r2):
        left = rel_ab(r1)
        right = rel_bc(r2)
        via_join = left.natural_join(right).project(("a", "b"))
        assert left.semijoin(right) == via_join

    @SETTINGS
    @given(rows2)
    def test_projection_idempotent(self, r1):
        r = rel_ab(r1)
        assert r.project(("a",)).project(("a",)) == r.project(("a",))

    @SETTINGS
    @given(rows2, rows2)
    def test_antijoin_partition(self, r1, r2):
        left = rel_ab(r1)
        right = rel_bc(r2)
        semi = left.semijoin(right)
        anti = left.antijoin(right)
        assert semi.union(anti) == left
        assert semi.intersection(anti).is_empty()


edge_sets = st.lists(
    st.frozensets(st.sampled_from("abcdef"), min_size=1, max_size=3),
    min_size=1,
    max_size=6,
)


class TestHypergraphProperties:
    @SETTINGS
    @given(edge_sets)
    def test_gyo_partitions_edges(self, edges):
        h = Hypergraph(set().union(*edges), edges)
        result = gyo_reduce(h)
        # Every edge index is accounted for: absorbed or surviving.
        accounted = set(result.witnesses) | set(result.surviving_edges)
        assert accounted == set(range(len(edges)))

    @SETTINGS
    @given(edge_sets)
    def test_join_tree_exists_iff_acyclic(self, edges):
        h = Hypergraph(set().union(*edges), edges)
        from repro.errors import NotAcyclicError

        if is_acyclic(h):
            tree = JoinTree.from_hypergraph(h)
            assert tree.verify_running_intersection()
            assert tree.num_nodes == len(edges)
        else:
            try:
                JoinTree.from_hypergraph(h)
                raise AssertionError("cyclic hypergraph produced a join tree")
            except NotAcyclicError:
                pass

    @SETTINGS
    @given(edge_sets)
    def test_subtree_vars_monotone(self, edges):
        h = Hypergraph(set().union(*edges), edges)
        if not is_acyclic(h):
            return
        tree = JoinTree.from_hypergraph(h)
        for node in tree.nodes():
            parent = tree.parent(node)
            if parent is not None:
                assert tree.subtree_vars(node) <= tree.subtree_vars(tree.root)


class TestEngineEquivalence:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_yannakakis_equals_naive(self, seed):
        rng = random.Random(seed)
        query = random_acyclic_query(
            num_atoms=rng.randint(1, 4), seed=rng.randrange(1 << 30)
        )
        schema = DatabaseSchema.of(**{a.relation: a.arity for a in query.atoms})
        db = random_database(
            schema, domain_size=3, tuples_per_relation=8,
            seed=rng.randrange(1 << 30),
        )
        assert YannakakisEvaluator().evaluate(query, db) == NaiveEvaluator().evaluate(
            query, db
        )

    @SETTINGS
    @given(st.integers(min_value=0, max_value=10_000))
    def test_theorem2_equals_naive(self, seed):
        rng = random.Random(seed)
        query = random_acyclic_query(
            num_atoms=rng.randint(1, 3),
            num_inequalities=rng.randint(0, 2),
            seed=rng.randrange(1 << 30),
        )
        schema = DatabaseSchema.of(**{a.relation: a.arity for a in query.atoms})
        db = random_database(
            schema, domain_size=3, tuples_per_relation=7,
            seed=rng.randrange(1 << 30),
        )
        evaluator = AcyclicInequalityEvaluator()
        assert evaluator.evaluate(query, db) == NaiveEvaluator().evaluate(query, db)


class TestHashFamilyProperties:
    @SETTINGS
    @given(
        st.frozensets(st.integers(min_value=0, max_value=12), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=99),
    )
    def test_greedy_family_perfect(self, domain, k, seed):
        family = list(GreedyPerfectHashFamily(seed=seed).functions(domain, k))
        assert is_perfect_family(family, domain, k)
        for h in family:
            assert set(h) == set(domain)
            assert all(1 <= v <= max(k, 1) for v in h.values())
