"""End-to-end integration scenarios across subsystems."""

import pytest

from repro import (
    Database,
    DatalogEvaluator,
    NaiveEvaluator,
    YannakakisEvaluator,
    parse_program,
    parse_query,
)
from repro.inequalities import AcyclicInequalityEvaluator
from repro.parametric.problems import CliqueInstance, find_clique
from repro.reductions import (
    clique_to_cq,
    cq_to_weighted_2cnf,
    clique_to_comparisons,
    w1_cq_oracle,
)
from repro.circuits.weighted_sat import negative_cnf_weighted_satisfiable
from repro.workloads import (
    all_examples,
    planted_clique_graph,
    random_graph,
    salary_database,
    salary_query,
)


class TestCliquePipeline:
    """clique → CQ → weighted 2-CNF → witness → clique, end to end."""

    def test_planted_clique_found_through_queries(self):
        graph, planted = planted_clique_graph(12, 4, 0.25, seed=5)
        instance = clique_to_cq(CliqueInstance(graph, 4))
        result = cq_to_weighted_2cnf(instance.query, instance.database)
        witness = negative_cnf_weighted_satisfiable(
            result.instance.cnf, result.instance.k, groups=result.groups
        )
        assert witness is not None
        valuation = result.decode(witness)
        nodes = set(valuation.values())
        assert len(nodes) == 4
        assert graph.is_clique(tuple(nodes))

    def test_negative_instance_propagates(self):
        graph = random_graph(8, 0.15, seed=9)
        if find_clique(graph, 4) is not None:
            pytest.skip("random graph accidentally has a 4-clique")
        instance = clique_to_cq(CliqueInstance(graph, 4))
        assert not NaiveEvaluator().decide(instance.query, instance.database)
        assert not w1_cq_oracle(instance.query, instance.database)


class TestPaperSection5Examples:
    def test_all_examples_agree_across_engines(self):
        naive = NaiveEvaluator()
        theorem2 = AcyclicInequalityEvaluator()
        for name, query, db in all_examples():
            if query.comparisons:
                continue  # salary query uses <, not part of Theorem 2
            assert theorem2.evaluate(query, db) == naive.evaluate(query, db), name

    def test_salary_query_naive(self):
        naive = NaiveEvaluator()
        db = salary_database(employees=15, seed=3)
        result = naive.evaluate(salary_query(), db)
        # Spot-check: every reported employee out-earns their manager.
        em = {row[0]: row[1] for row in db["EM"].rows}
        es = {row[0]: row[1] for row in db["ES"].rows}
        for (employee,) in result.rows:
            assert es[employee] > es[em[employee]]


class TestDatalogOverReductionOutput:
    def test_reachability_on_clique_database(self):
        graph = random_graph(7, 0.4, seed=13)
        instance = clique_to_cq(CliqueInstance(graph, 2))
        program = parse_program(
            "T(x, y) :- G(x, y). T(x, y) :- G(x, z), T(z, y)."
        )
        closure = DatalogEvaluator().evaluate(program, instance.database)
        # Transitive closure of a symmetric relation: reachability classes.
        for a, b in graph.edges():
            assert (a, b) in closure and (b, a) in closure


class TestComparisonPipeline:
    def test_theorem3_instance_evaluable_by_naive(self):
        graph = random_graph(5, 0.6, seed=21)
        instance = clique_to_comparisons(CliqueInstance(graph, 3))
        naive = NaiveEvaluator()
        assert naive.decide(instance.query, instance.database) == (
            find_clique(graph, 3) is not None
        )


class TestMixedEngineConsistency:
    def test_four_engines_one_query(self):
        q = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        db = Database.from_tuples(
            {"E": [(i, (i * 3 + 1) % 10) for i in range(10)]}
        )
        naive = NaiveEvaluator().evaluate(q, db)
        yann = YannakakisEvaluator().evaluate(q, db)
        t2 = AcyclicInequalityEvaluator().evaluate(q, db)
        from repro.evaluation import TreewidthEvaluator

        tw = TreewidthEvaluator().evaluate(q, db)
        assert naive == yann == t2 == tw
