"""Adaptive re-planning and the decision-only batch path.

Two halves of this PR's engine work:

* **re-planning** — when an execution's actual cardinality drifts ≥ the
  threshold from the plan's estimate, the engine invalidates the cached
  plan and re-plans with the observation as corrected statistics, visible
  in ``explain`` and ``stats()``;
* **decide_batch** — N same-shape decision instances lift into one query
  whose join tree is rooted at the injected parameter atom; a bottom-up
  semijoin pass there yields every member's decision at once, exactly
  matching per-member ``decide``.
"""

import pytest

from repro import (
    ConjunctiveQuery,
    Database,
    QueryEngine,
    Relation,
    YannakakisEvaluator,
)
from repro.engine import DEFAULT_REPLAN_LIMIT, Planner
from repro.parallel import ParallelYannakakisEvaluator, lift_batch_group
from repro.operations import DECIDE, operations_of
from repro.query.atoms import Atom
from repro.query.terms import Constant, Variable
from repro.workloads import (
    chain_database,
    cycle_query,
    path_neq_query,
    path_query,
    star_database,
    star_query,
)


@pytest.fixture()
def drifting_workload():
    """A join whose estimate is ≥ 10× its actual cardinality: E and F
    share no join values, so the result is empty while the uniformity
    assumption predicts |E| matches."""
    n = 64
    E = Relation.from_rows(("a", "b"), [(i, i + 1000) for i in range(n)])
    F = Relation.from_rows(("c", "d"), [(i + 5000, i + 9000) for i in range(n)])
    database = Database({"E": E, "F": F})
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    query = ConjunctiveQuery((x, z), [Atom("E", (x, y)), Atom("F", (y, z))])
    return query, database


class TestAdaptiveReplanning:
    def test_drift_invalidates_and_replans(self, drifting_workload):
        query, database = drifting_workload
        engine = QueryEngine(parallel=False)
        first = engine.plan_for(query, database)
        assert first.replans == 0
        assert first.estimated_rows >= 10  # the mis-estimate
        result = engine.execute(query, database)
        assert result.cardinality == 0
        replanned = engine.plan_for(query, database)
        assert replanned.replans == 1
        assert replanned.corrected_rows == 0.0
        assert replanned.estimated_rows == 0.0

    def test_replan_surfaces_in_explain_and_stats(self, drifting_workload):
        query, database = drifting_workload
        engine = QueryEngine(parallel=False)
        engine.execute(query, database)
        rendering = engine.explain(query, database)
        assert "re-plan" in rendering
        assert "corrected" in rendering
        stats = engine.stats()
        assert stats.replans == 1
        assert any(shape.replans == 1 for shape in stats.shapes)
        assert "re-plan" in stats.summary()

    def test_stable_workload_never_replans(self):
        # Full-head query: the satisfying-assignment estimate and the
        # result cardinality measure the same thing, and on this workload
        # they agree within ~3× — well under the 10× threshold.  (A
        # projecting head legitimately re-plans once: the projection
        # collapses the count, the correction adopts it, and the shape
        # settles — pinned by test_replan_settles_after_one_correction.)
        database = chain_database(layers=4, width=16, p=0.4, seed=2)
        query = path_query(3, head_arity=4)
        engine = QueryEngine(parallel=False)
        for _ in range(3):
            engine.execute(query, database)
        assert engine.stats().replans == 0

    def test_replan_settles_after_one_correction(self, drifting_workload):
        query, database = drifting_workload
        engine = QueryEngine(parallel=False)
        for _ in range(4):
            engine.execute(query, database)
        # Corrected estimate equals the observation: no further drift.
        assert engine.plan_for(query, database).replans == 1
        assert engine.stats().replans == 1

    def test_oscillating_parameterizations_stop_at_the_replan_limit(self):
        """One shape whose constants alternate between a hub (many rows)
        and a leaf (one row) drifts on every execution; the per-entry
        budget must stop the re-plan churn instead of letting it turn the
        plan cache into a per-request planner."""
        hub_rows = [("hub", i) for i in range(200)]
        database = Database(
            {"E": Relation.from_rows(("a", "b"), hub_rows + [("leaf", -1)])}
        )
        y = Variable("y")

        def instance(constant):
            return ConjunctiveQuery(
                (y,), [Atom("E", (Constant(constant), y))]
            )

        engine = QueryEngine(parallel=False, replan_drift_threshold=2.0)
        for i in range(20):
            engine.execute(instance("hub" if i % 2 == 0 else "leaf"), database)
        stats = engine.stats()
        assert 1 <= stats.replans <= DEFAULT_REPLAN_LIMIT
        # The cache entry survives: lookups after the budget is spent
        # still hit instead of re-planning.
        hits_before = engine.cache_stats.hits
        engine.execute(instance("hub"), database)
        assert engine.cache_stats.hits == hits_before + 1

    def test_threshold_none_disables_replanning(self, drifting_workload):
        query, database = drifting_workload
        engine = QueryEngine(parallel=False, replan_drift_threshold=None)
        engine.execute(query, database)
        assert engine.plan_for(query, database).replans == 0
        assert engine.stats().replans == 0

    def test_decide_only_runs_do_not_replan(self, drifting_workload):
        query, database = drifting_workload
        engine = QueryEngine(parallel=False)
        engine.decide(query, database)  # no cardinality observed
        assert engine.plan_for(query, database).replans == 0

    def test_replanned_results_stay_correct(self, drifting_workload):
        query, database = drifting_workload
        engine = QueryEngine(parallel=False)
        before = engine.execute(query, database)
        after = engine.execute(query, database)  # runs the re-planned plan
        assert before == after

    def test_planner_consumes_observed_rows(self, drifting_workload):
        query, database = drifting_workload
        planner = Planner()
        plan = planner.plan(query, database, observed_rows=123.0)
        assert plan.estimated_rows == 123.0

    def test_exploded_actuals_raise_baseline_cost(self):
        """Upward correction: observing far more rows than estimated must
        scale the backtracking cost estimate up, not just the output."""
        database = chain_database(layers=4, width=16, p=0.4, seed=2)
        query = path_query(3, head_arity=1)
        planner = Planner()
        base = planner.plan(query, database)
        corrected = planner.plan(
            query, database, observed_rows=base.estimated_rows * 100
        )
        assert (
            corrected.cost_estimates["naive"]
            > base.cost_estimates["naive"] * 50
        )

    def test_collapsed_actuals_keep_baseline_cost(self):
        """Downward correction is asymmetric: few results still mean
        exploring the dead branches, so the baseline cost stays put."""
        database = chain_database(layers=4, width=16, p=0.4, seed=2)
        query = path_query(3, head_arity=1)
        planner = Planner()
        base = planner.plan(query, database)
        corrected = planner.plan(query, database, observed_rows=0.0)
        assert corrected.cost_estimates["naive"] == pytest.approx(
            base.cost_estimates["naive"]
        )
        assert corrected.estimated_rows == 0.0


class TestDecideBatch:
    @pytest.fixture(scope="class")
    def chain_db(self):
        return chain_database(layers=5, width=32, p=0.3, seed=7)

    @pytest.fixture(scope="class")
    def star_db(self):
        return star_database(4, 150, seed=3)

    def _reference(self, queries, database):
        sequential = QueryEngine(parallel=False)
        return [sequential.decide(query, database) for query in queries]

    def test_matches_per_member_decide_with_negatives(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:24]
        candidates = starts + [424242, -1]
        batch = [query.decision_instance((value,)) for value in candidates]
        engine = QueryEngine()
        assert engine.run_batch(operations_of(DECIDE, batch), chain_db) == self._reference(
            batch, chain_db
        )

    def test_star_workload_with_negatives(self, star_db):
        query = star_query(4)
        hubs = sorted({row[0] for row in star_db["A1"].rows})[:20]
        candidates = hubs + [91_000, 92_000]
        batch = [query.decision_instance((hub,)) for hub in candidates]
        engine = QueryEngine()
        assert engine.run_batch(operations_of(DECIDE, batch), star_db) == self._reference(
            batch, star_db
        )

    def test_identical_members_share_one_decision(self, chain_db):
        query = path_query(3, head_arity=1)
        start = sorted({row[0] for row in chain_db["E"].rows})[0]
        member = query.decision_instance((start,))
        engine = QueryEngine()
        decisions = engine.run_batch(operations_of(DECIDE, [member] * 12), chain_db)
        assert decisions == [True] * 12
        assert engine.stats().executions == 1

    def test_small_groups_fall_back_per_member(self, chain_db):
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:3]
        batch = [query.decision_instance((value,)) for value in starts]
        engine = QueryEngine()  # group below batch_wide_threshold
        assert engine.run_batch(operations_of(DECIDE, batch), chain_db) == self._reference(
            batch, chain_db
        )

    def test_mixed_shapes_preserve_order(self, chain_db, star_db):
        """decide_batch only groups same-database shapes; mix shapes of
        one database and check positional answers."""
        path4 = path_query(4, head_arity=1)
        path3 = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})
        batch = []
        for i in range(20):
            query = path4 if i % 2 == 0 else path3
            batch.append(query.decision_instance((starts[i],)))
        engine = QueryEngine()
        assert engine.run_batch(operations_of(DECIDE, batch), chain_db) == self._reference(
            batch, chain_db
        )

    def test_inequality_members_fall_back(self, chain_db):
        query = path_neq_query(3, neq_pairs=1, seed=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:10]
        batch = [query.decision_instance((value,)) for value in starts]
        engine = QueryEngine()
        assert engine.run_batch(operations_of(DECIDE, batch), chain_db) == self._reference(
            batch, chain_db
        )

    def test_cyclic_members_fall_back(self, chain_db):
        query = cycle_query(3)
        domain = sorted({row[0] for row in chain_db["E"].rows})[:10]
        batch = [query for _ in domain]  # boolean query, identical members
        engine = QueryEngine()
        assert engine.run_batch(operations_of(DECIDE, batch), chain_db) == self._reference(
            batch, chain_db
        )

    def test_sequential_engine_matches(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:16]
        batch = [query.decision_instance((value,)) for value in starts]
        engine = QueryEngine(parallel=False)  # no lifting path at all
        assert engine.run_batch(operations_of(DECIDE, batch), chain_db) == self._reference(
            batch, chain_db
        )

    def test_empty_batch(self, chain_db):
        assert QueryEngine().run_batch(operations_of(DECIDE, []), chain_db) == []


class TestReduceBottomUp:
    def setup_method(self):
        self.database = chain_database(layers=4, width=24, p=0.3, seed=9)
        self.query = path_query(3, head_arity=1)

    def test_nonempty_iff_decide(self):
        evaluator = YannakakisEvaluator()
        reduced = evaluator.reduce_bottom_up(self.query, self.database)
        assert (reduced is not None) == evaluator.decide(
            self.query, self.database
        )

    def test_root_choice_preserves_decision(self):
        evaluator = YannakakisEvaluator()
        for root in range(len(self.query.atoms)):
            reduced = evaluator.reduce_bottom_up(
                self.query, self.database, root=root
            )
            assert reduced is not None

    def test_parallel_matches_sequential(self):
        sequential = YannakakisEvaluator()
        parallel = ParallelYannakakisEvaluator()
        for root in range(len(self.query.atoms)):
            left = sequential.reduce_bottom_up(
                self.query, self.database, root=root
            )
            right = parallel.reduce_bottom_up(
                self.query, self.database, root=root, shard_count=4
            )
            assert left == right

    def test_survivors_are_exactly_the_witnessed_tuples(self):
        """After the bottom-up pass, the root holds precisely the root
        atom's bindings that extend to a full match (the projection of
        the full join onto the root atom's variables)."""
        evaluator = YannakakisEvaluator()
        root = 0
        reduced = evaluator.reduce_bottom_up(
            self.query, self.database, root=root
        )
        assert reduced is not None
        full = YannakakisEvaluator().evaluate(
            ConjunctiveQuery(
                tuple(self.query.atoms[root].variables()),
                self.query.atoms,
                head_name="ROOT",
            ),
            self.database,
        )
        # Column order agrees (root atom variables, first-occurrence
        # order), so the row sets must be identical.
        root_names = tuple(
            v.name for v in self.query.atoms[root].variables()
        )
        assert reduced.project(root_names).rows == full.rows

    def test_lifted_root_reads_member_decisions(self):
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in self.database["E"].rows})[:12]
        members = [
            query.decision_instance((value,)) for value in starts + [31337]
        ]
        lifted = lift_batch_group(members, self.database)
        assert lifted is not None
        root = len(lifted.query.atoms) - 1
        reduced = YannakakisEvaluator().reduce_bottom_up(
            lifted.query, lifted.database, root=root
        )
        decisions = lifted.decide_members(reduced)
        sequential = QueryEngine(parallel=False)
        assert decisions == [
            sequential.decide(member, self.database) for member in members
        ]

    def test_globally_empty_returns_none(self):
        empty_db = Database(
            {
                "E": Relation.from_rows(
                    ("E.0", "E.1"), [(0, 1), (1, 2)]
                )
            }
        )
        query = path_query(3, head_arity=1)
        evaluator = YannakakisEvaluator()
        # Paths of length 3 need 4 distinct levels; this chain stops at 2
        # hops, so E⋉E⋉E empties out.
        reduced = evaluator.reduce_bottom_up(query, empty_db)
        assert reduced is None


class TestRootedAt:
    def test_rerooting_preserves_undirected_edges_and_property(self):
        query = star_query(5)
        tree = QueryEngine().plan_for(
            query, star_database(5, 20, seed=1)
        ).analysis.join_tree
        assert tree is not None
        baseline = {frozenset(edge) for edge in tree.edges()}
        for node in tree.nodes():
            rerooted = tree.rooted_at(node)
            assert rerooted.root == node
            assert {frozenset(e) for e in rerooted.edges()} == baseline
            assert rerooted.verify_running_intersection()

    def test_rooted_at_current_root_is_identity(self):
        query = path_query(3, head_arity=1)
        tree = QueryEngine().plan_for(
            query, chain_database(layers=4, width=8, p=0.5, seed=0)
        ).analysis.join_tree
        assert tree is not None
        assert tree.rooted_at(tree.root) is tree

    def test_unknown_node_rejected(self):
        query = path_query(3, head_arity=1)
        tree = QueryEngine().plan_for(
            query, chain_database(layers=4, width=8, p=0.5, seed=0)
        ).analysis.join_tree
        assert tree is not None
        with pytest.raises(KeyError):
            tree.rooted_at(999)
