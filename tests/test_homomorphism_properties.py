"""Property-based tests for the Chandra–Merlin machinery."""

import random

from hypothesis import given, settings, strategies as st

from repro.query import (
    are_equivalent,
    find_homomorphism,
    is_contained_in,
    is_homomorphism,
    minimize,
)
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Variable
from repro.relational.schema import DatabaseSchema
from repro.workloads import random_acyclic_query, random_database
from repro.evaluation import NaiveEvaluator

SETTINGS = settings(max_examples=30, deadline=None)


def random_plain_query(seed: int) -> ConjunctiveQuery:
    rng = random.Random(seed)
    return random_acyclic_query(
        num_atoms=rng.randint(1, 4), max_arity=2, seed=rng.randrange(1 << 30)
    ).without_constraints()


def rename_apart(query: ConjunctiveQuery, suffix: str) -> ConjunctiveQuery:
    mapping = {v: Variable(v.name + suffix) for v in query.variables()}
    return ConjunctiveQuery(
        tuple(mapping.get(t, t) if isinstance(t, Variable) else t
              for t in query.head_terms),
        (a.substitute(mapping) for a in query.atoms),
        head_name=query.head_name,
    )


class TestHomomorphismProperties:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=5000))
    def test_identity_homomorphism_exists(self, seed):
        query = random_plain_query(seed)
        mapping = find_homomorphism(query, query)
        assert mapping is not None
        assert is_homomorphism(mapping, query, query)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=5000))
    def test_found_homomorphisms_check_out(self, seed):
        q1 = random_plain_query(seed)
        q2 = random_plain_query(seed + 100_000)
        mapping = find_homomorphism(q1, q2)
        if mapping is not None:
            assert is_homomorphism(mapping, q1, q2)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=5000))
    def test_equivalence_invariant_under_renaming(self, seed):
        query = random_plain_query(seed)
        renamed = rename_apart(query, "_r")
        assert are_equivalent(query, renamed)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=5000))
    def test_minimize_is_equivalent_and_idempotent(self, seed):
        query = random_plain_query(seed)
        core = minimize(query)
        assert are_equivalent(query, core)
        assert len(minimize(core).atoms) == len(core.atoms)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=3000))
    def test_containment_sound_on_random_data(self, seed):
        """Whenever containment is claimed, it holds on random databases."""
        rng = random.Random(seed)
        q1 = random_plain_query(seed)
        q2 = random_plain_query(seed + 7)
        if len(q1.head_terms) != len(q2.head_terms):
            return
        if not is_contained_in(q1, q2):
            return
        relations = {a.relation: a.arity for a in q1.atoms + q2.atoms}
        schema = DatabaseSchema.of(**relations)
        db = random_database(
            schema, domain_size=3, tuples_per_relation=6,
            seed=rng.randrange(1 << 30),
        )
        engine = NaiveEvaluator()
        left = engine.evaluate(q1, db)
        right = engine.evaluate(q2, db)
        assert left.rows <= right.rows

    @SETTINGS
    @given(st.integers(min_value=0, max_value=3000))
    def test_minimized_query_same_answers(self, seed):
        rng = random.Random(seed)
        query = random_plain_query(seed)
        core = minimize(query)
        relations = {a.relation: a.arity for a in query.atoms}
        schema = DatabaseSchema.of(**relations)
        db = random_database(
            schema, domain_size=3, tuples_per_relation=6,
            seed=rng.randrange(1 << 30),
        )
        engine = NaiveEvaluator()
        assert engine.evaluate(query, db) == engine.evaluate(core, db)
