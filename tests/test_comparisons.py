"""Tests for comparison-constraint consistency and equality collapse."""

import pytest

from repro.comparisons import (
    ConstraintGraph,
    check_consistency,
    collapse_equalities,
    is_acyclic_with_comparisons,
    is_consistent,
    strongly_connected_components,
)
from repro.errors import InconsistentConstraintsError
from repro.query import C, Comparison, V, parse_query


def graph_of(*comparisons):
    return ConstraintGraph(comparisons)


class TestSCC:
    def test_chain_has_singletons(self):
        g = graph_of(Comparison("a", "b"), Comparison("b", "c"))
        components = strongly_connected_components(g)
        assert all(len(c) == 1 for c in components)
        assert len(components) == 3

    def test_weak_cycle_merges(self):
        g = graph_of(
            Comparison("a", "b", strict=False), Comparison("b", "a", strict=False)
        )
        components = strongly_connected_components(g)
        assert any(len(c) == 2 for c in components)


class TestConsistency:
    def test_strict_cycle_inconsistent(self):
        g = graph_of(Comparison("a", "b"), Comparison("b", "a", strict=False))
        assert not is_consistent(g)
        with pytest.raises(InconsistentConstraintsError):
            check_consistency(g)

    def test_weak_cycle_consistent(self):
        g = graph_of(
            Comparison("a", "b", strict=False), Comparison("b", "a", strict=False)
        )
        assert is_consistent(g)

    def test_constant_order_respected(self):
        # x <= 1 and 2 <= x forces 1 >= x >= 2: cycle through 1 < 2.
        g = graph_of(
            Comparison("x", C(1), strict=False),
            Comparison(C(2), "x", strict=False),
        )
        assert not is_consistent(g)

    def test_two_constants_equal_inconsistent(self):
        g = graph_of(
            Comparison(C(1), "x", strict=False),
            Comparison("x", C(1), strict=False),
            Comparison(C(2), "x", strict=False),
            Comparison("x", C(2), strict=False),
        )
        assert not is_consistent(g)

    def test_incomparable_constants_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            graph_of(
                Comparison("x", C(1)), Comparison("x", C("s"))
            )

    def test_consistent_mixed_system(self):
        g = graph_of(
            Comparison("x", "y"),
            Comparison("y", C(10), strict=False),
            Comparison(C(2), "x"),
        )
        assert is_consistent(g)


class TestCollapse:
    def test_weak_pair_collapses(self):
        q = parse_query("Q(x) :- R(x, y), x <= y, y <= x.")
        result = collapse_equalities(q)
        assert len(result.query.comparisons) == 0
        atom = result.query.atoms[0]
        assert atom.terms[0] == atom.terms[1]

    def test_collapse_to_constant(self):
        q = parse_query("Q(x) :- R(x, y), x <= 5, 5 <= x.")
        result = collapse_equalities(q)
        assert result.query.atoms[0].terms[0] == C(5)

    def test_inconsistent_raises(self):
        q = parse_query("Q(x) :- R(x, y), x < y, y < x.")
        with pytest.raises(InconsistentConstraintsError):
            collapse_equalities(q)

    def test_duplicates_removed(self):
        q = parse_query("Q(x) :- R(x, y), x < y, x < y.")
        result = collapse_equalities(q)
        assert len(result.query.comparisons) == 1

    def test_representative_map_exposed(self):
        q = parse_query("Q(x) :- R(x, y), x <= y, y <= x.")
        result = collapse_equalities(q)
        reps = set(result.representative.values())
        assert len(reps) == 1

    def test_head_rewritten(self):
        q = parse_query("Q(y) :- R(x, y), x <= y, y <= x.")
        result = collapse_equalities(q)
        assert result.query.head_terms[0] == V("x")


class TestAcyclicityWithComparisons:
    def test_salary_example(self):
        q = parse_query("G(e) :- EM(e, m), ES(e, s), ES(m, t), t < s.")
        assert is_acyclic_with_comparisons(q)

    def test_collapse_can_create_cyclicity(self):
        # Relational triangle is cyclic regardless of comparisons.
        q = parse_query("Q() :- E(x, y), E(y, z), E(z, x), x < y.")
        assert not is_acyclic_with_comparisons(q)

    def test_collapse_can_break_cyclicity(self):
        # E(x,y), E(y,z), E(z,x) with x = z collapses the triangle into
        # E(x,y), E(y,x), E(x,x) whose hypergraph is acyclic.
        q = parse_query(
            "Q() :- E(x, y), E(y, z), E(z, x), x <= z, z <= x."
        )
        assert is_acyclic_with_comparisons(q)
