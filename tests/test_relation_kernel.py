"""Kernel-rewrite regression tests.

Property tests asserting that the index-backed / fused join paths agree
with straightforward reference implementations on randomized relations
(heterogeneous value types included), plus unit tests for the trusted
constructor contract and the per-relation index-cache lifetime.
"""

from __future__ import annotations

import random

import pytest

from repro.evaluation.yannakakis import YannakakisEvaluator
from repro.relational import (
    HashIndex,
    IndexPool,
    Relation,
    hash_join,
    sort_merge_join,
)

# ---------------------------------------------------------------------------
# Reference implementations (the seed's straightforward semantics)
# ---------------------------------------------------------------------------


def reference_natural_join(left: Relation, right: Relation) -> Relation:
    """Nested-loop natural join, the textbook definition."""
    shared = [a for a in left.attributes if a in set(right.attributes)]
    extra = [a for a in right.attributes if a not in set(left.attributes)]
    left_pos = [left.attributes.index(a) for a in shared]
    right_pos = [right.attributes.index(a) for a in shared]
    extra_pos = [right.attributes.index(a) for a in extra]
    rows = []
    for lrow in left.rows:
        for rrow in right.rows:
            if all(lrow[lp] == rrow[rp] for lp, rp in zip(left_pos, right_pos)):
                rows.append(lrow + tuple(rrow[p] for p in extra_pos))
    return Relation.from_rows(tuple(left.attributes) + tuple(extra), rows)


def reference_semijoin(left: Relation, right: Relation) -> Relation:
    shared = [a for a in left.attributes if a in set(right.attributes)]
    if not shared:
        return left if right.rows else Relation.from_rows(left.attributes)
    left_pos = [left.attributes.index(a) for a in shared]
    right_pos = [right.attributes.index(a) for a in shared]
    right_keys = {tuple(r[p] for p in right_pos) for r in right.rows}
    return Relation.from_rows(
        left.attributes,
        (
            row
            for row in left.rows
            if tuple(row[p] for p in left_pos) in right_keys
        ),
    )


# Mixed value types: ints, strings, tuples — all hashable, not mutually
# comparable (exercises the sort-merge decoration).
_VALUE_POOLS = (
    lambda rng: rng.randrange(6),
    lambda rng: chr(97 + rng.randrange(4)),
    lambda rng: (rng.randrange(3), rng.randrange(3)),
)


def random_relation(rng: random.Random, attributes, n_rows: int) -> Relation:
    rows = {
        tuple(rng.choice(_VALUE_POOLS)(rng) for _ in attributes)
        for _ in range(n_rows)
    }
    return Relation.from_rows(tuple(attributes), rows)


SCHEMAS = [
    (("a", "b"), ("b", "c")),       # one shared column
    (("a", "b", "c"), ("b", "c", "d")),  # two shared columns
    (("a", "b"), ("a", "b")),       # identical schemas → intersection
    (("a", "b"), ("b",)),           # right ⊂ left → semijoin shape
    (("a",), ("b",)),               # disjoint → Cartesian product
]


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("left_attrs,right_attrs", SCHEMAS)
def test_joins_agree_with_reference(seed, left_attrs, right_attrs):
    rng = random.Random(seed)
    left = random_relation(rng, left_attrs, rng.randrange(0, 25))
    right = random_relation(rng, right_attrs, rng.randrange(0, 25))
    expected = reference_natural_join(left, right)
    assert left.natural_join(right) == expected
    assert hash_join(left, right) == expected
    assert sort_merge_join(left, right) == expected
    # hash_join must emit left-major column order regardless of build side.
    assert hash_join(left, right).attributes == expected.attributes
    assert sort_merge_join(left, right).attributes == expected.attributes


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("left_attrs,right_attrs", SCHEMAS)
def test_semijoin_agrees_with_reference(seed, left_attrs, right_attrs):
    rng = random.Random(100 + seed)
    left = random_relation(rng, left_attrs, rng.randrange(0, 25))
    right = random_relation(rng, right_attrs, rng.randrange(0, 25))
    assert left.semijoin(right) == reference_semijoin(left, right)
    # Antijoin is the complement within left.
    assert left.antijoin(right) == left.difference(reference_semijoin(left, right))


@pytest.mark.parametrize("seed", range(6))
def test_hash_join_smaller_build_side(seed):
    """The build-on-smaller path (|left| < |right|) matches the reference."""
    rng = random.Random(200 + seed)
    small = random_relation(rng, ("a", "b"), 4)
    big = random_relation(rng, ("b", "c"), 30)
    assert hash_join(small, big) == reference_natural_join(small, big)
    assert hash_join(small, big).attributes == ("a", "b", "c")


def test_sort_merge_join_cross_type_numeric_equality():
    """True == 1 == 1.0 must join under sort-merge exactly as under hash."""
    left = Relation.from_rows(("a", "d"), [((1,), True), ((2,), 7)])
    right = Relation.from_rows(("b", "e", "d"), [((1,), "1", 1), ((3,), "x", 7.0)])
    assert sort_merge_join(left, right) == hash_join(left, right)
    assert len(sort_merge_join(left, right)) == 2


def test_select_eq_unhashable_condition_value():
    """An unhashable condition value falls back to a scan, not a TypeError."""
    r = Relation.from_rows(("a", "b"), [(1, 2), (3, 4)])
    assert r.select_eq({"a": [1]}).is_empty()


def test_hash_index_wrong_arity_key_misses():
    r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3)])
    index = HashIndex(r, (0,))
    assert index.lookup((1, 2)) == []  # wrong-length key: no match, no raise


def test_column_reads_without_building_an_index():
    r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3), (2, 4)])
    assert r.column("a") == frozenset({1, 2})
    assert r._indexes == {}  # distinct-values read must not pin an index


def test_join_keep_matches_join_then_project():
    rng = random.Random(42)
    left = random_relation(rng, ("a", "b"), 20)
    right = random_relation(rng, ("b", "c", "d"), 20)
    fused = left._join_keep(right, ("b", "c"))
    explicit = left.natural_join(right.project(("b", "c")))
    assert fused == explicit
    assert fused.attributes == explicit.attributes


# ---------------------------------------------------------------------------
# Trusted constructor + index cache lifetime
# ---------------------------------------------------------------------------


class TestTrustedConstructor:
    def test_from_frozen_skips_validation_but_matches_public(self):
        rows = frozenset({(1, 2), (3, 4)})
        trusted = Relation._from_frozen(("a", "b"), rows)
        public = Relation.from_rows(("a", "b"), rows)
        assert trusted == public
        assert trusted.rows is rows  # no re-freezing

    def test_algebra_results_are_normal_relations(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3), (2, 3)])
        s = Relation.from_rows(("b", "c"), [(2, "x"), (3, "y")])
        out = r.natural_join(s).project(("a", "c")).select_eq({"a": 1})
        assert isinstance(out, Relation)
        assert out == Relation.from_rows(("a", "c"), [(1, "x"), (1, "y")])


class TestIndexCache:
    def test_index_is_built_once_and_reused(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3), (2, 4)])
        first = r._index((0,))
        second = r._index((0,))
        assert first is second

    def test_semijoin_reuses_cache_across_repeated_calls(self):
        left = Relation.from_rows(("a", "b"), [(1, 2), (5, 6)])
        right = Relation.from_rows(("b", "c"), [(2, 7), (9, 9)])
        assert right._columnar == {}
        first = left.semijoin(right)
        cached = dict(right._columnar)
        assert ("keyset", (0,)) in cached  # semijoin built right's key codes
        second = left.semijoin(right)
        # Never invalidated (relations are immutable): same cached objects.
        for cache_key, value in cached.items():
            assert right._columnar[cache_key] is value
        assert first == second

    def test_natural_join_shares_semijoin_key_codes(self):
        left = Relation.from_rows(("a", "b"), [(1, 2), (5, 2)])
        right = Relation.from_rows(("b", "c"), [(2, 7), (3, 8)])
        left.semijoin(right)
        key_codes = right._columnar[("col", 0)]
        left.natural_join(right)
        # The join's code buckets are grouped from the very key-code array
        # the semijoin built; the column is never re-encoded.
        assert right._columnar[("col", 0)] is key_codes
        assert ("buckets", (0,)) in right._columnar

    def test_rename_shares_index_cache(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (3, 4)])
        r._index((1,))
        renamed = r.rename({"a": "x"})
        assert renamed._indexes is r._indexes
        assert renamed._columnar is r._columnar

    def test_hash_index_and_pool_share_relation_cache(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3)])
        pool = IndexPool()
        via_pool = pool.index(r, (0,))
        direct = HashIndex(r, (0,))
        assert via_pool._buckets is direct._buckets
        assert sorted(direct.lookup((1,))) == [(1, 2), (1, 3)]
        assert direct.lookup((9,)) == []

    def test_select_eq_uses_index(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3), (2, 4)])
        assert r.select_eq({"a": 1}) == Relation.from_rows(("a", "b"), [(1, 2), (1, 3)])
        assert (0,) in r._indexes
        assert r.select_eq({"a": 1, "b": 3}) == Relation.from_rows(("a", "b"), [(1, 3)])


class TestYannakakisFusedPass:
    def test_fused_and_unfused_paths_agree(self):
        from repro.workloads import chain_database, path_query

        db = chain_database(layers=4, width=6, p=0.4, seed=9)
        query = path_query(3, head_arity=2)
        fused = YannakakisEvaluator().evaluate(query, db)
        unfused = YannakakisEvaluator(
            join_algorithm=sort_merge_join
        ).evaluate(query, db)
        assert fused == unfused
