"""Unit tests for the resilience layer: tokens, policies, faults, pool.

The end-to-end behavior — deadlines and cancellation over the wire,
injected transport faults, crash recovery under live traffic — lives in
``test_chaos.py``; this file pins the building blocks in isolation.
"""

import asyncio
import os
import random
import threading
import time

import pytest

from repro.errors import (
    CancelledRequestError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from repro.resilience import (
    DEFAULT_RETRY_CODES,
    CancelToken,
    Fault,
    FaultPlan,
    RetryPolicy,
    activate,
    check_cancelled,
    current_token,
)
from repro.resilience.faults import FAULTS_ENV_VAR


class TestCancelToken:
    def test_fresh_token_is_quiet(self):
        token = CancelToken()
        token.check()  # no deadline, not cancelled: never raises
        assert token.remaining() is None
        assert not token.expired
        assert not token.cancelled

    def test_deadline_expires(self):
        token = CancelToken(deadline=0.02)
        assert token.remaining() is not None
        token.check()
        time.sleep(0.03)
        assert token.expired
        with pytest.raises(DeadlineExceededError) as excinfo:
            token.check()
        assert excinfo.value.detail["deadline"] == 0.02
        assert token.remaining() == 0.0

    def test_nonpositive_deadline_is_expired_on_arrival(self):
        token = CancelToken(deadline=0.0)
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_cancel_is_sticky_and_typed(self):
        token = CancelToken()
        token.cancel("client went away")
        token.cancel("second call is a no-op")
        assert token.cancelled
        assert token.reason == "client went away"
        with pytest.raises(CancelledRequestError) as excinfo:
            token.check()
        assert "client went away" in str(excinfo.value)

    def test_expiry_wins_over_cancellation(self):
        token = CancelToken(deadline=0.0)
        token.cancel("also cancelled")
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_ambient_activation_is_scoped_and_thread_local(self):
        token = CancelToken()
        assert current_token() is None
        check_cancelled()  # ambient no-token: a no-op
        with activate(token):
            assert current_token() is token
            token.cancel("stop")
            with pytest.raises(CancelledRequestError):
                check_cancelled()
        assert current_token() is None

        seen = {}

        def worker():
            seen["token"] = current_token()

        with activate(token):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["token"] is None  # ambient state never leaks across threads

    def test_activation_nests(self):
        outer, inner = CancelToken(), CancelToken()
        with activate(outer):
            with activate(inner):
                assert current_token() is inner
            assert current_token() is outer


class TestRetryPolicy:
    def test_transport_errors_retry(self):
        policy = RetryPolicy()
        assert policy.retryable(ConnectionError("gone"))
        assert policy.retryable(ConnectionResetError("reset"))
        assert policy.retryable(TimeoutError("slow"))
        assert policy.retryable(OSError("broken pipe"))

    def test_structured_codes_split_transient_from_permanent(self):
        from repro.protocol import RemoteQueryError

        policy = RetryPolicy()
        for code in sorted(DEFAULT_RETRY_CODES):
            assert policy.retryable(RemoteQueryError(code, "transient"))
        for code in ("parse_error", "unknown_database", "deadline_exceeded"):
            assert not policy.retryable(RemoteQueryError(code, "permanent"))
        assert not policy.retryable(ValueError("not transport, no code"))

    def test_backoff_schedule_is_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0)
        assert [policy.delay_for(k) for k in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.5]
        jittery = RetryPolicy(base_delay=0.1, jitter=0.5)
        a = [jittery.delay_for(k, random.Random(7)) for k in (1, 2, 3)]
        b = [jittery.delay_for(k, random.Random(7)) for k in (1, 2, 3)]
        assert a == b  # caller-seeded RNG: replayable schedules
        assert all(d >= 0 for d in a)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)


class TestFaultPlan:
    def test_fire_counts_down_after_then_times(self):
        plan = FaultPlan({"server.drop": {"after": 2, "times": 2}})
        assert plan.fire("server.drop") is None
        assert plan.fire("server.drop") is None
        assert isinstance(plan.fire("server.drop"), Fault)
        assert isinstance(plan.fire("server.drop"), Fault)
        assert plan.fire("server.drop") is None  # budget spent
        assert plan.fired("server.drop") == 2

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan({"server.meteor": {}})

    def test_delay_travels_on_the_fault(self):
        plan = FaultPlan({"server.delay": {"delay": 0.25}})
        fault = plan.fire("server.delay")
        assert fault is not None and fault.delay == 0.25

    def test_env_roundtrip(self):
        plan = FaultPlan(
            {
                "pool.worker_crash": {"after": 1, "times": 3},
                "server.delay": {"delay": 0.1},
            }
        )
        os.environ[FAULTS_ENV_VAR] = plan.to_env()
        try:
            loaded = FaultPlan.from_env()
        finally:
            del os.environ[FAULTS_ENV_VAR]
        assert loaded
        assert loaded.fire("pool.worker_crash") is None  # after=1 → first is free
        assert loaded.fire("pool.worker_crash") is not None

    def test_empty_plan_is_falsy_and_inert(self, monkeypatch):
        plan = FaultPlan()
        assert not plan and plan.empty
        assert plan.fire("server.drop") is None
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert FaultPlan.from_env().empty


class TestWorkerPoolRecovery:
    def test_thread_pool_crash_is_recovered_and_retried(self):
        from repro.parallel.pool import THREADS, WorkerPool

        plan = FaultPlan({"pool.worker_crash": {"times": 1}})
        with WorkerPool(2, THREADS, fault_plan=plan) as pool:
            results = pool.map(lambda x: x * x, range(8))
            assert sorted(results) == sorted(x * x for x in range(8))
            assert pool.recoveries == 1
            # Later work runs on the respawned executor, no retry needed.
            assert sorted(pool.map(lambda x: -x, range(4))) == [-3, -2, -1, 0]
            assert pool.recoveries == 1

    def test_submit_crash_is_recovered(self):
        from repro.parallel.pool import THREADS, WorkerPool

        plan = FaultPlan({"pool.worker_crash": {"times": 1}})
        with WorkerPool(2, THREADS, fault_plan=plan) as pool:
            assert pool.submit(lambda: 42).result(timeout=10) == 42
            assert pool.recoveries == 1

    def test_ambient_token_reaches_pool_workers(self):
        from repro.parallel.pool import THREADS, WorkerPool

        token = CancelToken()
        token.cancel("stop the fan-out")
        with WorkerPool(2, THREADS) as pool:
            with activate(token):
                with pytest.raises(CancelledRequestError):
                    pool.map(lambda _x: check_cancelled(), range(4))


class TestFairQueuePurge:
    def test_purge_removes_matching_items_and_fixes_accounting(self):
        from repro.service.fairness import FairQueue

        async def main():
            queue = FairQueue(maxsize=8)
            for tag, item in [("a", 1), ("a", 2), ("b", 3)]:
                await queue.put(item, client=tag)
            removed = queue.purge(lambda item: item != 3)
            assert removed == 2
            assert queue.qsize() == 1
            assert (await queue.get()) == 3
            queue.task_done()
            await queue.join()  # purged items count as finished

        asyncio.run(main())


class TestServiceDeadlinesAndCancellation:
    @staticmethod
    def _adversarial():
        """A cyclic 6-atom query over a dense graph: seconds of naive work."""
        from repro import Database, parse_query

        rng = random.Random(11)
        rows = {(rng.randrange(60), rng.randrange(60)) for _ in range(1400)}
        database = Database.from_tuples({"E": sorted(rows)})
        query = parse_query(
            "Q(x1) :- E(x1, x2), E(x2, x3), E(x3, x4), E(x4, x5), "
            "E(x5, x6), E(x6, x1)."
        )
        return query, database

    def test_deadline_aborts_in_time_and_service_survives(self):
        from repro import Database, QueryService, parse_query

        slow_query, slow_db = self._adversarial()
        fast = parse_query("Q(x) :- E(x, y).")
        fast_db = Database.from_tuples({"E": [(1, 2), (2, 3)]})

        async def main():
            async with QueryService(parallel=False) as service:
                started = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    await service.execute(slow_query, slow_db, deadline=0.2)
                elapsed = time.monotonic() - started
                # The engine must actually stop, not run to completion in
                # the background: a follow-up request is served promptly.
                result = await service.execute(fast, fast_db)
                stats = await service.stats()
                return elapsed, result, stats

        elapsed, result, stats = asyncio.run(main())
        assert elapsed < 0.2 * 2 + 0.2  # within ~2x the budget (+ slack)
        assert sorted(result.rows) == [(1,), (2,)]
        assert stats.service.deadline_exceeded == 1
        assert stats.service.cancelled == 0

    def test_resubmit_after_deadline_starts_a_fresh_flight(self):
        """An identical resubmission must not coalesce onto a flight whose
        teardown already fired: the dying execution may not have settled
        yet, and joining it would inherit its cancellation."""
        from repro import QueryService

        slow_query, slow_db = self._adversarial()

        async def main():
            async with QueryService(parallel=False) as service:
                with pytest.raises(DeadlineExceededError):
                    await service.execute(slow_query, slow_db, deadline=0.2)
                # The first execution is still aborting between engine
                # check-points.  Without a fresh flight this raises
                # CancelledRequestError (the dead flight's settle)
                # instead of running and hitting its OWN deadline.
                started = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    await service.execute(slow_query, slow_db, deadline=0.2)
                elapsed = time.monotonic() - started
                stats = await service.stats()
                return elapsed, stats

        elapsed, stats = asyncio.run(main())
        assert elapsed >= 0.2  # it ran, it did not inherit a settle
        assert stats.service.deadline_exceeded == 2
        assert stats.service.cancelled == 0

    def test_caller_cancellation_releases_the_slot(self):
        from repro import QueryService

        slow_query, slow_db = self._adversarial()

        async def main():
            async with QueryService(parallel=False, dispatchers=1) as service:
                task = asyncio.ensure_future(
                    service.execute(slow_query, slow_db, deadline=30.0)
                )
                await asyncio.sleep(0.1)  # reaches the engine
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # The single dispatcher is free again: a fast query on the
                # same service completes quickly instead of queueing for
                # the abandoned query's full runtime.
                from repro import Database, parse_query

                fast = parse_query("Q(x) :- E(x, y).")
                fast_db = Database.from_tuples({"E": [(1, 2)]})
                result = await asyncio.wait_for(
                    service.execute(fast, fast_db), timeout=10
                )
                stats = await service.stats()
                return result, stats

        result, stats = asyncio.run(main())
        assert sorted(result.rows) == [(1,)]
        assert stats.service.cancelled == 1


class TestRetryExhaustion:
    def test_exhausted_error_carries_the_last_failure(self):
        error = RetryExhaustedError(
            "gave up", attempts=3, last_error=ConnectionError("refused")
        )
        assert error.attempts == 3
        assert isinstance(error.last_error, ConnectionError)
