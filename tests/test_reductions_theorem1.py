"""Theorem 1 reductions: mechanical verification of every cell.

Each test replays a reduction over an instance suite and checks both
directions of the iff plus the parameter bound — the executable content of
the paper's classification table.
"""

import pytest

from repro.circuits import fand, fnot, for_, var
from repro.errors import ReductionError
from repro.parametric.problems import (
    CliqueInstance,
    WeightedFormulaInstance,
)
from repro.reductions import (
    CLIQUE_TO_CQ_Q,
    CLIQUE_TO_CQ_V,
    CQ_TO_WEIGHTED_2CNF,
    CQ_V_TO_CQ_Q,
    POSITIVE_TO_CLIQUE,
    POSITIVE_TO_UNION_OF_CQS,
    PRENEX_POSITIVE_TO_WSAT,
    WSAT_TO_POSITIVE,
    QueryEvaluationInstance,
    clique_query,
    clique_to_cq,
    cq_to_weighted_2cnf,
    eq_neq_database,
    wsat_to_positive,
)
from repro.circuits.weighted_sat import negative_cnf_weighted_satisfiable
from repro.query import parse_query
from repro.relational import Database
from repro.workloads.graphs import complete_graph, graph_suite, random_graph


def clique_suite(max_n=6, ks=(2, 3)):
    return [
        CliqueInstance(g, k)
        for g in graph_suite(max_n, seed=42)
        for k in ks
    ]


class TestCliqueToCQ:
    def test_verified_on_suite_q(self):
        records = CLIQUE_TO_CQ_Q.verify(clique_suite())
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_verified_on_suite_v(self):
        records = CLIQUE_TO_CQ_V.verify(clique_suite())
        assert all(r.parameter_out == r.parameter_in for r in records)

    def test_query_shape(self):
        q = clique_query(4)
        assert q.num_atoms() == 6  # C(4,2)
        assert q.num_variables() == 4
        assert q.is_boolean()

    def test_k_below_two_rejected(self):
        with pytest.raises(ReductionError):
            clique_query(1)

    def test_fixed_schema(self):
        instance = clique_to_cq(CliqueInstance(complete_graph(4), 3))
        assert instance.database.names() == ("G",)
        assert instance.database["G"].arity == 2


class TestCQToWeighted2CNF:
    def suite(self):
        return [clique_to_cq(ci) for ci in clique_suite(5)]

    def test_verified(self):
        records = CQ_TO_WEIGHTED_2CNF.verify(self.suite())
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_k_equals_atom_count(self):
        q = parse_query("Q() :- E(x, y), E(y, z).")
        db = Database.from_tuples({"E": [(1, 2), (2, 3)]})
        result = cq_to_weighted_2cnf(q, db)
        assert result.instance.k == 2
        assert len(result.groups) == 2

    def test_all_clauses_negative_2cnf(self):
        q = parse_query("Q() :- E(x, y), E(y, z).")
        db = Database.from_tuples({"E": [(1, 2), (2, 3), (3, 3)]})
        cnf = cq_to_weighted_2cnf(q, db).instance.cnf
        assert cnf.all_literals_negative()
        assert cnf.is_kcnf(2)

    def test_witness_decodes_to_instantiation(self):
        q = parse_query("Q() :- E(x, y), E(y, z).")
        db = Database.from_tuples({"E": [(1, 2), (2, 3)]})
        result = cq_to_weighted_2cnf(q, db)
        witness = negative_cnf_weighted_satisfiable(
            result.instance.cnf, result.instance.k, groups=result.groups
        )
        assert witness is not None
        valuation = result.decode(witness)
        named = {v.name: value for v, value in valuation.items()}
        assert named == {"x": 1, "y": 2, "z": 3}

    def test_candidate_substitution(self):
        q = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        db = Database.from_tuples({"E": [(1, 2), (2, 3)]})
        yes = cq_to_weighted_2cnf(q, db, (1, 3)).instance
        no = cq_to_weighted_2cnf(q, db, (3, 1)).instance
        assert negative_cnf_weighted_satisfiable(yes.cnf, yes.k) is not None
        assert negative_cnf_weighted_satisfiable(no.cnf, no.k) is None

    def test_single_candidate_tuple_atom(self):
        # One atom with exactly one consistent tuple: no clauses at all,
        # the declared-variable universe must still allow weight 1.
        q = parse_query("Q() :- E(1, 2).")
        db = Database.from_tuples({"E": [(1, 2)]})
        result = cq_to_weighted_2cnf(q, db)
        assert negative_cnf_weighted_satisfiable(
            result.instance.cnf, 1
        ) is not None

    def test_inequalities_rejected(self):
        q = parse_query("Q() :- E(x, y), x != y.")
        db = Database.from_tuples({"E": [(1, 2)]})
        with pytest.raises(ReductionError):
            cq_to_weighted_2cnf(q, db)


class TestParameterVReduction:
    def test_verified(self):
        suite = [clique_to_cq(ci) for ci in clique_suite(5)]
        records = CQ_V_TO_CQ_Q.verify(suite)
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_bound_is_exponential_in_v_only(self):
        from repro.reductions import grouped_size_bound

        assert grouped_size_bound(3) == 1 + 8 * 4


class TestWsatToPositive:
    def formulas(self):
        return [
            for_(fand(var("x1"), var("x2")), fand(fnot(var("x3")), var("x4"))),
            fand(for_(var("a"), var("b")), fnot(var("c"))),
            fnot(fand(var("p"), var("q"))),
        ]

    def test_verified(self):
        suite = [
            WeightedFormulaInstance(f, k)
            for f in self.formulas()
            for k in (1, 2, 3)
        ]
        records = WSAT_TO_POSITIVE.verify(suite)
        assert all(r.answers_match for r in records)
        assert all(r.parameter_out <= r.parameter_in for r in records)

    def test_query_uses_k_variables(self):
        instance = wsat_to_positive(
            WeightedFormulaInstance(fand(var("x1"), var("x2")), 2)
        )
        assert instance.query.num_variables() == 2
        assert instance.query.is_prenex()

    def test_fixed_schema(self):
        db = eq_neq_database(3)
        assert set(db.names()) == {"EQ", "NEQ"}
        assert db["EQ"].cardinality == 3
        assert db["NEQ"].cardinality == 6

    def test_weight_above_n_is_consistent(self):
        # k > #variables: both sides must say "no".
        instance = WeightedFormulaInstance(var("only"), 2)
        records = WSAT_TO_POSITIVE.verify([instance])
        assert records[0].expected is False
        assert records[0].produced is False


class TestPositiveUpperBounds:
    def suite(self):
        formulas = [
            for_(fand(var("x1"), var("x2")), var("x3")),
            fand(for_(var("a"), var("b")), for_(var("b"), var("c"))),
        ]
        return [
            wsat_to_positive(WeightedFormulaInstance(f, k))
            for f in formulas
            for k in (1, 2)
        ]

    def test_union_of_cqs_verified(self):
        records = POSITIVE_TO_UNION_OF_CQS.verify(self.suite())
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_footnote2_clique_verified(self):
        records = POSITIVE_TO_CLIQUE.verify(self.suite())
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_prenex_to_wsat_verified(self):
        records = PRENEX_POSITIVE_TO_WSAT.verify(self.suite())
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_round_trip_clique_to_clique(self):
        """clique → CQ → (positive) → clique preserves the answer."""
        from repro.query import PositiveQuery
        from repro.query.first_order import AtomFormula, And, Exists

        for graph_seed in range(3):
            g = random_graph(6, 0.6, seed=graph_seed)
            source = CliqueInstance(g, 3)
            cq_instance = clique_to_cq(source)
            # Lift the CQ to a (trivially) positive query.
            body = And(AtomFormula(a) for a in cq_instance.query.atoms)
            formula = body
            for v in reversed(cq_instance.query.variables()):
                formula = Exists(v, formula)
            positive_instance = QueryEvaluationInstance(
                query=PositiveQuery((), formula),
                database=cq_instance.database,
            )
            from repro.reductions import positive_to_clique
            from repro.parametric.problems import CLIQUE

            back = positive_to_clique(positive_instance)
            assert CLIQUE.solve(back) == CLIQUE.solve(source)
