"""The unified operation API: one ``Operation`` value, one generic
``run``/``run_batch`` per layer, legacy facades as thin shims over it.

The "add an op" property this redesign buys: ``explain`` (and ``count``,
and every aggregate) flows through the SAME generic dispatch at the
engine, the service, and the wire — no per-op plumbing anywhere."""

import asyncio

import pytest

from repro import QueryEngine
from repro.errors import QueryError
from repro.operations import (
    AGG_COUNT,
    AGG_EXISTS,
    AGG_FORALL,
    AGG_GROUP,
    AGGREGATE,
    COUNT,
    DECIDE,
    EXECUTE,
    EXPLAIN,
    Operation,
    canonical_options,
    operations_of,
)
from repro.protocol import AsyncQueryClient, QueryClient, QueryServer
from repro.protocol.messages import query_text
from repro.service import QueryService
from repro.workloads import chain_database, path_query

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def chain():
    return chain_database(layers=5, width=16, p=0.4, seed=13)


def run(coroutine):
    return asyncio.run(coroutine)


class TestOperationValue:
    def test_canonical_options_sorted(self):
        assert canonical_options({"b": 1, "a": 2}) == (("a", 2), ("b", 1))
        assert canonical_options(None) == ()
        assert canonical_options({}) == ()
        # Mutable option values freeze into hashable group keys.
        assert canonical_options({"group_by": ["x0", "x1"]}) == (
            ("group_by", ("x0", "x1")),
        )

    def test_group_key_ignores_query(self):
        q1, q2 = path_query(2), path_query(3)
        assert Operation.execute(q1).group_key == Operation.execute(q2).group_key
        assert Operation.execute(q1).group_key != Operation.decide(q1).group_key

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError):
            Operation.make("upsert", path_query(2))

    def test_unknown_option_rejected(self):
        with pytest.raises(QueryError):
            Operation(EXECUTE, path_query(2), (("frobnicate", 1),)).validate()
        with pytest.raises(QueryError):
            Operation.make(EXPLAIN, path_query(2), {"evaluator": "naive"})

    def test_aggregate_needs_valid_mode(self):
        query = path_query(2)
        with pytest.raises(QueryError):
            Operation.make(AGGREGATE, query)
        with pytest.raises(QueryError):
            Operation.make(AGGREGATE, query, {"mode": "median"})
        with pytest.raises(QueryError):  # group requires group_by names
            Operation.make(AGGREGATE, query, {"mode": AGG_GROUP})
        Operation.make(AGGREGATE, query, {"mode": AGG_EXISTS}).validate()

    def test_constructors_round_trip_options(self):
        op = Operation.grouped_count(path_query(3, head_arity=2), ("x0", "x1"))
        assert op.option("mode") == AGG_GROUP
        assert op.options_dict() == {"mode": AGG_GROUP, "group_by": ("x0", "x1")}
        assert Operation.make(op.kind, op.query, op.options_dict()) == op

    def test_operations_of(self):
        queries = [path_query(n) for n in (1, 2)]
        ops = operations_of(DECIDE, queries)
        assert [op.kind for op in ops] == [DECIDE, DECIDE]
        assert [op.query for op in ops] == queries


class TestEngineDispatch:
    def test_facades_equal_generic_run(self, chain):
        query = path_query(3, head_arity=2)
        with QueryEngine() as engine:
            assert engine.run(Operation.execute(query), chain) == engine.execute(
                query, chain
            )
            assert engine.run(Operation.decide(query), chain) is engine.decide(
                query, chain
            )
            assert engine.run(Operation.count(query), chain) == engine.count(
                query, chain
            )
            # The "add an op" demo: explain is just another kind.  (The
            # rendering embeds live cache counters, so compare the plan
            # lines, not the observability tail.)
            rendering = engine.run(Operation.explain(query), chain)
            facade = engine.explain(query, chain)
            stable = lambda text: [  # noqa: E731
                line for line in text.splitlines() if "hit" not in line
            ]
            assert stable(rendering) == stable(facade)
            assert "QueryPlan" in rendering and "counting :" in rendering

    def test_run_batch_mixed_kinds_in_order(self, chain):
        query = path_query(3, head_arity=2)
        operations = [
            Operation.execute(query),
            Operation.count(query),
            Operation.decide(query),
            Operation.explain(query),
            Operation.forall(query),
        ]
        with QueryEngine() as engine:
            results = engine.run_batch(operations, chain)
            assert results[0] == engine.execute(query, chain)
            assert results[1] == engine.execute(query, chain).cardinality
            assert results[2] is True
            assert "QueryPlan" in results[3]
            assert results[4] is False

    def test_run_batch_duplicate_sharing(self, chain):
        query = path_query(2)
        operations = [Operation.count(query)] * 4
        with QueryEngine() as engine:
            results = engine.run_batch(operations, chain)
            assert len(set(results)) == 1

    def test_legacy_batch_shims_removed(self, chain):
        # The PR 8 deprecation cycle is complete: the engine exposes ONLY
        # the generic operation API for batches.
        queries = [path_query(n, head_arity=1) for n in (1, 2, 3)]
        with QueryEngine() as engine:
            assert not hasattr(engine, "execute_batch")
            assert not hasattr(engine, "decide_batch")
            executed = engine.run_batch(operations_of(EXECUTE, queries), chain)
            assert executed == [engine.execute(q, chain) for q in queries]
            assert engine.count_batch(queries, chain) == engine.run_batch(
                operations_of(COUNT, queries), chain
            )

    def test_forced_evaluator_option(self, chain):
        query = path_query(3, head_arity=2)
        with QueryEngine() as engine:
            forced = engine.run(
                Operation.execute(query, evaluator="naive"), chain
            )
            assert forced == engine.execute(query, chain)


class TestServiceDispatch:
    def test_run_and_facades_agree(self, chain):
        query = path_query(3, head_arity=2)

        async def main():
            async with QueryService() as service:
                generic = await service.run(Operation.count(query), chain)
                facade = await service.count(query, chain)
                rendering = await service.run(Operation.explain(query), chain)
                grouped = await service.grouped_count(query, chain, ("x0",))
                exists = await service.exists(query, chain)
                forall = await service.forall(query, chain)
            return generic, facade, rendering, grouped, exists, forall

        generic, facade, rendering, grouped, exists, forall = run(main())
        with QueryEngine() as engine:
            want = engine.count(query, chain)
            assert generic == facade == want
            assert "QueryPlan" in rendering
            assert grouped == engine.grouped_count(query, chain, ("x0",))
            assert exists is True and forall is False

    def test_run_batch_mixed_kinds(self, chain):
        query = path_query(3, head_arity=2)
        operations = [
            Operation.count(query),
            Operation.execute(query),
            Operation.decide(query),
            Operation.exists(query),
        ]

        async def main():
            async with QueryService() as service:
                return await service.run_batch(operations, chain)

        count, executed, decided, exists = run(main())
        assert count == executed.cardinality
        assert decided is True and exists is True

    def test_legacy_batch_shims_removed(self, chain):
        queries = [path_query(n, head_arity=1) for n in (1, 2, 3)]

        async def main():
            async with QueryService() as service:
                assert not hasattr(service, "execute_batch")
                assert not hasattr(service, "decide_batch")
                new_e = await service.run_batch(
                    operations_of(EXECUTE, queries), chain
                )
                new_d = await service.run_batch(
                    operations_of(DECIDE, queries), chain
                )
            return new_e, new_d

        new_e, new_d = run(main())
        with QueryEngine() as engine:
            assert new_e == [engine.execute(q, chain) for q in queries]
            assert new_d == [engine.decide(q, chain) for q in queries]

    def test_single_flight_keys_include_options(self, chain):
        # decide(Q) and exists(Q) return the same boolean but are distinct
        # operations: they must NOT coalesce into one another.
        query = path_query(2)

        async def main():
            async with QueryService() as service:
                a, b = await asyncio.gather(
                    service.run(Operation.decide(query), chain),
                    service.run(Operation.exists(query), chain),
                )
                stats = await service.stats()
            return a, b, stats

        a, b, stats = run(main())
        assert a is True and b is True
        assert stats.service.completed == 2
        assert stats.service.coalesced == 0

    def test_invalid_operation_rejected_before_submit(self, chain):
        async def main():
            async with QueryService() as service:
                with pytest.raises(QueryError):
                    await service.run(
                        Operation(AGGREGATE, path_query(2), ()), chain
                    )

        run(main())


class TestWireDispatch:
    def test_run_and_run_batch_over_the_wire(self, chain):
        query = path_query(3, head_arity=2)

        async def main():
            async with QueryServer({"chain": chain}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    count = await client.run(Operation.count(query), "chain")
                    rendering = await client.run(
                        Operation.explain(query), "chain"
                    )
                    mixed = await client.run_batch(
                        [
                            Operation.execute(query),
                            Operation.count(query),
                            Operation.decide(query),
                            Operation.forall(query),
                        ],
                        "chain",
                    )
            return count, rendering, mixed

        count, rendering, mixed = run(main())
        with QueryEngine() as engine:
            assert count == engine.count(query, chain)
            assert "QueryPlan" in rendering
            assert mixed[0] == engine.execute(query, chain)
            assert mixed[1] == count
            assert mixed[2] is True
            assert mixed[3] is False

    def test_aggregate_facades_over_the_wire(self, chain):
        query = path_query(3, head_arity=2)

        async def main():
            async with QueryServer({"chain": chain}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    grouped = await client.grouped_count(query, "chain", ("x0",))
                    exists = await client.exists(query, "chain")
                    forall = await client.forall(query, "chain")
            return grouped, exists, forall

        grouped, exists, forall = run(main())
        with QueryEngine() as engine:
            assert grouped == engine.grouped_count(query, chain, ("x0",))
        assert exists is True and forall is False

    def test_client_batch_shims_removed_wire_ops_stay(self, chain):
        # The client-side shims are gone, but the ``execute_batch`` /
        # ``decide_batch`` WIRE ops remain as server-side compatibility
        # shims for old clients: a raw wire call still answers.
        queries = [path_query(n, head_arity=1) for n in (1, 2)]

        async def main():
            async with QueryServer({"chain": chain}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    assert not hasattr(client, "execute_batch")
                    assert not hasattr(client, "decide_batch")
                    new_e = await client.run_batch(
                        operations_of(EXECUTE, queries), "chain"
                    )
                    wire_e = await client._call(
                        "execute_batch",
                        queries=[query_text(q) for q in queries],
                        database="chain",
                    )

                    def sync_work():
                        with QueryClient(host, port) as sync_client:
                            assert not hasattr(sync_client, "execute_batch")
                            assert not hasattr(sync_client, "decide_batch")
                            return (
                                sync_client.run_batch(
                                    operations_of(EXECUTE, queries), "chain"
                                ),
                                sync_client.count(queries[0], "chain"),
                            )

                    sync_new, sync_count = await asyncio.to_thread(sync_work)
            return new_e, wire_e, sync_new, sync_count

        new_e, wire_e, sync_new, sync_count = run(main())
        assert new_e == sync_new
        wire_rows = [
            {tuple(row) for row in payload["rows"]} for payload in wire_e.result
        ]
        assert [set(r.rows) for r in new_e] == wire_rows
        with QueryEngine() as engine:
            assert sync_count == engine.count(queries[0], chain)

    def test_invalid_wire_operation_is_structured_error(self, chain):
        from repro.protocol import RemoteQueryError

        async def main():
            async with QueryServer({"chain": chain}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    with pytest.raises(RemoteQueryError) as excinfo:
                        await client._call(
                            "aggregate",
                            query="Q(x) :- E(x, y).",
                            database="chain",
                            options={"mode": "median"},
                        )
                    # Malformed options map to the unified typed error's
                    # stable wire code, not a generic invalid_query.
                    assert excinfo.value.code == "invalid_operation"
                    # The connection survives the rejected operation.
                    assert await client.ping()

        run(main())


class TestAggregateModes:
    @pytest.mark.parametrize(
        "mode,options",
        [
            (AGG_COUNT, {}),
            (AGG_EXISTS, {}),
            (AGG_FORALL, {}),
            (AGG_GROUP, {"group_by": ("x0",)}),
        ],
    )
    def test_aggregate_kind_equals_named_facade(self, chain, mode, options):
        query = path_query(3, head_arity=2)
        operation = Operation.make(
            AGGREGATE, query, {"mode": mode, **options}
        )
        with QueryEngine() as engine:
            result = engine.run(operation, chain)
            if mode == AGG_COUNT:
                assert result == engine.count(query, chain)
            elif mode == AGG_EXISTS:
                assert result is engine.exists(query, chain)
            elif mode == AGG_FORALL:
                assert result is engine.forall(query, chain)
            else:
                assert result == engine.grouped_count(query, chain, ("x0",))
