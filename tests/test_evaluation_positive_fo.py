"""Tests for positive and first-order evaluation under active-domain semantics."""

import pytest

from repro.errors import QueryError
from repro.query import Atom, FirstOrderQuery
from repro.query.builders import (
    and_,
    atom,
    exists,
    forall,
    lift,
    not_,
    or_,
    positive,
)
from repro.relational import Database


@pytest.fixture
def db():
    return Database.from_tuples(
        {"E": [(1, 2), (2, 3), (3, 1)], "Red": [(1,), (2,)]}
    )


class TestPositiveEvaluation:
    def test_atom(self, positive_eval, db):
        q = positive(("x", "y"), atom("E", "x", "y"))
        assert positive_eval.evaluate(q, db).cardinality == 3

    def test_conjunction_is_join(self, positive_eval, db):
        q = positive(("x",), exists("y", and_(atom("E", "x", "y"), atom("Red", "x"))))
        assert positive_eval.evaluate(q, db).rows == frozenset({(1,), (2,)})

    def test_disjunction_pads_schemas(self, positive_eval, db):
        # x is red, or x has an outgoing edge (different free var shapes).
        q = positive(
            ("x",),
            or_(atom("Red", "x"), exists("y", atom("E", "x", "y"))),
        )
        assert positive_eval.evaluate(q, db).rows == frozenset({(1,), (2,), (3,)})

    def test_boolean_query(self, positive_eval, db):
        q = positive((), exists("x", and_(atom("Red", "x"), exists("y", atom("E", "x", "y")))))
        assert positive_eval.decide(q, db)

    def test_contains(self, positive_eval, db):
        q = positive(("x",), atom("Red", "x"))
        assert positive_eval.contains(q, db, (1,))
        assert not positive_eval.contains(q, db, (3,))

    def test_union_of_cqs_engine_agrees(self, positive_eval, db):
        q = positive(
            ("x",),
            or_(
                exists("y", and_(atom("E", "x", "y"), atom("Red", "y"))),
                atom("Red", "x"),
            ),
        )
        direct = positive_eval.evaluate(q, db)
        expanded = positive_eval.evaluate_via_union_of_cqs(q, db)
        assert direct == expanded

    def test_prenex_preserves_semantics(self, positive_eval, db):
        q = positive(
            ("x",),
            and_(
                exists("y", atom("E", "x", "y")),
                exists("y", atom("E", "y", "x")),
            ),
        )
        assert positive_eval.evaluate(q, db) == positive_eval.evaluate(
            q.to_prenex(), db
        )


class TestFirstOrderEvaluation:
    def test_negation_complement(self, fo_eval, db):
        q = FirstOrderQuery(("x",), not_(atom("Red", "x")))
        assert fo_eval.evaluate(q, db).rows == frozenset({(3,)})

    def test_forall(self, fo_eval, db):
        # nodes x such that every node y with E(x,y) is red.
        f = forall("y", or_(not_(atom("E", "x", "y")), atom("Red", "y")))
        q = FirstOrderQuery(("x",), f)
        # 1 -> 2 (red), 2 -> 3 (not red), 3 -> 1 (red)
        assert fo_eval.evaluate(q, db).rows == frozenset({(1,), (3,)})

    def test_forall_vacuous_variable(self, fo_eval, db):
        f = forall("z", atom("Red", "x"))
        q = FirstOrderQuery(("x",), f)
        assert fo_eval.evaluate(q, db).rows == frozenset({(1,), (2,)})

    def test_sentence_holds(self, fo_eval, db):
        sentence = exists("x", and_(atom("Red", "x"), exists("y", atom("E", "x", "y"))))
        assert fo_eval.holds(sentence, db)
        false_sentence = forall("x", atom("Red", "x"))
        assert not fo_eval.holds(false_sentence, db)

    def test_holds_rejects_open_formula(self, fo_eval, db):
        with pytest.raises(QueryError):
            fo_eval.holds(atom_formula(), db)

    def test_variable_shadowing(self, fo_eval, db):
        # ∃y E(x, y) ∧ (inner ∃y E(y, x)) — same name, different binders.
        inner = exists("y", atom("E", "y", "x"))
        f = exists("y", and_(atom("E", "x", "y"), inner))
        q = FirstOrderQuery(("x",), f)
        expected = FirstOrderQuery(
            ("x",),
            exists("y", and_(atom("E", "x", "y"), exists("w", atom("E", "w", "x")))),
        )
        assert fo_eval.evaluate(q, db) == fo_eval.evaluate(expected, db)

    def test_de_morgan_semantics(self, fo_eval, db):
        left = not_(and_(atom("Red", "x"), exists("y", atom("E", "x", "y"))))
        right = or_(
            not_(atom("Red", "x")), not_(exists("y", atom("E", "x", "y")))
        )
        ql = FirstOrderQuery(("x",), left)
        qr = FirstOrderQuery(("x",), right)
        assert fo_eval.evaluate(ql, db) == fo_eval.evaluate(qr, db)

    def test_double_negation_semantics(self, fo_eval, db):
        q1 = FirstOrderQuery(("x",), atom_formula())
        q2 = FirstOrderQuery(("x",), not_(not_(atom_formula())))
        assert fo_eval.evaluate(q1, db) == fo_eval.evaluate(q2, db)

    def test_forall_exists_duality(self, fo_eval, db):
        univ = forall("y", or_(not_(atom("E", "x", "y")), atom("Red", "y")))
        negated = not_(
            exists("y", and_(atom("E", "x", "y"), not_(atom("Red", "y"))))
        )
        q1 = FirstOrderQuery(("x",), univ)
        q2 = FirstOrderQuery(("x",), negated)
        assert fo_eval.evaluate(q1, db) == fo_eval.evaluate(q2, db)

    def test_contains(self, fo_eval, db):
        q = FirstOrderQuery(("x",), not_(atom("Red", "x")))
        assert fo_eval.contains(q, db, (3,))
        assert not fo_eval.contains(q, db, (1,))

    def test_declared_domain_affects_negation(self, fo_eval):
        db = Database(
            {"Red": __import__("repro").Relation.from_rows(("a",), [(1,)])},
            domain=[1, 2, 3],
        )
        q = FirstOrderQuery(("x",), not_(atom("Red", "x")))
        assert fo_eval.evaluate(q, db).rows == frozenset({(2,), (3,)})


def atom_formula():
    return lift(Atom.of("Red", "x"))
