"""Tests for the §5 formula extensions of Theorem 2."""

import random

import pytest

from repro.errors import QueryError
from repro.evaluation import NaiveEvaluator
from repro.inequalities import (
    FormulaInequalityEvaluator,
    split_conjunctive_constants,
)
from repro.query import (
    C,
    Inequality,
    conjunction_of,
    ineq_and,
    ineq_or,
    is_conjunctive_in_constants,
    parse_query,
)
from repro.relational import Database


def brute_force(query, phi, database):
    """Ground truth: enumerate satisfying assignments, filter by φ."""
    naive = NaiveEvaluator()
    assignments = naive.satisfying_assignments(query, database)
    names = assignments.attributes
    from repro.query import Variable

    rows = set()
    for row in assignments.rows:
        valuation = {Variable(n): v for n, v in zip(names, row)}
        if phi.evaluate(valuation):
            out = []
            for term in query.head_terms:
                if isinstance(term, Variable):
                    out.append(valuation[term])
                else:
                    out.append(term.value)
            rows.add(tuple(out))
    return rows


class TestFormulaAST:
    def test_evaluate(self):
        from repro.query import Variable

        phi = ineq_or(Inequality("x", "y"), Inequality("x", C(1)))
        assert phi.evaluate({Variable("x"): 2, Variable("y"): 2})
        assert not phi.evaluate({Variable("x"): 1, Variable("y"): 1})

    def test_variables_and_constants(self):
        phi = ineq_and(Inequality("x", "y"), Inequality("y", C(5)))
        from repro.query import Variable, Constant

        assert phi.variables() == {Variable("x"), Variable("y")}
        assert phi.constants() == {Constant(5)}

    def test_conjunctive_in_constants_detection(self):
        conj = ineq_and(Inequality("x", C(1)), ineq_or(Inequality("x", "y"), Inequality("y", "z")))
        assert is_conjunctive_in_constants(conj)
        disj = ineq_or(Inequality("x", C(1)), Inequality("x", "y"))
        assert not is_conjunctive_in_constants(disj)

    def test_split_conjunctive_constants(self):
        phi = ineq_and(
            Inequality("x", C(1)),
            Inequality("y", C(2)),
            ineq_or(Inequality("x", "y"), Inequality("y", "z")),
        )
        constants, rest = split_conjunctive_constants(phi)
        assert len(constants) == 2
        assert rest is not None and rest.variables()

    def test_split_all_constants(self):
        phi = ineq_and(Inequality("x", C(1)), Inequality("y", C(2)))
        constants, rest = split_conjunctive_constants(phi)
        assert len(constants) == 2
        assert rest is None

    def test_conjunction_of(self):
        phi = conjunction_of([Inequality("x", "y"), Inequality("y", "z")])
        assert len(phi.leaves()) == 2


class TestFormulaEvaluator:
    def db(self):
        return Database.from_tuples(
            {"E": [(1, 2), (2, 1), (2, 3), (3, 2), (3, 1), (1, 3)]}
        )

    def test_disjunction_of_variable_atoms(self):
        q = parse_query("G(x) :- E(x, y), E(y, z).")
        phi = ineq_or(Inequality("x", "z"), Inequality("y", "z"))
        evaluator = FormulaInequalityEvaluator()
        got = set(evaluator.evaluate(q, phi, self.db()).rows)
        assert got == brute_force(q, phi, self.db())

    def test_pure_conjunction_matches_theorem2(self):
        from repro.inequalities import AcyclicInequalityEvaluator

        q = parse_query("G(x) :- E(x, y), E(y, z).")
        phi = conjunction_of([Inequality("x", "z")])
        evaluator = FormulaInequalityEvaluator()
        with_formula = set(evaluator.evaluate(q, phi, self.db()).rows)
        q_inline = parse_query("G(x) :- E(x, y), E(y, z), x != z.")
        theorem2 = AcyclicInequalityEvaluator()
        assert with_formula == set(theorem2.evaluate(q_inline, self.db()).rows)

    def test_constant_under_or_needs_flag(self):
        q = parse_query("G(x) :- E(x, y), E(y, z).")
        phi = ineq_or(Inequality("x", C(1)), Inequality("x", "z"))
        with pytest.raises(QueryError):
            FormulaInequalityEvaluator().evaluate(q, phi, self.db())
        allowed = FormulaInequalityEvaluator(allow_disjunctive_constants=True)
        got = set(allowed.evaluate(q, phi, self.db()).rows)
        assert got == brute_force(q, phi, self.db())

    def test_conjunctive_constants_fold_into_selections(self):
        q = parse_query("G(x) :- E(x, y), E(y, z).")
        phi = ineq_and(Inequality("x", C(1)), Inequality("x", "z"))
        evaluator = FormulaInequalityEvaluator()
        got = set(evaluator.evaluate(q, phi, self.db()).rows)
        assert got == brute_force(q, phi, self.db())
        assert (1,) not in got

    def test_query_with_own_inequalities_rejected(self):
        q = parse_query("G(x) :- E(x, y), E(y, z), x != z.")
        phi = conjunction_of([Inequality("x", "y")])
        with pytest.raises(QueryError):
            FormulaInequalityEvaluator().evaluate(q, phi, self.db())

    def test_formula_variable_must_be_in_body(self):
        q = parse_query("G(x) :- E(x, y).")
        phi = conjunction_of([Inequality("x", "nope")])
        with pytest.raises(QueryError):
            FormulaInequalityEvaluator().evaluate(q, phi, self.db())

    def test_decide_agrees_with_evaluate(self):
        q = parse_query("G(x) :- E(x, y), E(y, z).")
        phi = ineq_or(Inequality("x", "z"), Inequality("y", "z"))
        evaluator = FormulaInequalityEvaluator()
        assert evaluator.decide(q, phi, self.db()) == (
            not evaluator.evaluate(q, phi, self.db()).is_empty()
        )

    def test_random_stress(self):
        rng = random.Random(31)
        evaluator = FormulaInequalityEvaluator(allow_disjunctive_constants=True)
        for trial in range(12):
            q = parse_query("G(x0) :- E(x0, x1), E(x1, x2), F(x2, x3).")
            dom = range(rng.randint(2, 4))
            e_rows = [(a, b) for a in dom for b in dom if rng.random() < 0.6]
            f_rows = [(a, b) for a in dom for b in dom if rng.random() < 0.6]
            if not e_rows or not f_rows:
                continue
            db = Database.from_tuples({"E": e_rows, "F": f_rows})
            leaves = [
                Inequality("x0", "x2"),
                Inequality("x1", "x3"),
                Inequality("x0", C(0)),
            ]
            phi = ineq_or(ineq_and(leaves[0], leaves[1]), leaves[2])
            got = set(evaluator.evaluate(q, phi, db).rows)
            assert got == brute_force(q, phi, db), trial
