"""Property tests for the columnar relation store and constructor family.

Three contract groups:

* **Construction** — ``from_rows`` / ``from_columns`` agree, round-trip
  through ``to_columns``-style access, validate strictly, and the
  deprecated positional ``Relation(attrs, rows)`` still works (with a
  ``DeprecationWarning``) and builds the identical value.
* **Kernel equivalence** — every code-array kernel (semijoin, antijoin,
  natural join, project, select_eq, partition) returns exactly what a
  straightforward frozenset/dict reference implementation computes,
  including mixed-type domains where Python equality crosses types
  (``1 == True == 1.0``).
* **Process hygiene** — pickling drops the process-local ``_columnar``
  cache but preserves the relation and its value-keyed caches.
"""

import pickle
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation
from repro.errors import ArityError, SchemaError
from repro.relational.columns import KEYS, VALUES, key_code_of

# A small mixed-type domain where cross-type equality bites: 1 == True
# == 1.0 and 0 == False collapse under Python (and frozenset) equality,
# so the dictionary encoding must collapse them identically.
mixed_values = st.sampled_from([0, 1, 2, True, False, 1.0, "a", "b", None, ""])

attr_pool = ("u", "v", "w", "x")


@st.composite
def relations(draw, min_arity=1, max_arity=3, attributes=None):
    if attributes is None:
        arity = draw(st.integers(min_value=min_arity, max_value=max_arity))
        attributes = draw(
            st.permutations(attr_pool).map(lambda p: tuple(p[:arity]))
        )
    row = st.tuples(*([mixed_values] * len(attributes)))
    rows = draw(st.lists(row, max_size=20))
    return Relation.from_rows(attributes, rows)


def ref_semijoin(left, right):
    shared = tuple(a for a in left.attributes if a in set(right.attributes))
    lpos = tuple(left.attributes.index(a) for a in shared)
    rpos = tuple(right.attributes.index(a) for a in shared)
    if not shared:
        kept = left.rows if right.rows else frozenset()
    else:
        right_keys = {tuple(row[p] for p in rpos) for row in right.rows}
        kept = frozenset(
            row for row in left.rows if tuple(row[p] for p in lpos) in right_keys
        )
    return Relation.from_rows(left.attributes, kept)


def ref_join(left, right):
    shared = tuple(a for a in left.attributes if a in set(right.attributes))
    extra = tuple(a for a in right.attributes if a not in set(left.attributes))
    epos = tuple(right.attributes.index(a) for a in extra)
    lpos = tuple(left.attributes.index(a) for a in shared)
    rpos = tuple(right.attributes.index(a) for a in shared)
    out = set()
    for lrow in left.rows:
        for rrow in right.rows:
            if all(lrow[i] == rrow[j] for i, j in zip(lpos, rpos)):
                out.add(lrow + tuple(rrow[p] for p in epos))
    return Relation.from_rows(left.attributes + extra, out)


class TestConstructors:
    @settings(max_examples=150, deadline=None)
    @given(relations())
    def test_from_columns_equals_from_rows(self, relation):
        order = list(relation.rows)
        columns = [
            [row[p] for row in order] for p in range(len(relation.attributes))
        ]
        rebuilt = Relation.from_columns(relation.attributes, columns)
        assert rebuilt == relation

    @settings(max_examples=100, deadline=None)
    @given(relations())
    def test_positional_constructor_deprecated_but_equal(self, relation):
        with pytest.deprecated_call():
            legacy = Relation(relation.attributes, relation.rows)
        assert legacy == relation

    def test_from_rows_validates(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(("a", "a"), [])
        with pytest.raises(SchemaError):
            Relation.from_rows(("",), [])
        with pytest.raises(ArityError):
            Relation.from_rows(("a", "b"), [(1,)])

    def test_from_columns_validates(self):
        with pytest.raises(SchemaError):
            Relation.from_columns(("a", "b"), [[1, 2]])  # column count
        with pytest.raises(ArityError):
            Relation.from_columns(("a", "b"), [[1, 2], [3]])  # ragged
        empty = Relation.from_columns(("a", "b"), [[], []])
        assert empty.is_empty() and empty.attributes == ("a", "b")

    def test_from_frozen_preserves_identity(self):
        rows = frozenset({(1, 2), (3, 4)})
        relation = Relation._from_frozen(("a", "b"), rows)
        assert relation.rows is rows


class TestValuePool:
    def test_cross_type_equality_shares_codes(self):
        # Value-equality interning: the pool must agree with frozenset
        # semantics, where 1, True and 1.0 are the same element.
        assert VALUES.encode(1) == VALUES.encode(True) == VALUES.encode(1.0)
        assert VALUES.encode(0) == VALUES.encode(False)
        assert VALUES.encode(1) != VALUES.encode(2)
        assert VALUES.encode("1") != VALUES.encode(1)

    def test_key_code_of_width_one_and_many(self):
        VALUES.encode("seen-key")
        assert key_code_of(VALUES, KEYS, "seen-key", 1) == VALUES.encode("seen-key")
        # A composite key resolves only once some relation interned it
        # (partitioning interns every key the relation holds).
        composite = (VALUES.encode("seen-key"), VALUES.encode("seen-key"))
        assert key_code_of(VALUES, KEYS, ("seen-key", "seen-key"), 2) in (
            None,
            KEYS.code_of(composite),
        )
        interned = KEYS.encode(composite)
        assert key_code_of(VALUES, KEYS, ("seen-key", "seen-key"), 2) == interned

    def test_key_code_of_unseen_value_is_none(self):
        assert key_code_of(VALUES, KEYS, object(), 1) is None


class TestKernelEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_semijoin_and_antijoin(self, data):
        left = data.draw(relations())
        right = data.draw(relations())
        expected = ref_semijoin(left, right)
        assert left.semijoin(right) == expected
        assert left.antijoin(right) == Relation.from_rows(
            left.attributes, left.rows - expected.rows
        )

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_natural_join(self, data):
        left = data.draw(relations(max_arity=2))
        right = data.draw(relations(max_arity=2))
        assert left.natural_join(right) == ref_join(left, right)

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_project(self, data):
        relation = data.draw(relations())
        keep = data.draw(
            st.lists(st.sampled_from(relation.attributes), unique=True)
        )
        positions = tuple(relation.attributes.index(a) for a in keep)
        expected = Relation.from_rows(
            tuple(keep), {tuple(row[p] for p in positions) for row in relation.rows}
        )
        assert relation.project(keep) == expected

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_select_eq(self, data):
        relation = data.draw(relations())
        value = data.draw(mixed_values)
        attribute = data.draw(st.sampled_from(relation.attributes))
        position = relation.attributes.index(attribute)
        expected = Relation.from_rows(
            relation.attributes,
            {row for row in relation.rows if row[position] == value},
        )
        assert relation.select_eq({attribute: value}) == expected

    @settings(max_examples=100, deadline=None)
    @given(st.data(), st.integers(min_value=1, max_value=5))
    def test_partition_is_a_partition_routed_by_code(self, data, count):
        relation = data.draw(relations())
        positions = (0,)
        shards = relation._partition(positions, count)
        assert len(shards) == count
        assert frozenset().union(*(s.rows for s in shards)) == relation.rows
        assert sum(s.cardinality for s in shards) == relation.cardinality
        for index, shard in enumerate(shards):
            for row in shard.rows:
                assert VALUES.encode(row[0]) % count == index

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_derived_relations_chain(self, data):
        # Exercise cache preseeding: results of kernel ops feed more ops.
        a = data.draw(relations(attributes=("x", "y")))
        b = data.draw(relations(attributes=("y", "w")))
        reduced = a.semijoin(b)
        assert reduced == ref_semijoin(a, b)
        joined = reduced.natural_join(b)
        assert joined == ref_join(reduced, b)
        assert joined.project(("x", "w")) == ref_join(reduced, b).project(("x", "w"))


class TestProcessHygiene:
    def test_pickle_drops_columnar_cache(self):
        relation = Relation.from_rows(("a", "b"), [(1, 2), (3, 4), (1, 4)])
        relation.semijoin(Relation.from_rows(("a",), [(1,)]))  # warm caches
        assert relation._columnar
        clone = pickle.loads(pickle.dumps(relation))
        assert clone == relation
        assert clone._columnar == {}

    def test_rows_are_selected_not_decoded(self):
        # 1 and True share a pool code; the kernel must still return the
        # relation's own row objects, not re-decoded lookalikes.
        relation = Relation.from_rows(("a",), [(True,)])
        probe = Relation.from_rows(("a",), [(1,)])
        result = relation.semijoin(probe)
        (row,) = result.rows
        assert row[0] is True

    def test_no_deprecation_warning_from_factories(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Relation.from_rows(("a",), [(1,)])
            Relation.from_columns(("a",), [[1]])
            Relation.from_dicts(("a",), [{"a": 1}])
