"""Tests for algebra helpers, join algorithms, indexes, schema, database."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    Database,
    DatabaseSchema,
    HashIndex,
    IndexPool,
    Relation,
    RelationSchema,
    divide,
    get_join_algorithm,
    hash_join,
    join_all,
    project_join,
    sort_merge_join,
    union_all,
)


class TestJoinAlgorithms:
    def setup_method(self):
        self.left = Relation.from_rows(("a", "b"), [(1, 2), (2, 3), (5, 2)])
        self.right = Relation.from_rows(("b", "c"), [(2, 10), (3, 11), (2, 12)])

    def test_hash_and_sort_merge_agree(self):
        assert hash_join(self.left, self.right) == sort_merge_join(
            self.left, self.right
        )

    def test_expected_join_content(self):
        joined = hash_join(self.left, self.right)
        assert joined.rows == frozenset(
            {(1, 2, 10), (1, 2, 12), (5, 2, 10), (5, 2, 12), (2, 3, 11)}
        )

    def test_sort_merge_heterogeneous_values(self):
        left = Relation.from_rows(("a", "b"), [("x", 1), (2, 2)])
        right = Relation.from_rows(("b", "c"), [(1, "u"), (2, "v")])
        assert sort_merge_join(left, right) == hash_join(left, right)

    def test_sort_merge_cartesian_fallback(self):
        left = Relation.from_rows(("a",), [(1,)])
        right = Relation.from_rows(("c",), [(2,), (3,)])
        assert sort_merge_join(left, right).cardinality == 2

    def test_registry(self):
        assert get_join_algorithm("hash") is hash_join
        assert get_join_algorithm("sort_merge") is sort_merge_join
        with pytest.raises(SchemaError):
            get_join_algorithm("nested-loop")


class TestMultiwayHelpers:
    def test_join_all_empty_is_unit(self):
        assert join_all([]) == Relation.unit()

    def test_join_all_chains(self):
        r1 = Relation.from_rows(("a", "b"), [(1, 2)])
        r2 = Relation.from_rows(("b", "c"), [(2, 3)])
        r3 = Relation.from_rows(("c", "d"), [(3, 4)])
        assert join_all([r1, r2, r3]).rows == frozenset({(1, 2, 3, 4)})

    def test_project_join_matches_join_then_project(self):
        r1 = Relation.from_rows(("a", "b"), [(1, 2), (2, 2)])
        r2 = Relation.from_rows(("b", "c"), [(2, 3), (2, 4)])
        direct = join_all([r1, r2]).project(("a", "c"))
        early = project_join([r1, r2], ("a", "c"))
        assert direct == early

    def test_union_all(self):
        pieces = [Relation.from_rows(("a",), [(i,)]) for i in range(3)]
        assert union_all(pieces).cardinality == 3
        with pytest.raises(SchemaError):
            union_all([])


class TestDivision:
    def test_textbook_division(self):
        # Students who take ALL required courses.
        takes = Relation.from_rows(
            ("student", "course"),
            [("sam", "db"), ("sam", "os"), ("eve", "db")],
        )
        required = Relation.from_rows(("course",), [("db",), ("os",)])
        assert divide(takes, required).rows == frozenset({("sam",)})

    def test_division_by_empty_keeps_all(self):
        takes = Relation.from_rows(("s", "c"), [("a", 1)])
        assert divide(takes, Relation.from_rows(("c",), [])).rows == frozenset({("a",)})

    def test_division_nullary_quotient(self):
        dividend = Relation.from_rows(("c",), [(1,), (2,)])
        assert divide(dividend, Relation.from_rows(("c",), [(1,)])).cardinality == 1
        assert divide(dividend, Relation.from_rows(("c",), [(3,)])).is_empty()

    def test_division_attribute_check(self):
        with pytest.raises(SchemaError):
            divide(Relation.from_rows(("a",), []), Relation.from_rows(("z",), []))

    def test_division_times_divisor_contained(self):
        dividend = Relation.from_rows(("a", "b"), [(1, 1), (1, 2), (2, 1)])
        divisor = Relation.from_rows(("b",), [(1,), (2,)])
        quotient = divide(dividend, divisor)
        rebuilt = quotient.natural_join(divisor)
        assert rebuilt.rows <= dividend.project(rebuilt.attributes).rows


class TestIndexes:
    def test_hash_index_lookup(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3), (2, 4)])
        index = HashIndex(r, (0,))
        assert sorted(index.lookup((1,))) == [(1, 2), (1, 3)]
        assert index.lookup((9,)) == []
        assert len(index) == 2

    def test_index_on_no_positions(self):
        r = Relation.from_rows(("a",), [(1,), (2,)])
        index = HashIndex(r, ())
        assert sorted(index.lookup(())) == [(1,), (2,)]

    def test_index_pool_caches(self):
        r = Relation.from_rows(("a", "b"), [(1, 2)])
        pool = IndexPool()
        first = pool.index(r, (0,))
        second = pool.index(r, (0,))
        assert first is second
        assert len(pool) == 1
        pool.index(r, (1,))
        assert len(pool) == 2


class TestSchema:
    def test_relation_schema_defaults(self):
        schema = RelationSchema("R", 2)
        assert schema.default_attributes() == ("R.0", "R.1")

    def test_relation_schema_validation(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", 2, ("only-one",))
        with pytest.raises(SchemaError):
            RelationSchema("", 1)
        with pytest.raises(SchemaError):
            RelationSchema("R", -1)

    def test_database_schema(self):
        schema = DatabaseSchema.of(E=2, P=1)
        assert "E" in schema
        assert schema.arity("E") == 2
        assert schema.max_arity() == 2
        assert schema.names() == ("E", "P")
        with pytest.raises(SchemaError):
            schema["missing"]

    def test_duplicate_schema_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", 1), RelationSchema("R", 2)])


class TestDatabase:
    def test_from_tuples_and_lookup(self):
        db = Database.from_tuples({"E": [(1, 2)]})
        assert db["E"].cardinality == 1
        assert "E" in db
        with pytest.raises(SchemaError):
            db["F"]

    def test_from_tuples_empty_relation_rejected(self):
        with pytest.raises(SchemaError):
            Database.from_tuples({"E": []})

    def test_with_relation(self):
        db = Database.from_tuples({"E": [(1, 2)]})
        db2 = db.with_relation("F", Relation.from_rows(("F.0",), [(7,)]))
        assert "F" in db2
        assert "F" not in db

    def test_active_domain(self):
        db = Database.from_tuples({"E": [(1, 2)], "F": [(3,)]})
        assert db.active_domain() == frozenset({1, 2, 3})

    def test_declared_domain_must_cover(self):
        with pytest.raises(SchemaError):
            Database(
                {"E": Relation.from_rows(("a", "b"), [(1, 5)])},
                domain=[1, 2],
            )

    def test_declared_domain_used(self):
        db = Database(
            {"E": Relation.from_rows(("a", "b"), [(1, 2)])},
            domain=[1, 2, 3],
        )
        assert db.domain() == frozenset({1, 2, 3})

    def test_schema_inference(self):
        db = Database.from_tuples({"E": [(1, 2)]})
        assert db.schema().arity("E") == 2

    def test_size_measure(self):
        db = Database.from_tuples({"E": [(1, 2), (2, 3)]})
        assert db.size() == 3 + 4  # 3 domain values + 2 tuples * arity 2
