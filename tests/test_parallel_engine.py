"""The parallel execution layer behind the engine facade.

Dispatch through sharded executors, N-wide batch lifting, the per-shape
stats ledger, and cost-model feedback must all be invisible at the API:
every result equals what the sequential PR 2 engine returns.
"""

import random

import pytest

from repro import Database, DatalogEvaluator, NaiveEvaluator, QueryEngine
from repro.engine import Planner
from repro.evaluation import YannakakisEvaluator
from repro.operations import EXECUTE, operations_of
from repro.parallel import (
    ParallelYannakakisEvaluator,
    WorkerPool,
    lift_batch_group,
)
from repro.query.parser import parse_program, parse_query
from repro.workloads import (
    chain_database,
    path_neq_query,
    path_query,
    random_acyclic_query,
    random_database,
    star_database,
    star_query,
)
from repro.relational.schema import DatabaseSchema, RelationSchema


def sharding_engine(**kwargs) -> QueryEngine:
    """An engine whose planner shards everything (threshold 1 row)."""
    return QueryEngine(
        planner=Planner(shard_threshold_rows=1, shard_count=4), **kwargs
    )


@pytest.fixture
def big_chain():
    return chain_database(layers=5, width=24, p=0.3, seed=11)


class TestParallelDispatch:
    def test_sharded_plan_recorded_and_explained(self, big_chain):
        engine = sharding_engine()
        query = path_query(4, head_arity=1)
        plan = engine.plan_for(query, big_chain)
        assert plan.evaluator == "yannakakis"
        assert plan.shard_count == 4
        text = engine.explain(query, big_chain)
        assert "sharding : 4-way hash partitions" in text

    def test_small_inputs_stay_sequential(self):
        engine = QueryEngine()
        database = chain_database(layers=5, width=8, p=0.3, seed=1)
        plan = engine.plan_for(path_query(4, head_arity=1), database)
        assert plan.shard_count == 1
        text = engine.explain(path_query(4, head_arity=1), database)
        assert "sharding : off" in text

    def test_parallel_execution_matches_sequential(self, big_chain):
        query = path_query(4, head_arity=2)
        parallel = sharding_engine()
        sequential = QueryEngine(parallel=False)
        assert parallel.execute(query, big_chain) == sequential.execute(
            query, big_chain
        )
        assert parallel.decide(query, big_chain) == sequential.decide(
            query, big_chain
        )

    def test_star_query_parallel_matches(self):
        query = star_query(5)
        database = star_database(5, 64, seed=3)
        parallel = sharding_engine()
        assert parallel.execute(query, database) == QueryEngine(
            parallel=False
        ).execute(query, database)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_acyclic_agreement(self, seed):
        rng = random.Random(seed)
        query = random_acyclic_query(
            num_atoms=rng.randint(2, 5),
            max_arity=3,
            seed=seed,
            head_arity=rng.randint(0, 2),
        )
        schema = DatabaseSchema(
            RelationSchema(atom.relation, atom.arity) for atom in query.atoms
        )
        database = random_database(schema, 12, 80, seed=seed)
        evaluator = ParallelYannakakisEvaluator(shard_count=3, min_shard_rows=1)
        reference = YannakakisEvaluator()
        assert evaluator.evaluate(query, database) == reference.evaluate(
            query, database
        )
        assert evaluator.decide(query, database) == reference.decide(
            query, database
        )

    def test_pool_modes_agree(self, big_chain):
        query = path_query(4, head_arity=1)
        expected = QueryEngine(parallel=False).execute(query, big_chain)
        for kwargs in (
            {"max_workers": 1},
            {"max_workers": 3, "pool_mode": "threads"},
            {"pool_mode": "serial"},
        ):
            with sharding_engine(**kwargs) as engine:
                assert engine.execute(query, big_chain) == expected

    def test_forced_evaluator_still_works(self, big_chain):
        engine = sharding_engine()
        query = path_query(4, head_arity=1)
        assert engine.execute(query, big_chain, evaluator="naive") == (
            engine.execute(query, big_chain)
        )


class TestBatchLifting:
    def make_batch(self, database, size, length=4):
        query = path_query(length, head_arity=1)
        starts = sorted({row[0] for row in database["E"].rows})
        starts = (starts * (size // len(starts) + 1))[:size]
        return [query.decision_instance((value,)) for value in starts]

    def test_lifted_batch_matches_per_member(self, big_chain):
        batch = self.make_batch(big_chain, 32)
        wide = QueryEngine()
        sequential = QueryEngine(parallel=False)
        assert wide.run_batch(operations_of(EXECUTE, batch), big_chain) == sequential.run_batch(operations_of(EXECUTE, batch), big_chain
        )

    def test_small_groups_skip_lifting(self, big_chain):
        batch = self.make_batch(big_chain, 3)
        assert QueryEngine(batch_wide_threshold=8).run_batch(operations_of(EXECUTE, batch), big_chain
        ) == QueryEngine(parallel=False).run_batch(operations_of(EXECUTE, batch), big_chain)

    def test_mixed_shape_batch_preserves_order(self, big_chain):
        batch = self.make_batch(big_chain, 12)
        batch.insert(0, path_query(3, head_arity=1))
        batch.append(path_query(2, head_arity=2))
        wide = QueryEngine().run_batch(operations_of(EXECUTE, batch), big_chain)
        sequential = QueryEngine(parallel=False).run_batch(operations_of(EXECUTE, batch), big_chain)
        assert wide == sequential

    def test_identical_members_share_one_execution(self, big_chain):
        query = path_query(4, head_arity=1)
        batch = [query] * 10
        results = QueryEngine().run_batch(operations_of(EXECUTE, batch), big_chain)
        assert all(result == results[0] for result in results)
        assert results[0] == QueryEngine(parallel=False).execute(query, big_chain)

    def test_inequality_members_fall_back(self, big_chain):
        query = path_neq_query(3, 2, seed=1)
        starts = sorted({row[0] for row in big_chain["E"].rows})[:10]
        batch = [query.decision_instance((value,)) for value in starts]
        assert QueryEngine().run_batch(operations_of(EXECUTE, batch), big_chain) == QueryEngine(
            parallel=False
        ).run_batch(operations_of(EXECUTE, batch), big_chain)

    def test_lift_declines_on_template_mismatch(self, big_chain):
        left = path_query(3, head_arity=1).decision_instance((0,))
        renamed = parse_query("PATH() :- E(0, a), E(a, b), E(b, c).")
        assert lift_batch_group([left, renamed], big_chain) is None

    def test_lift_declines_on_identical_members(self, big_chain):
        member = path_query(3, head_arity=1)  # no constants — nothing to lift
        assert lift_batch_group([member, member], big_chain) is None

    def test_lifted_head_arity_two(self, big_chain):
        query = path_query(3, head_arity=2)
        rows = sorted(big_chain["E"].rows)[:12]
        batch = [query.decision_instance(row) for row in rows]
        assert QueryEngine().run_batch(operations_of(EXECUTE, batch), big_chain) == QueryEngine(
            parallel=False
        ).run_batch(operations_of(EXECUTE, batch), big_chain)


class TestObservability:
    def test_stats_facade_counts_shapes_and_latency(self, big_chain):
        engine = QueryEngine()
        query = path_query(4, head_arity=1)
        for value in sorted({row[0] for row in big_chain["E"].rows})[:5]:
            engine.contains(query, big_chain, (value,))
        stats = engine.stats()
        assert stats.executions == 5
        assert stats.cache.hits == 4
        assert stats.cache.misses == 1
        assert len(stats.shapes) == 1
        shape = stats.shapes[0]
        assert shape.executions == 5
        assert shape.total_seconds > 0
        assert shape.mean_seconds > 0
        assert "EngineStats" in stats.summary()

    def test_actual_cardinality_feedback_in_explain(self, big_chain):
        engine = QueryEngine()
        query = path_query(4, head_arity=1)
        before = engine.explain(query, big_chain)
        assert "actuals" not in before
        result = engine.execute(query, big_chain)
        after = engine.explain(query, big_chain)
        assert f"last |Q(d)|={result.cardinality}" in after
        plan = engine.plan_for(query, big_chain)
        assert plan.runtime.last_rows == result.cardinality
        assert plan.runtime.executions >= 1
        assert plan.estimated_rows > 0

    def test_clear_cache_resets_ledger(self, big_chain):
        engine = QueryEngine()
        engine.execute(path_query(3, head_arity=1), big_chain)
        engine.clear_cache()
        stats = engine.stats()
        assert stats.executions == 0
        assert stats.shapes == ()


class TestDatalogThroughEngine:
    def test_rule_bodies_hit_plan_cache(self):
        program = parse_program(
            """
            T(x, y) :- E(x, y).
            T(x, z) :- E(x, y), T(y, z).
            """
        )
        rng = random.Random(0)
        edges = Database.from_tuples(
            {"E": [(rng.randrange(25), rng.randrange(25)) for _ in range(50)]}
        )
        adaptive = DatalogEvaluator()
        legacy = DatalogEvaluator(NaiveEvaluator())
        assert adaptive.evaluate(program, edges) == legacy.evaluate(
            program, edges
        )
        assert adaptive.rule_engine.stats().cache.hits > 0

    def test_engine_instance_can_be_injected(self):
        program = parse_program("T(x, y) :- E(x, y).")
        edges = Database.from_tuples({"E": [(1, 2), (2, 3)]})
        engine = QueryEngine()
        evaluator = DatalogEvaluator(engine)
        evaluator.evaluate(program, edges)
        assert evaluator.rule_engine is engine
        assert engine.stats().executions > 0


class TestBatchObservability:
    def test_lifted_batch_leaves_member_plan_runtime_untouched(self, big_chain):
        engine = QueryEngine()
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in big_chain["E"].rows})[:16]
        batch = [query.decision_instance((value,)) for value in starts]
        engine.run_batch(operations_of(EXECUTE, batch), big_chain)
        member_plan = engine.plan_for(batch[0], big_chain)
        # The members were served by the lifted query's execution — their
        # own plan never ran, so it must not accumulate phantom actuals.
        assert member_plan.runtime.executions == 0
        lifted_shapes = [
            s for s in engine.stats().shapes if s.executions and s.last_rows is not None
        ]
        assert len(lifted_shapes) == 1  # exactly the lifted execution

    def test_identical_members_record_one_execution(self, big_chain):
        engine = QueryEngine()
        query = path_query(4, head_arity=1)
        engine.run_batch(operations_of(EXECUTE, [query] * 6), big_chain)
        plan = engine.plan_for(query, big_chain)
        assert plan.runtime.executions == 1
        assert engine.stats().executions == 1


class TestWorkerPool:
    def test_serial_inline(self):
        pool = WorkerPool(max_workers=1, mode="threads")
        assert pool.mode == "serial"
        assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_threads_preserve_order(self):
        with WorkerPool(max_workers=4, mode="threads") as pool:
            assert pool.map(lambda x: x * x, list(range(20))) == [
                x * x for x in range(20)
            ]
            assert pool.supports_closures

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(mode="fibers")

    def test_nested_map_runs_inline_instead_of_deadlocking(self):
        # A level with as many parent tasks as workers, each issuing a
        # nested sharded map, used to exhaust the bounded executor: every
        # worker blocked on inner tasks no free worker could run.
        pool = WorkerPool(max_workers=2, mode="threads")

        def outer(i):
            return sum(pool.map(lambda j: i * 10 + j, [1, 2, 3]))

        done = {}

        def drive():
            done["result"] = pool.map(outer, [0, 1, 2, 3])

        import threading

        worker = threading.Thread(target=drive, daemon=True)
        worker.start()
        worker.join(timeout=30)
        assert "result" in done, "nested WorkerPool.map deadlocked"
        expected = [sum(i * 10 + j for j in (1, 2, 3)) for i in range(4)]
        assert done["result"] == expected
        pool.close()

    def test_multicore_shaped_engine_run_completes(self, big_chain):
        # Two-worker thread pool + a join tree with two independent
        # parent groups per level: the executor fans the groups out and
        # each group issues nested sharded semijoins.
        query = parse_query(
            "Q(x) :- R(x, y), S(x, z), T(y, u), U(z, v)."
        )
        rng = random.Random(5)
        database = Database.from_tuples(
            {
                name: [(rng.randrange(30), rng.randrange(30)) for _ in range(900)]
                for name in ("R", "S", "T", "U")
            }
        )
        with WorkerPool(max_workers=2, mode="threads") as pool:
            evaluator = ParallelYannakakisEvaluator(
                pool=pool, shard_count=2, min_shard_rows=1
            )
            done = {}

            def drive():
                done["result"] = evaluator.evaluate(query, database)

            import threading

            worker = threading.Thread(target=drive, daemon=True)
            worker.start()
            worker.join(timeout=60)
            assert "result" in done, "parallel Yannakakis deadlocked"
            assert done["result"] == YannakakisEvaluator().evaluate(query, database)
