"""Differential counting properties (hypothesis): ``count(Q)`` equals
``len(execute(Q).rows)`` whatever the query shape, the shard plan, or the
layer — serial engine, sharded engine, or over the wire — and grouped
counts equal the naive group-by over the materialized answers.

The fast modes never materialize the join, so this is the property that
keeps the annotated fold honest against the evaluation pipeline."""

import asyncio
import random

from hypothesis import given, settings, strategies as st

from repro import QueryEngine
from repro.engine import FAST_COUNTING_MODES, Planner
from repro.evaluation import (
    CountingYannakakisEvaluator,
    NaiveEvaluator,
    grouped_count_reference,
)
from repro.protocol import AsyncQueryClient, QueryServer
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import Variable
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads import (
    chain_database,
    cycle_query,
    random_acyclic_query,
    random_database,
)

SETTINGS = settings(max_examples=25, deadline=None)

# One engine per flavor for the whole module: plan caching across examples
# is exactly the production shape, and it keeps the property fast.
SERIAL = QueryEngine(parallel=False)
SHARDED = QueryEngine(planner=Planner(shard_threshold_rows=1, shard_count=3))


def acyclic_case(seed: int, head_arity: int):
    rng = random.Random(seed)
    query = random_acyclic_query(
        num_atoms=rng.randint(1, 4),
        max_arity=3,
        num_inequalities=0,
        seed=seed,
        head_arity=head_arity,
    )
    schema = DatabaseSchema(
        RelationSchema(atom.relation, atom.arity) for atom in query.atoms
    )
    database = random_database(schema, 5, 30, seed=seed)
    return query, database


class TestCountMatchesExecute:
    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(0, 3))
    def test_acyclic_serial_and_sharded(self, seed, head_arity):
        query, database = acyclic_case(seed, head_arity)
        reference = NaiveEvaluator().evaluate(query, database).cardinality
        assert SERIAL.count(query, database) == reference
        assert SHARDED.count(query, database) == reference
        assert len(SERIAL.execute(query, database).rows) == reference

    @SETTINGS
    @given(st.integers(3, 5), st.integers(0, 500), st.booleans())
    def test_cyclic_counts_via_fallback(self, length, seed, with_head):
        base = cycle_query(length)
        query = (
            ConjunctiveQuery(
                (Variable("x0"),), list(base.atoms), head_name="CYC"
            )
            if with_head
            else base
        )
        database = chain_database(layers=4, width=4, p=0.6, seed=seed)
        reference = NaiveEvaluator().evaluate(query, database).cardinality
        assert SERIAL.count(query, database) == reference
        assert SHARDED.count(query, database) == reference

    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_fast_modes_agree_with_materialization(self, seed, head_arity):
        query, database = acyclic_case(seed, head_arity)
        plan = SERIAL.plan_for(query, database)
        if plan.count_mode not in FAST_COUNTING_MODES:
            return
        result = CountingYannakakisEvaluator().count(
            query, database, mode=plan.count_mode
        )
        assert result.total == NaiveEvaluator().evaluate(
            query, database
        ).cardinality
        assert sum(result.partials) == result.total


class TestGroupedCountEquivalence:
    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_grouped_equals_naive_group_by(self, seed, head_arity):
        query, database = acyclic_case(seed, head_arity)
        head_names = []
        for term in query.head_terms:
            if isinstance(term, Variable) and term.name not in head_names:
                head_names.append(term.name)
        if not head_names:
            return
        group = tuple(head_names[:2])
        grouped = SERIAL.grouped_count(query, database, group)
        answers = NaiveEvaluator().evaluate(query, database)
        assert grouped == grouped_count_reference(query, answers, group)
        assert SHARDED.grouped_count(query, database, group) == grouped


class TestOverTheWire:
    def test_wire_counts_match_local(self):
        # A handful of seeds through one real TCP server: the remote
        # count/grouped_count equal the local serial engine's.
        cases = [acyclic_case(seed, head_arity=2) for seed in (1, 7, 23, 91)]
        databases = {f"db{i}": db for i, (_, db) in enumerate(cases)}

        async def main():
            results = []
            async with QueryServer(databases) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    for i, (query, _) in enumerate(cases):
                        results.append(
                            (
                                await client.count(query, f"db{i}"),
                                await client.execute(query, f"db{i}"),
                            )
                        )
            return results

        for (query, database), (count, executed) in zip(
            cases, asyncio.run(main())
        ):
            reference = NaiveEvaluator().evaluate(query, database)
            assert count == reference.cardinality
            assert executed == reference
