"""Fleet unit + integration tests: supervisor lifecycle, breaker, routing.

The pieces individually: the supervisor's spawn/respawn/breaker state
machine, the server CLI's one-line config-error contract the supervisor
reads, the router's placement and failover accounting, and the
RetryPolicy-wrapped client reconnecting across a worker generation.  The
full mid-flood SIGKILL story is ``test_fleet_chaos.py``.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import QueryEngine
from repro.errors import FleetDrainedError
from repro.fleet import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    FleetRouter,
    FleetSupervisor,
)
from repro.protocol import QueryClient
from repro.relational.io import save_database_json
from repro.resilience import FaultPlan, RetryPolicy
from repro.workloads import chain_database, star_database
from repro.workloads.queries import path_query, star_query

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

SPAWN_TIMEOUT = 60


@pytest.fixture(scope="module")
def chain_db():
    return chain_database(layers=4, width=16, p=0.3, seed=11)


@pytest.fixture(scope="module")
def chain_path(chain_db, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet") / "chain.json"
    save_database_json(chain_db, str(path))
    return str(path)


@pytest.fixture(scope="module")
def sequential():
    return QueryEngine(parallel=False)


@pytest.fixture(scope="module")
def fleet(chain_path):
    """One shared 2-worker fleet for the non-destructive tests."""
    with FleetSupervisor({"chain": chain_path}, workers=2) as supervisor:
        yield supervisor


def wait_for_ready(supervisor, count, timeout=SPAWN_TIMEOUT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(supervisor.endpoints()) >= count:
            return True
        time.sleep(0.05)
    return False


def kill_worker(supervisor, index=0):
    """SIGKILL one worker's process, returning its pid."""
    snapshot = supervisor.stats()["workers"][index]
    assert snapshot.pid is not None
    os.kill(snapshot.pid, signal.SIGKILL)
    return snapshot.pid


class TestSupervisorLifecycle:
    def test_all_workers_ready_with_distinct_ports(self, fleet):
        endpoints = fleet.endpoints()
        assert len(endpoints) == 2
        assert len({port for _, _, port in endpoints}) == 2
        stats = fleet.stats()
        assert stats["ready"] == 2
        assert stats["registered_databases"] == []
        for snapshot in stats["workers"]:
            assert snapshot.state == "ready"
            assert snapshot.breaker == BREAKER_CLOSED

    def test_crash_detection_and_respawn(self, chain_path):
        with FleetSupervisor({"chain": chain_path}, workers=2) as supervisor:
            assert wait_for_ready(supervisor, 2)
            version = supervisor.version
            before = {port for _, _, port in supervisor.endpoints()}
            kill_worker(supervisor, 0)
            # The kill is only observed at the next probe tick; wait for
            # the replacement (fresh port) to join, not just for count=2.
            deadline = time.monotonic() + SPAWN_TIMEOUT
            after = before
            while time.monotonic() < deadline:
                endpoints = supervisor.endpoints()
                after = {port for _, _, port in endpoints}
                if len(endpoints) == 2 and after != before:
                    break
                time.sleep(0.05)
            assert after != before  # the replacement bound a fresh port
            assert supervisor.version > version  # membership churned
            snapshot = supervisor.stats()["workers"][0]
            assert snapshot.restarts >= 1

    def test_ready_timeout_fault_counts_as_failed_start(self, chain_path):
        plan = FaultPlan({"fleet.ready_timeout": {"times": 1}})
        with FleetSupervisor(
            {"chain": chain_path}, workers=1, fault_plan=plan
        ) as supervisor:
            # The injected non-handshake kills the first spawn; the
            # respawn (fault exhausted) comes up normally.
            assert wait_for_ready(supervisor, 1)
            assert plan.fired("fleet.ready_timeout") == 1
            assert supervisor.stats()["workers"][0].restarts >= 1

    def test_breaker_opens_on_flapping_worker_and_recovers(self, chain_db, tmp_path):
        path = tmp_path / "volatile.json"
        save_database_json(chain_db, str(path))
        with FleetSupervisor(
            {"chain": str(path)},
            workers=1,
            backoff_base=0.02,
            backoff_cap=0.1,
            breaker_threshold=2,
            breaker_cooldown=0.5,
            breaker_stable_after=0.2,
        ) as supervisor:
            assert wait_for_ready(supervisor, 1)
            # Sabotage the respawn path: the database file vanishes, so
            # every restart exits before READY — breaker food.
            os.unlink(path)
            kill_worker(supervisor, 0)
            deadline = time.monotonic() + SPAWN_TIMEOUT
            while time.monotonic() < deadline:
                if supervisor.stats()["workers"][0].breaker == BREAKER_OPEN:
                    break
                time.sleep(0.05)
            assert supervisor.stats()["workers"][0].breaker == BREAKER_OPEN
            # Heal the config; the half-open trial after cooldown sticks
            # and the breaker closes once the worker stays up.
            save_database_json(chain_db, str(path))
            assert wait_for_ready(supervisor, 1)
            deadline = time.monotonic() + SPAWN_TIMEOUT
            while time.monotonic() < deadline:
                if supervisor.stats()["workers"][0].breaker == BREAKER_CLOSED:
                    break
                time.sleep(0.05)
            assert supervisor.stats()["workers"][0].breaker == BREAKER_CLOSED

    def test_rolling_restart_replaces_every_worker(self, chain_path, sequential, chain_db):
        query = path_query(3, head_arity=1)
        with FleetSupervisor({"chain": chain_path}, workers=2) as supervisor:
            assert wait_for_ready(supervisor, 2)
            pids = {s.pid for s in supervisor.stats()["workers"]}
            supervisor.rolling_restart()
            assert wait_for_ready(supervisor, 2)
            assert {s.pid for s in supervisor.stats()["workers"]}.isdisjoint(pids)
            with FleetRouter(supervisor) as router:
                assert router.execute(query, "chain") == sequential.execute(
                    query, chain_db
                )


class TestServerCLIErrors:
    """Satellite: the server executable must fail config errors with ONE
    clear stderr line and a nonzero exit — the supervisor reads exactly
    this to tell "can never start" from a transient crash."""

    def _run(self, *args):
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        return subprocess.run(
            [sys.executable, "-m", "repro.protocol.server", *args],
            capture_output=True,
            text=True,
            env=env,
            timeout=SPAWN_TIMEOUT,
        )

    @staticmethod
    def _error_lines(stderr):
        # runpy may warn about the package import on stderr; the contract
        # is about *our* output: exactly one QUERYSERVER ERROR line and
        # no traceback.
        return [
            line
            for line in stderr.splitlines()
            if line.strip() and "RuntimeWarning" not in line and "runpy" not in line
        ]

    def test_missing_database_file_is_one_line_error(self, tmp_path):
        result = self._run("--database", f"chain={tmp_path}/nope.json")
        assert result.returncode == 2
        lines = self._error_lines(result.stderr)
        assert len(lines) == 1
        assert lines[0].startswith("QUERYSERVER ERROR: cannot load database 'chain'")
        assert "Traceback" not in result.stderr

    def test_unparsable_database_file_is_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        result = self._run("--database", f"db={bad}")
        assert result.returncode == 2
        lines = self._error_lines(result.stderr)
        assert len(lines) == 1
        assert lines[0].startswith("QUERYSERVER ERROR: cannot load database 'db'")
        assert "Traceback" not in result.stderr


class TestRouter:
    def test_results_match_sequential_across_ops(self, fleet, chain_db, sequential):
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:6]
        instances = [query.decision_instance((value,)) for value in starts]
        with FleetRouter(fleet) as router:
            executed = router.execute(query, "chain")
            want = sequential.execute(query, chain_db)
            assert executed == want
            assert executed.rows == want.rows  # byte-identical content
            assert [router.decide(q, "chain") for q in instances] == [
                sequential.decide(q, chain_db) for q in instances
            ]
            assert router.count(query, "chain") == sequential.count(query, chain_db)
            assert "QueryPlan" in router.explain(query, "chain")
            stats = router.stats()
            assert sum(stats["routed"].values()) == 3 + len(instances)
            assert stats["pending"] == {}

    def test_load_spreads_across_workers(self, fleet, chain_db):
        query = path_query(2, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:8]
        with FleetRouter(fleet) as router:
            for value in starts * 3:
                router.decide(query.decision_instance((value,)), "chain")
            routed = router.stats()["routed"]
            assert len(routed) == 2  # both workers saw traffic
            assert all(count > 0 for count in routed.values())

    def test_register_database_fleet_wide_and_replayed(
        self, chain_path, chain_db, sequential
    ):
        star_db = star_database(3, 40, seed=5)
        star = star_query(3)
        with FleetSupervisor({"chain": chain_path}, workers=2) as supervisor:
            assert wait_for_ready(supervisor, 2)
            with FleetRouter(supervisor) as router:
                acknowledged = router.register_database("star", star_db)
                assert sorted(acknowledged) == [0, 1]
                assert router.decide(star, "star") == sequential.decide(
                    star, star_db
                )
                # A respawned worker must serve the runtime-registered
                # database too — the supervisor replays it pre-READY.
                kill_worker(supervisor, 0)
                assert wait_for_ready(supervisor, 2)
                for _ in range(8):  # enough picks to hit both workers
                    assert router.decide(star, "star") == sequential.decide(
                        star, star_db
                    )
                assert "star" in supervisor.stats()["registered_databases"]

    def test_fleet_drained_when_no_workers(self, chain_path):
        query = path_query(2, head_arity=1)
        supervisor = FleetSupervisor({"chain": chain_path}, workers=1)
        supervisor.start()
        assert wait_for_ready(supervisor, 1)
        supervisor.close()  # every worker drained away
        retry = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02)
        with FleetRouter(supervisor, retry=retry) as router:
            with pytest.raises(FleetDrainedError) as excinfo:
                router.decide(query, "chain")
            assert excinfo.value.attempts == 2
            assert excinfo.value.last_error is not None

    def test_pending_slots_release_when_worker_dies_mid_flight(
        self, chain_path, chain_db, sequential
    ):
        """Satellite: requests admitted against a worker that dies must
        release their pending-cost slots — the dead worker's score drains
        to zero and placement stays balanced for the survivors (the same
        guarantee the service's FairQueue purge gives in-process)."""
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:8]
        instances = [query.decision_instance((value,)) for value in starts]
        want = [sequential.decide(q, chain_db) for q in instances]
        with FleetSupervisor({"chain": chain_path}, workers=2) as supervisor:
            assert wait_for_ready(supervisor, 2)
            with FleetRouter(supervisor) as router:
                results = [None] * 8
                errors = []

                def worker_thread(lane):
                    try:
                        out = []
                        for q in instances:
                            out.append(router.decide(q, "chain"))
                        results[lane] = out
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [
                    threading.Thread(target=worker_thread, args=(lane,))
                    for lane in range(8)
                ]
                for thread in threads:
                    thread.start()
                kill_worker(supervisor, 0)  # mid-flight, requests admitted
                for thread in threads:
                    thread.join(timeout=SPAWN_TIMEOUT)
                assert not errors
                assert all(out == want for out in results)
                assert router.pending() == {}  # every slot released
                assert wait_for_ready(supervisor, 2)


class TestClientFailoverAcrossGenerations:
    """Satellite: a RetryPolicy-wrapped ``QueryClient`` survives its
    server being SIGKILLed and replaced mid-batch, reconnecting to the
    respawned generation on the same address."""

    @staticmethod
    def _free_port():
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            return probe.getsockname()[1]

    @staticmethod
    def _spawn(chain_path, port):
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.protocol.server",
                "--host",
                "127.0.0.1",
                "--port",
                str(port),
                "--database",
                f"chain={chain_path}",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        ready = process.stdout.readline()
        assert ready.startswith("QUERYSERVER READY"), ready
        return process

    def test_retry_client_reconnects_to_respawned_worker_mid_batch(
        self, chain_path, chain_db, sequential
    ):
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:8]
        instances = [query.decision_instance((value,)) for value in starts]
        want = [sequential.decide(q, chain_db) for q in instances]
        port = self._free_port()
        first = self._spawn(chain_path, port)
        second = None
        try:
            retry = RetryPolicy(max_attempts=8, base_delay=0.05, max_delay=0.5)
            with QueryClient("127.0.0.1", port, timeout=10, retry=retry) as client:
                head = [client.decide(q, "chain") for q in instances[:4]]
                first.kill()  # the generation serving the batch dies...
                first.wait(timeout=30)
                second = self._spawn(chain_path, port)  # ...and is replaced
                tail = [client.decide(q, "chain") for q in instances[4:]]
            assert head + tail == want
            assert client.reconnects >= 1  # the policy re-opened the socket
        finally:
            for process in (first, second):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=30)
