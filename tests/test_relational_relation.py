"""Unit tests for the Relation value type."""

import pytest

from repro.errors import ArityError, SchemaError
from repro.relational import Relation


class TestConstruction:
    def test_rows_become_frozenset(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (1, 2), (3, 4)])
        assert r.cardinality == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ArityError):
            Relation.from_rows(("a", "b"), [(1, 2, 3)])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(("a", "a"), [])

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(("a", ""), [])

    def test_unit_and_empty(self):
        assert Relation.unit().cardinality == 1
        assert Relation.unit().arity == 0
        assert Relation.empty().is_empty()
        assert Relation.empty(("x",)).attributes == ("x",)

    def test_from_dicts(self):
        r = Relation.from_dicts(("a", "b"), [{"a": 1, "b": 2}, {"b": 4, "a": 3}])
        assert (3, 4) in r


class TestEquality:
    def test_column_order_insensitive(self):
        left = Relation.from_rows(("a", "b"), [(1, 2)])
        right = Relation.from_rows(("b", "a"), [(2, 1)])
        assert left == right
        assert hash(left) == hash(right)

    def test_different_schema_not_equal(self):
        assert Relation.from_rows(("a",), [(1,)]) != Relation.from_rows(("b",), [(1,)])

    def test_different_rows_not_equal(self):
        assert Relation.from_rows(("a",), [(1,)]) != Relation.from_rows(("a",), [(2,)])


class TestUnaryOps:
    def test_project_collapses_duplicates(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3)])
        assert r.project(("a",)).rows == frozenset({(1,)})

    def test_project_reorders(self):
        r = Relation.from_rows(("a", "b"), [(1, 2)])
        assert r.project(("b", "a")).rows == frozenset({(2, 1)})

    def test_project_missing_attribute(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(("a",), [(1,)]).project(("z",))

    def test_project_to_nullary(self):
        nonempty = Relation.from_rows(("a",), [(1,)])
        assert nonempty.project(()).cardinality == 1
        assert Relation.from_rows(("a",), []).project(()).is_empty()

    def test_select_predicate(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (3, 4)])
        assert r.select(lambda row: row["a"] > 1).rows == frozenset({(3, 4)})

    def test_select_eq(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (1, 3), (2, 3)])
        assert r.select_eq({"a": 1}).cardinality == 2
        assert r.select_eq({"a": 1, "b": 3}).cardinality == 1

    def test_select_attr_eq_and_neq(self):
        r = Relation.from_rows(("a", "b"), [(1, 1), (1, 2)])
        assert r.select_attr_eq("a", "b").rows == frozenset({(1, 1)})
        assert r.select_attr_neq("a", "b").rows == frozenset({(1, 2)})

    def test_rename(self):
        r = Relation.from_rows(("a", "b"), [(1, 2)])
        renamed = r.rename({"a": "x"})
        assert renamed.attributes == ("x", "b")
        assert (1, 2) in renamed

    def test_rename_collision_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(("a", "b"), []).rename({"a": "b"})

    def test_extend(self):
        r = Relation.from_rows(("a",), [(1,), (2,)])
        extended = r.extend("double", lambda row: row["a"] * 2)
        assert extended.attributes == ("a", "double")
        assert (2, 4) in extended

    def test_extend_existing_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(("a",), []).extend("a", lambda row: 0)

    def test_column_and_active_values(self):
        r = Relation.from_rows(("a", "b"), [(1, 2), (3, 2)])
        assert r.column("b") == frozenset({2})
        assert r.active_values() == frozenset({1, 2, 3})


class TestBinaryOps:
    def test_union_difference_intersection(self):
        left = Relation.from_rows(("a",), [(1,), (2,)])
        right = Relation.from_rows(("a",), [(2,), (3,)])
        assert left.union(right).cardinality == 3
        assert left.difference(right).rows == frozenset({(1,)})
        assert left.intersection(right).rows == frozenset({(2,)})

    def test_union_aligns_column_order(self):
        left = Relation.from_rows(("a", "b"), [(1, 2)])
        right = Relation.from_rows(("b", "a"), [(4, 3)])
        merged = left.union(right)
        assert merged.attributes == ("a", "b")
        assert (3, 4) in merged

    def test_union_incompatible_schema(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(("a",), []).union(Relation.from_rows(("b",), []))

    def test_natural_join_basic(self):
        left = Relation.from_rows(("a", "b"), [(1, 2), (2, 3)])
        right = Relation.from_rows(("b", "c"), [(2, 9), (2, 8)])
        joined = left.natural_join(right)
        assert joined.attributes == ("a", "b", "c")
        assert joined.rows == frozenset({(1, 2, 9), (1, 2, 8)})

    def test_join_no_shared_is_product(self):
        left = Relation.from_rows(("a",), [(1,), (2,)])
        right = Relation.from_rows(("b",), [(9,)])
        assert left.natural_join(right).cardinality == 2

    def test_join_same_schema_is_intersection(self):
        left = Relation.from_rows(("a",), [(1,), (2,)])
        right = Relation.from_rows(("a",), [(2,), (3,)])
        assert left.natural_join(right) == left.intersection(right)

    def test_join_with_unit(self):
        r = Relation.from_rows(("a",), [(1,)])
        assert Relation.unit().natural_join(r) == r
        assert r.natural_join(Relation.unit()) == r

    def test_join_with_nullary_false(self):
        r = Relation.from_rows(("a",), [(1,)])
        assert r.natural_join(Relation.empty()).is_empty()

    def test_semijoin(self):
        left = Relation.from_rows(("a", "b"), [(1, 2), (2, 5)])
        right = Relation.from_rows(("b",), [(2,)])
        assert left.semijoin(right).rows == frozenset({(1, 2)})

    def test_semijoin_no_shared(self):
        left = Relation.from_rows(("a",), [(1,)])
        assert left.semijoin(Relation.from_rows(("c",), [(7,)])) == left
        assert left.semijoin(Relation.from_rows(("c",), [])).is_empty()

    def test_antijoin(self):
        left = Relation.from_rows(("a", "b"), [(1, 2), (2, 5)])
        right = Relation.from_rows(("b",), [(2,)])
        assert left.antijoin(right).rows == frozenset({(2, 5)})

    def test_contains_and_iteration(self):
        r = Relation.from_rows(("a",), [(1,), (2,)])
        assert (1,) in r
        assert sorted(r) == [(1,), (2,)]
        assert len(r) == 2
