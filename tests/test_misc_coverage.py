"""Coverage for smaller surfaces: errors, attributes, formulas, demo entry."""

import pytest

from repro.errors import (
    ArityError,
    InconsistentConstraintsError,
    NotAcyclicError,
    ParseError,
    QueryError,
    ReductionError,
    ReproError,
    SchemaError,
)
from repro.relational.attributes import (
    HASH_PREFIX,
    check_attribute_names,
    hashed,
    is_hashed,
    positions_of,
    unhashed,
)
from repro.query import (
    C,
    Inequality,
    IneqLeaf,
    as_ineq_formula,
    ineq_and,
    ineq_or,
)


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for exc in (
            ArityError,
            InconsistentConstraintsError,
            NotAcyclicError,
            ParseError,
            QueryError,
            ReductionError,
            SchemaError,
        ):
            assert issubclass(exc, ReproError)

    def test_arity_is_schema_error(self):
        assert issubclass(ArityError, SchemaError)

    def test_parse_error_position(self):
        error = ParseError("bad", position=7)
        assert error.position == 7
        assert ParseError("bad").position == -1


class TestAttributes:
    def test_hashed_round_trip(self):
        assert hashed("x") == HASH_PREFIX + "x"
        assert is_hashed(hashed("x"))
        assert not is_hashed("x")
        assert unhashed(hashed("x")) == "x"

    def test_unhashed_rejects_plain(self):
        with pytest.raises(SchemaError):
            unhashed("x")

    def test_check_attribute_names(self):
        assert check_attribute_names(["a", "b"]) == ("a", "b")
        with pytest.raises(SchemaError):
            check_attribute_names(["a", "a"])
        with pytest.raises(SchemaError):
            check_attribute_names([""])

    def test_positions_of(self):
        assert positions_of(("a", "b", "c"), ("c", "a")) == (2, 0)
        with pytest.raises(SchemaError):
            positions_of(("a",), ("z",))


class TestIneqFormulaAPI:
    def test_leaves_collects_all(self):
        phi = ineq_and(
            Inequality("x", "y"),
            ineq_or(Inequality("y", "z"), Inequality("x", C(1))),
        )
        assert len(phi.leaves()) == 3

    def test_as_ineq_formula_coercion(self):
        leaf = as_ineq_formula(Inequality("a", "b"))
        assert isinstance(leaf, IneqLeaf)
        assert as_ineq_formula(leaf) is leaf
        with pytest.raises(QueryError):
            as_ineq_formula("not a formula")

    def test_flattening_and_equality(self):
        left = ineq_and(
            ineq_and(Inequality("a", "b"), Inequality("b", "c")),
            Inequality("c", "d"),
        )
        right = ineq_and(
            Inequality("a", "b"), Inequality("b", "c"), Inequality("c", "d")
        )
        assert left == right
        assert hash(left) == hash(right)

    def test_empty_junction_rejected(self):
        from repro.query.ineq_formula import IneqAnd

        with pytest.raises(QueryError):
            IneqAnd([])

    def test_repr_readable(self):
        phi = ineq_or(Inequality("x", "y"), Inequality("y", C(3)))
        text = repr(phi)
        assert "!=" in text and "|" in text


class TestDemoEntryPoint:
    def test_main_runs(self, capsys):
        from repro.__main__ import main

        main()
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "verified against the naive engine" in out


class TestClassificationDisplay:
    def test_partial_classifications(self):
        from repro.parametric import Classification, WClass

        hard_only = Classification("p", WClass.W1, None)
        assert hard_only.display() == "W[1]-hard"
        member_only = Classification("p", None, WClass.W_SAT)
        assert member_only.display() == "in W[SAT]"
        nothing = Classification("p", None, None)
        assert nothing.display() == "unclassified"
        assert not nothing.complete

    def test_table_entry_lookup(self):
        from repro.parametric import theorem1_table

        table = theorem1_table()
        with pytest.raises(KeyError):
            table.entry("nonexistent", "q")


class TestGYOResultAPI:
    def test_removal_order_complete(self):
        from repro.hypergraph import Hypergraph, gyo_reduce

        h = Hypergraph("abc", [{"a", "b"}, {"b", "c"}])
        result = gyo_reduce(h)
        assert sorted(result.removal_order) == [0, 1]
        assert result.is_empty


class TestBenchlibMeasurement:
    def test_measurement_fields(self):
        from repro.benchlib import Measurement

        m = Measurement(label="x", parameters={"n": 3}, seconds=0.5, result=9)
        assert m.label == "x"
        assert m.parameters["n"] == 3
