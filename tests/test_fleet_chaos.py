"""Fleet chaos: SIGKILL a worker mid-flood, zero failed client requests.

The acceptance story of the fleet layer: a 2-worker fleet under a
threaded flood of mixed operations loses one worker to SIGKILL at the
worst moment — requests admitted, results in flight — and

* **every** client request still answers (failover re-routes the
  idempotent operations; no caller sees an error),
* every answer is **byte-identical** to a sequential in-process
  ``QueryEngine(parallel=False)`` evaluation of the same operation,
* the supervisor respawns the killed worker and the fleet returns to
  full strength.

Two kill paths are exercised: an external ``os.kill`` (the "OOM killer
took the process" story) and the deterministic ``fleet.worker_kill``
fault site, where the supervisor itself SIGKILLs the worker it was
about to health-probe.
"""

import os
import signal
import threading
import time

import pytest

from repro import QueryEngine
from repro.fleet import FleetRouter, FleetSupervisor
from repro.operations import Operation
from repro.relational.io import save_database_json
from repro.resilience import FaultPlan
from repro.workloads import chain_database
from repro.workloads.queries import path_query

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

THREADS = 8
SPAWN_TIMEOUT = 60


@pytest.fixture(scope="module")
def chain_db():
    return chain_database(layers=5, width=32, p=0.3, seed=11)


@pytest.fixture(scope="module")
def chain_path(chain_db, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-chaos") / "chain.json"
    save_database_json(chain_db, str(path))
    return str(path)


def build_workload(chain_db):
    """Per thread, a mixed-kind operation stream (execute/decide/count)
    over hot and private decision instances — the cross-process stress
    mix, now with a worker dying under it."""
    query = path_query(4, head_arity=1)
    wide = path_query(3, head_arity=2)
    starts = sorted({row[0] for row in chain_db["E"].rows})
    hot = starts[:4]
    lanes = []
    for lane in range(THREADS):
        operations = [Operation.execute(wide)]
        for value in hot:
            operations.append(Operation.decide(query.decision_instance((value,))))
        private = starts[4 + lane :: THREADS][:3]
        for value in private:
            operations.append(Operation.decide(query.decision_instance((value,))))
        operations.append(Operation.count(query))
        lanes.append(operations)
    return lanes


def sequential_reference(lanes, chain_db):
    engine = QueryEngine(parallel=False)
    return [
        [engine.run(operation, chain_db) for operation in lanes[lane]]
        for lane in range(len(lanes))
    ]


def flood(router, lanes, kill):
    """Drive every lane from its own thread; *kill()* fires mid-flood.

    Returns (per-lane results, errors) — chaos acceptance is
    ``errors == []``.
    """
    results = [None] * len(lanes)
    errors = []
    started = threading.Barrier(len(lanes) + 1)

    def lane_thread(lane):
        try:
            started.wait(timeout=SPAWN_TIMEOUT)
            out = []
            for operation in lanes[lane]:
                out.append(router.run(operation, "chain"))
            results[lane] = out
        except BaseException as exc:  # noqa: BLE001 — chaos verdict data
            errors.append((lane, exc))

    threads = [
        threading.Thread(target=lane_thread, args=(lane,))
        for lane in range(len(lanes))
    ]
    for thread in threads:
        thread.start()
    started.wait(timeout=SPAWN_TIMEOUT)
    kill()
    for thread in threads:
        thread.join(timeout=SPAWN_TIMEOUT * 2)
    return results, errors


def wait_for_ready(supervisor, count, timeout=SPAWN_TIMEOUT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(supervisor.endpoints()) >= count:
            return True
        time.sleep(0.05)
    return False


class TestKillMidFlood:
    def test_sigkill_mid_flood_zero_failures_byte_identical(
        self, chain_db, chain_path
    ):
        lanes = build_workload(chain_db)
        reference = sequential_reference(lanes, chain_db)
        with FleetSupervisor({"chain": chain_path}, workers=2) as supervisor:
            assert wait_for_ready(supervisor, 2)
            victim = supervisor.stats()["workers"][0].pid

            def kill():
                time.sleep(0.05)  # let requests get admitted first
                os.kill(victim, signal.SIGKILL)

            with FleetRouter(supervisor) as router:
                results, errors = flood(router, lanes, kill)
                assert errors == []  # zero failed client requests
                for lane in range(THREADS):
                    assert results[lane] is not None
                    for got, want in zip(results[lane], reference[lane]):
                        assert got == want
                        if hasattr(want, "rows"):
                            # Byte-identical relation content, not just
                            # set-equal: same attributes, same rows.
                            assert got.attributes == want.attributes
                            assert got.rows == want.rows
                # The fleet healed: the victim's slot respawned.
                assert wait_for_ready(supervisor, 2)
                assert supervisor.stats()["workers"][0].restarts >= 1

    def test_fault_site_kill_is_deterministic_and_survivable(
        self, chain_db, chain_path
    ):
        lanes = build_workload(chain_db)
        reference = sequential_reference(lanes, chain_db)
        plan = FaultPlan({"fleet.worker_kill": {"times": 1, "after": 2}})
        with FleetSupervisor(
            {"chain": chain_path}, workers=2, fault_plan=plan
        ) as supervisor:
            assert wait_for_ready(supervisor, 2)
            with FleetRouter(supervisor) as router:
                # The supervisor itself pulls the trigger at probe time;
                # the flood only has to survive it.
                results, errors = flood(router, lanes, kill=lambda: None)
                deadline = time.monotonic() + SPAWN_TIMEOUT
                while time.monotonic() < deadline and not plan.fired(
                    "fleet.worker_kill"
                ):
                    time.sleep(0.05)
                assert plan.fired("fleet.worker_kill") == 1
                assert errors == []
                for lane in range(THREADS):
                    for got, want in zip(results[lane], reference[lane]):
                        assert got == want
                assert wait_for_ready(supervisor, 2)

    def test_repeated_kills_both_workers_over_time(self, chain_db, chain_path):
        """Kill each worker once, sequentially, with traffic in between:
        the fleet never loses availability as long as one worker lives."""
        query = path_query(3, head_arity=1)
        engine = QueryEngine(parallel=False)
        want = engine.decide(query, chain_db)
        with FleetSupervisor({"chain": chain_path}, workers=2) as supervisor:
            assert wait_for_ready(supervisor, 2)
            with FleetRouter(supervisor) as router:
                for index in (0, 1):
                    pid = supervisor.stats()["workers"][index].pid
                    os.kill(pid, signal.SIGKILL)
                    for _ in range(6):
                        assert router.decide(query, "chain") == want
                    # Wait for the *respawn*, not just the ready count —
                    # the dead worker stays listed until a probe notices.
                    deadline = time.monotonic() + SPAWN_TIMEOUT
                    while time.monotonic() < deadline:
                        snapshot = supervisor.stats()["workers"][index]
                        if snapshot.restarts >= 1 and snapshot.state == "ready":
                            break
                        time.sleep(0.05)
                    assert wait_for_ready(supervisor, 2)
                stats = supervisor.stats()
                assert all(s.restarts >= 1 for s in stats["workers"])
