"""Tests for the weighted satisfiability solvers."""

from itertools import combinations


from repro.circuits import (
    CNF,
    CircuitBuilder,
    Literal,
    fand,
    fnot,
    for_,
    negative_cnf_weighted_satisfiable,
    negative_pair,
    var,
    weighted_circuit_satisfiable,
    weighted_cnf_satisfiable,
    weighted_formula_satisfiable,
)


class TestWeightedCircuit:
    def make(self):
        builder = CircuitBuilder()
        xs = [builder.input(f"x{i}") for i in range(4)]
        pair = builder.and_(xs[0], xs[1])
        return builder.build(builder.or_(pair, xs[3]))

    def test_weights(self):
        c = self.make()
        assert weighted_circuit_satisfiable(c, 1) == frozenset({"x3"})
        witness2 = weighted_circuit_satisfiable(c, 2)
        assert witness2 is not None and c.evaluate(witness2)
        assert weighted_circuit_satisfiable(c, 0) is None
        assert weighted_circuit_satisfiable(c, 5) is None  # more than inputs

    def test_monotone_shortcut_still_exact(self):
        builder = CircuitBuilder()
        xs = [builder.input(f"x{i}") for i in range(3)]
        c = builder.build(builder.and_(*xs))
        assert weighted_circuit_satisfiable(c, 2) is None
        assert weighted_circuit_satisfiable(c, 3) == frozenset({"x0", "x1", "x2"})

    def test_unsatisfiable_monotone(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input("b")
        c = builder.build(builder.and_(a, b))
        assert weighted_circuit_satisfiable(c, 1) is None


class TestWeightedFormula:
    def test_weights(self):
        f = for_(fand(var("a"), var("b")), fnot(var("c")))
        # weight 0: ~c holds (c false).
        assert weighted_formula_satisfiable(f, 0) == frozenset()
        w1 = weighted_formula_satisfiable(f, 1)
        assert w1 is not None and f.evaluate(w1)
        w3 = weighted_formula_satisfiable(f, 3)
        assert w3 is not None and f.evaluate(w3)

    def test_unsatisfiable_weight(self):
        f = fand(var("a"), fnot(var("a")))
        assert weighted_formula_satisfiable(f, 0) is None
        assert weighted_formula_satisfiable(f, 1) is None


class TestWeightedCNF:
    def test_positive_clause_cnf(self):
        cnf = CNF([[Literal("a"), Literal("b")], [Literal("c")]])
        witness = weighted_cnf_satisfiable(cnf, 2)
        assert witness is not None and cnf.evaluate(witness)
        assert weighted_cnf_satisfiable(cnf, 0) is None

    def test_negative_cnf_matches_bruteforce(self):
        variables = ["v0", "v1", "v2", "v3", "v4"]
        clauses = [
            negative_pair("v0", "v1"),
            negative_pair("v1", "v2"),
            negative_pair("v3", "v4"),
        ]
        cnf = CNF(clauses, variables=variables)
        for k in range(6):
            fast = negative_cnf_weighted_satisfiable(cnf, k)
            brute = None
            for subset in combinations(variables, k):
                if cnf.evaluate(set(subset)):
                    brute = set(subset)
                    break
            assert (fast is not None) == (brute is not None), k
            if fast is not None:
                assert cnf.evaluate(fast)

    def test_declared_variables_enable_clause_free_weight(self):
        cnf = CNF([], variables=["a", "b"])
        assert negative_cnf_weighted_satisfiable(cnf, 2) == frozenset({"a", "b"})

    def test_unit_negative_clause_blocks_variable(self):
        cnf = CNF([[Literal("a", False)]], variables=["a", "b"])
        assert negative_cnf_weighted_satisfiable(cnf, 1) == frozenset({"b"})
        assert negative_cnf_weighted_satisfiable(cnf, 2) is None

    def test_groups_exactly_one_each(self):
        groups = {"g0": ("a0", "a1"), "g1": ("b0", "b1")}
        cnf = CNF(
            [
                negative_pair("a0", "a1"),
                negative_pair("b0", "b1"),
                negative_pair("a0", "b0"),
            ],
            variables=["a0", "a1", "b0", "b1"],
        )
        witness = negative_cnf_weighted_satisfiable(cnf, 2, groups=groups)
        assert witness is not None
        assert cnf.evaluate(witness)
        assert len(witness & {"a0", "a1"}) == 1
        assert len(witness & {"b0", "b1"}) == 1

    def test_groups_can_be_skipped(self):
        groups = {"g0": ("a",), "g1": ("b",), "g2": ("c",)}
        cnf = CNF([negative_pair("a", "b")], variables=["a", "b", "c"])
        witness = negative_cnf_weighted_satisfiable(cnf, 2, groups=groups)
        assert witness is not None and cnf.evaluate(witness)

    def test_wide_negative_clause(self):
        # ¬a ∨ ¬b ∨ ¬c: at most two of the three.
        cnf = CNF(
            [[Literal("a", False), Literal("b", False), Literal("c", False)]],
            variables=["a", "b", "c"],
        )
        assert negative_cnf_weighted_satisfiable(cnf, 2) is not None
        assert negative_cnf_weighted_satisfiable(cnf, 3) is None
