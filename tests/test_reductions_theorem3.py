"""Theorem 3 and §5 NP-hardness: comparisons and Hamiltonian path."""

import pytest

from repro.errors import ReductionError
from repro.evaluation import NaiveEvaluator
from repro.parametric.problems import CliqueInstance
from repro.reductions import (
    CLIQUE_TO_COMPARISONS_Q,
    CLIQUE_TO_COMPARISONS_V,
    clique_to_comparisons,
    comparison_database,
    comparison_query,
    encode,
    hamiltonian_path_query,
    hamiltonian_to_query_instance,
    has_hamiltonian_path,
)
from repro.comparisons import is_acyclic_with_comparisons
from repro.workloads.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    graph_with_hamiltonian_path,
    path_graph,
    random_graph,
)


class TestEncoding:
    def test_injective_on_tuples(self):
        n = 5
        seen = {}
        for i in range(n):
            for j in range(n):
                for b in (0, 1):
                    value = encode(i, j, b, n)
                    assert value not in seen, (i, j, b)
                    seen[value] = (i, j, b)

    def test_paper_arithmetic_identities(self):
        # For i < j mapped to clique nodes v_i < v_j: x_ji - x_ij = v_j - v_i.
        n = 7
        for vi in range(n):
            for vj in range(vi + 1, n):
                x_ij = encode(vi, vj, 0, n)
                x_ji = encode(vj, vi, 0, n)
                xp_ij = encode(vi, vj, 1, n)
                assert x_ji - x_ij == vj - vi
                assert xp_ij - x_ji == n + vi - vj
                assert x_ij < x_ji < xp_ij


class TestQueryShape:
    def test_acyclic_with_comparisons(self):
        for k in (2, 3):
            assert is_acyclic_with_comparisons(comparison_query(k))

    def test_only_strict_comparisons(self):
        q = comparison_query(3)
        assert all(c.strict for c in q.comparisons)
        assert not q.inequalities

    def test_k1_trivial(self):
        # k = 1 has one P atom and no comparisons: true iff a node exists.
        q = comparison_query(1)
        assert len(q.atoms) == 1
        naive = NaiveEvaluator()
        db = comparison_database(path_graph(3))
        assert naive.decide(q, db)
        db_empty = comparison_database(empty_graph(2))
        assert naive.decide(q, db_empty)  # self-loops make k=1 true

    def test_k0_rejected(self):
        with pytest.raises(ReductionError):
            comparison_query(0)


class TestTheorem3Verification:
    def suite(self):
        graphs = [
            complete_graph(3),
            complete_graph(4),
            cycle_graph(4),
            cycle_graph(5),
            path_graph(4),
            random_graph(5, 0.5, seed=1),
            random_graph(5, 0.7, seed=2),
            random_graph(6, 0.4, seed=3),
        ]
        return [CliqueInstance(g, k) for g in graphs for k in (2, 3)]

    def test_verified_parameter_q(self):
        records = CLIQUE_TO_COMPARISONS_Q.verify(self.suite())
        assert all(r.answers_match and r.bound_holds for r in records)

    def test_verified_parameter_v(self):
        records = CLIQUE_TO_COMPARISONS_V.verify(self.suite())
        assert all(r.parameter_out <= 2 * r.parameter_in ** 2 for r in records)

    def test_binary_relations_only(self):
        instance = clique_to_comparisons(CliqueInstance(path_graph(3), 2))
        assert instance.database["P"].arity == 2
        assert instance.database["R"].arity == 2


class TestHamiltonian:
    def test_query_is_acyclic(self):
        assert hamiltonian_path_query(5).is_acyclic()

    def test_pairwise_inequalities_count(self):
        q = hamiltonian_path_query(5)
        assert len(q.inequalities) == 10  # C(5,2)

    def test_reduction_matches_held_karp(self):
        naive = NaiveEvaluator()
        graphs = [
            path_graph(5),
            cycle_graph(5),
            complete_graph(4),
            random_graph(6, 0.3, seed=4),
            random_graph(6, 0.5, seed=5),
            empty_graph(3),
        ]
        for g in graphs:
            if g.num_nodes < 2:
                continue
            query, db = hamiltonian_to_query_instance(g)
            assert naive.decide(query, db) == has_hamiltonian_path(g), g

    def test_generator_guarantees_path(self):
        for seed in range(4):
            g = graph_with_hamiltonian_path(7, extra_p=0.1, seed=seed)
            assert has_hamiltonian_path(g)

    def test_held_karp_ground_truth(self):
        assert has_hamiltonian_path(path_graph(6))
        assert not has_hamiltonian_path(empty_graph(3))
        from repro.workloads.graphs import Graph

        star = Graph(range(4), [(0, 1), (0, 2), (0, 3)])
        assert not has_hamiltonian_path(star)

    def test_tiny_graphs(self):
        assert has_hamiltonian_path(empty_graph(1))
        with pytest.raises(ReductionError):
            hamiltonian_to_query_instance(empty_graph(1))
