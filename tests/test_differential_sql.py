"""The differential SQL oracle: engine vs sqlite3 backend on random inputs.

The strongest correctness oracle the repo has: Hypothesis generates random
acyclic/cyclic queries and mixed-type databases, runs every
(query, database) pair through the adaptive native engine AND the sqlite3
pushdown backend, and compares canonicalized answer sets across the three
pushdown channels (execute / decide / count).  Backend tables hold value-
pool codes, so agreement here proves the pool's equality semantics
(``1 == True == 1.0`` collapse, NaN identity, ``None`` as a value) survive
a round trip through an independent SQL engine — and that the native
evaluators compute the same answers an independent join implementation
does.

Canonicalization (``docs/backends.md``): backend rows decode pool codes to
pool *representatives*; native rows carry original value objects.  The two
always compare ``==``; :func:`~repro.backends.canonical_rows` maps both
onto the representative spelling so the comparison is identity-strength.

Every divergence found during development is pinned as a deterministic
seed-corpus test in :class:`TestSeedCorpus` — plus the mixed-type and NaN
edge cases the value-pool docs call out, which are exactly where a
raw-value SQL encoding would diverge (``NULL ≠ NULL``, NaN → NULL,
``1.0 == 1`` vs sqlite's type affinity).

Budget: each property runs ``REPRO_DIFF_EXAMPLES`` examples (default 40;
CI runs a dedicated leg at 120, totalling ≥ 500 generated pairs per run
across the five properties), and every pair is compared on all three
channels.
"""

import math
import os
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, QueryEngine, Relation, SqliteBackend
from repro.backends import canonical_rows
from repro.errors import QueryError
from repro.query.atoms import Atom, Inequality
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import C, V
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads import (
    chain_database,
    cycle_query,
    random_acyclic_query,
    random_database,
)

EXAMPLES = int(os.environ.get("REPRO_DIFF_EXAMPLES", "40"))
SETTINGS = settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

# Shared for the whole module: warm plan/table caches are the production
# shape, and the backend's loaded tables are evicted as databases die.
ENGINE = QueryEngine(max_workers=1)
BACKEND = SqliteBackend()

#: One NaN *object*: pool semantics are identity-then-equality, so the
#: same object must be used database- and query-side to mean "this NaN".
NAN = float("nan")

#: Mixed-type domain exercising every equality pitfall at once: bool/int/
#: float collapse, numeric strings vs numbers, empty string, negative
#: zero (== 0), None as a value, a composite value, and NaN.
MIXED_VALUES = (0, 1, True, 1.0, 2, -1, 7.5, "1", "a", "", -0.0, None, (1, 2), NAN)


def assert_agree(query, database):
    """Engine and backend agree on execute/decide/count for this pair."""
    expected = ENGINE.execute(query, database)
    actual = BACKEND.execute(query, database)
    assert actual.attributes == expected.attributes
    # Value equality first (the pool invariant makes the raw frozensets
    # compare equal), then identity-strength canonical spelling.
    assert actual.rows == expected.rows
    assert canonical_rows(actual.rows) == canonical_rows(expected.rows)
    assert BACKEND.decide(query, database) == ENGINE.decide(query, database)
    count = BACKEND.count(query, database)
    assert count == ENGINE.count(query, database)
    assert count == expected.cardinality
    return expected


# ----------------------------------------------------------------------
# Generator-driven properties (structured workloads)
# ----------------------------------------------------------------------


def acyclic_case(seed: int, head_arity: int, inequalities: int = 0):
    rng = random.Random(seed)
    query = random_acyclic_query(
        num_atoms=rng.randint(1, 4),
        max_arity=3,
        num_inequalities=inequalities,
        seed=seed,
        head_arity=head_arity,
    )
    schema = DatabaseSchema(
        RelationSchema(atom.relation, atom.arity) for atom in query.atoms
    )
    return query, random_database(schema, 5, 30, seed=seed)


class TestGeneratedWorkloads:
    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(0, 3))
    def test_random_acyclic(self, seed, head_arity):
        assert_agree(*acyclic_case(seed, head_arity))

    @SETTINGS
    @given(st.integers(0, 10_000), st.integers(0, 2), st.integers(1, 3))
    def test_random_acyclic_with_inequalities(self, seed, head_arity, ineqs):
        assert_agree(*acyclic_case(seed, head_arity, inequalities=ineqs))

    @SETTINGS
    @given(st.integers(2, 4), st.integers(0, 1_000))
    def test_cyclic_on_chain_graphs(self, length, seed):
        query = cycle_query(length)
        database = chain_database(4, 5, 0.4, seed=seed)
        assert_agree(query, database)


# ----------------------------------------------------------------------
# Fully random mixed-type pairs (the bug-hunt strategy)
# ----------------------------------------------------------------------

_mixed_value = st.sampled_from(MIXED_VALUES)


@st.composite
def mixed_pairs(draw):
    """A random (query, database) pair over mixed-type relations.

    Queries may be cyclic (atoms share variables freely), boolean-headed,
    constant-headed, self-joining, and inequality-bearing — everything
    inside the pushdown fragment.
    """
    relation_count = draw(st.integers(1, 3))
    arities = [draw(st.integers(1, 3)) for _ in range(relation_count)]
    names = [f"R{i}" for i in range(relation_count)]
    relations = {}
    for name, arity in zip(names, arities):
        row_count = draw(st.integers(0, 8))
        rows = [
            tuple(draw(_mixed_value) for _ in range(arity))
            for _ in range(row_count)
        ]
        relations[name] = Relation.from_rows(
            tuple(f"c{k}" for k in range(arity)), rows
        )
    database = Database(relations)

    variables = [V(f"v{k}") for k in range(4)]
    atom_count = draw(st.integers(1, 3))
    atoms = []
    for _ in range(atom_count):
        which = draw(st.integers(0, relation_count - 1))
        terms = tuple(
            draw(st.one_of(st.sampled_from(variables), _mixed_value.map(C)))
            for _ in range(arities[which])
        )
        atoms.append(Atom(names[which], terms))

    body_vars = sorted(
        {v for atom in atoms for v in atom.variables()}, key=lambda v: v.name
    )
    head = (
        tuple(draw(st.lists(st.sampled_from(body_vars), max_size=3)))
        if body_vars
        else ()
    )
    inequalities = []
    for _ in range(draw(st.integers(0, 2)) if body_vars else 0):
        left = draw(st.sampled_from(body_vars))
        right = draw(st.one_of(st.sampled_from(body_vars), _mixed_value.map(C)))
        try:
            inequalities.append(Inequality(left, right))
        except QueryError:
            pass  # trivially-equal sides; just draw fewer inequalities
    query = ConjunctiveQuery(head, atoms, inequalities=inequalities)
    return query, database


class TestMixedTypePairs:
    @SETTINGS
    @given(mixed_pairs())
    def test_random_mixed_pairs(self, pair):
        assert_agree(*pair)

    @SETTINGS
    @given(mixed_pairs())
    def test_random_mixed_pairs_second_sweep(self, pair):
        # A second independent sweep doubles the pair budget without
        # raising per-test example counts past Hypothesis's comfort zone.
        assert_agree(*pair)


# ----------------------------------------------------------------------
# Seed corpus: deterministic, minimized edge cases (pinned forever)
# ----------------------------------------------------------------------


class TestSeedCorpus:
    def test_mixed_type_collapse(self):
        """1/True/1.0 are ONE value: one answer row, count 1 — on both
        sides, whatever spelling each side picks."""
        database = Database(
            {"R": Relation.from_rows(("a",), [(1,), (True,), (1.0,)])}
        )
        query = ConjunctiveQuery((V("x"),), [Atom("R", (V("x"),))])
        result = assert_agree(query, database)
        assert result.cardinality == 1
        assert BACKEND.count(query, database) == 1

    def test_mixed_type_join_across_relations(self):
        """True joins 1 joins 1.0 across relations (one pool code)."""
        database = Database(
            {
                "R": Relation.from_rows(("a",), [(True,), (2,)]),
                "S": Relation.from_rows(("a",), [(1.0,), (3,)]),
            }
        )
        query = ConjunctiveQuery(
            (V("x"),), [Atom("R", (V("x"),)), Atom("S", (V("x"),))]
        )
        result = assert_agree(query, database)
        assert result.cardinality == 1
        (row,) = result.rows
        assert row[0] == 1

    def test_numeric_string_does_not_join_number(self):
        """"1" and 1 are different values (frozenset semantics, not SQL
        affinity) — a raw-value encoding under sqlite could conflate."""
        database = Database(
            {
                "R": Relation.from_rows(("a",), [("1",)]),
                "S": Relation.from_rows(("a",), [(1,)]),
            }
        )
        query = ConjunctiveQuery(
            (V("x"),), [Atom("R", (V("x"),)), Atom("S", (V("x"),))]
        )
        result = assert_agree(query, database)
        assert result.cardinality == 0

    def test_nan_identity_semantics(self):
        """One NaN object equals itself; distinct NaN objects differ —
        dict/frozenset semantics, reproduced through codes (a raw-float
        SQL encoding would turn NaN into NULL and lose both)."""
        other_nan = float("nan")
        database = Database(
            {"T": Relation.from_rows(("a", "b"), [(NAN, 1), (NAN, 2), (other_nan, 3)])}
        )
        self_join = ConjunctiveQuery(
            (V("y"), V("z")),
            [Atom("T", (V("x"), V("y"))), Atom("T", (V("x"), V("z")))],
        )
        result = assert_agree(self_join, database)
        assert result.rows == frozenset(
            {(1, 1), (1, 2), (2, 1), (2, 2), (3, 3)}
        )
        # Probing with the SAME NaN object finds its rows; a FRESH NaN
        # object is a different value and finds nothing.
        probe_same = ConjunctiveQuery((V("y"),), [Atom("T", (C(NAN), V("y")))])
        assert assert_agree(probe_same, database).rows == frozenset({(1,), (2,)})
        probe_fresh = ConjunctiveQuery(
            (V("y"),), [Atom("T", (C(float("nan")), V("y")))]
        )
        assert assert_agree(probe_fresh, database).rows == frozenset()

    def test_repeated_variable_keeps_nan_rows(self):
        """Divergence found by this harness: ``R(x, x)`` dropped a
        ``(nan, nan)`` row natively (bare ``!=`` is non-reflexive on NaN)
        while the backend kept it (code equality).  Fixed by routing every
        linear-scan comparison through ``values_equal`` (identity-then-
        equality, the pool's semantics)."""
        database = Database(
            {"R": Relation.from_rows(("a", "b"), [(NAN, NAN), (1, 1), (1, 2)])}
        )
        query = ConjunctiveQuery((V("x"),), [Atom("R", (V("x"), V("x")))])
        result = assert_agree(query, database)
        assert result.cardinality == 2
        assert (1,) in result.rows

    def test_constant_probe_finds_nan_rows(self):
        """Divergence found by this harness: probing with the same NaN
        object returned rows from the backend but nothing natively."""
        database = Database(
            {"T": Relation.from_rows(("a", "b"), [(NAN, 1), (NAN, 2)])}
        )
        query = ConjunctiveQuery((V("y"),), [Atom("T", (C(NAN), V("y")))])
        assert assert_agree(query, database).rows == frozenset({(1,), (2,)})

    def test_inequality_against_nan_constant(self):
        """x ≠ NaN excludes rows holding that same NaN object (they share
        its pool code); a fresh NaN object excludes nothing."""
        database = Database(
            {"R": Relation.from_rows(("a",), [(NAN,), (1,), (2,)])}
        )
        same = ConjunctiveQuery(
            (V("x"),),
            [Atom("R", (V("x"),))],
            inequalities=[Inequality(V("x"), C(NAN))],
        )
        assert assert_agree(same, database).cardinality == 2
        fresh = ConjunctiveQuery(
            (V("x"),),
            [Atom("R", (V("x"),))],
            inequalities=[Inequality(V("x"), C(float("nan")))],
        )
        assert assert_agree(fresh, database).cardinality == 3

    def test_variable_inequality_keeps_nan_pairs_equal(self):
        """x ≠ y must treat two copies of the same NaN object as equal
        (one code), so the (NaN, NaN) row is excluded on both sides."""
        database = Database(
            {"R": Relation.from_rows(("a", "b"), [(NAN, NAN), (NAN, 1)])}
        )
        query = ConjunctiveQuery(
            (V("x"), V("y")),
            [Atom("R", (V("x"), V("y")))],
            inequalities=[Inequality(V("x"), V("y"))],
        )
        result = assert_agree(query, database)
        assert result.cardinality == 1

    def test_negative_zero_collapses_with_zero(self):
        database = Database(
            {"R": Relation.from_rows(("a",), [(0,), (-0.0,), (False,)])}
        )
        query = ConjunctiveQuery((V("x"),), [Atom("R", (V("x"),))])
        assert assert_agree(query, database).cardinality == 1

    def test_none_is_a_value_not_null(self):
        """None joins None — no SQL NULL ≠ NULL surprise through codes."""
        database = Database(
            {
                "R": Relation.from_rows(("a", "b"), [(None, 1), (2, 3)]),
                "S": Relation.from_rows(("a",), [(None,)]),
            }
        )
        query = ConjunctiveQuery(
            (V("y"),), [Atom("R", (V("x"), V("y"))), Atom("S", (V("x"),))]
        )
        assert assert_agree(query, database).rows == frozenset({(1,)})

    def test_composite_and_huge_values(self):
        """Tuples and >64-bit integers are codes like anything else (a
        raw-value encoding would overflow sqlite's INTEGER)."""
        big = 2**80
        database = Database(
            {"R": Relation.from_rows(("a", "b"), [((1, 2), big), ((3, 4), 5)])}
        )
        query = ConjunctiveQuery((V("y"),), [Atom("R", (C((1, 2)), V("y")))])
        assert assert_agree(query, database).rows == frozenset({(big,)})

    def test_self_join_repeated_variable(self):
        database = Database(
            {"R": Relation.from_rows(("a", "b"), [(1, 1), (1, 2), (3, 3)])}
        )
        query = ConjunctiveQuery((V("x"),), [Atom("R", (V("x"), V("x")))])
        assert assert_agree(query, database).rows == frozenset({(1,), (3,)})

    def test_boolean_heads_both_ways(self):
        database = Database({"R": Relation.from_rows(("a",), [(1,)])})
        yes = ConjunctiveQuery((), [Atom("R", (C(1),))])
        no = ConjunctiveQuery((), [Atom("R", (C(2),))])
        assert assert_agree(yes, database).rows == frozenset({()})
        assert assert_agree(no, database).rows == frozenset()
        assert BACKEND.count(yes, database) == 1
        assert BACKEND.count(no, database) == 0

    def test_constant_and_duplicate_head_terms(self):
        database = Database(
            {"R": Relation.from_rows(("a", "b"), [(1, 2), (3, 4)])}
        )
        query = ConjunctiveQuery(
            (V("x"), C("tag"), V("x")), [Atom("R", (V("x"), V("y")))]
        )
        result = assert_agree(query, database)
        assert result.attributes == ("o0", "o1", "o2")
        assert result.rows == frozenset({(1, "tag", 1), (3, "tag", 3)})

    def test_inequality_with_never_interned_constant(self):
        """x != c where c appears nowhere: true for every row (the bind
        path interns c fresh; no stored code can equal the new code)."""
        database = Database(
            {"R": Relation.from_rows(("a",), [(10,), (20,)])}
        )
        query = ConjunctiveQuery(
            (V("x"),),
            [Atom("R", (V("x"),))],
            inequalities=[Inequality(V("x"), C("no-such-value-ever"))],
        )
        assert assert_agree(query, database).cardinality == 2

    def test_inequality_mixed_type_collapse(self):
        """x != True excludes 1 and 1.0 too (one equality class)."""
        database = Database(
            {"R": Relation.from_rows(("a",), [(1,), (1.0,), (2,)])}
        )
        query = ConjunctiveQuery(
            (V("x"),),
            [Atom("R", (V("x"),))],
            inequalities=[Inequality(V("x"), C(True))],
        )
        assert assert_agree(query, database).rows == frozenset({(2,)})

    def test_empty_relation_everywhere(self):
        database = Database(
            {
                "R": Relation.from_rows(("a", "b")),
                "S": Relation.from_rows(("a",), [(1,)]),
            }
        )
        query = ConjunctiveQuery(
            (V("x"),), [Atom("R", (V("x"), V("y"))), Atom("S", (V("x"),))]
        )
        result = assert_agree(query, database)
        assert result.rows == frozenset()
        assert BACKEND.decide(query, database) is False

    def test_cartesian_product_no_shared_variables(self):
        database = Database(
            {
                "R": Relation.from_rows(("a",), [(1,), (2,)]),
                "S": Relation.from_rows(("a",), [("x",), ("y",)]),
            }
        )
        query = ConjunctiveQuery(
            (V("x"), V("y")), [Atom("R", (V("x"),)), Atom("S", (V("y"),))]
        )
        assert assert_agree(query, database).cardinality == 4

    def test_triangle_query_cyclic(self):
        database = Database(
            {
                "E": Relation.from_rows(
                    ("a", "b"), [(1, 2), (2, 3), (3, 1), (3, 4)]
                )
            }
        )
        query = cycle_query(3)
        assert assert_agree(query, database).rows == frozenset({()})

    def test_canonical_spelling_is_identical_not_just_equal(self):
        """The documented contract: after canonicalization, engine and
        backend rows are the same objects spelled the same way."""
        database = Database(
            {"R": Relation.from_rows(("a",), [(True,), (2.0,)])}
        )
        query = ConjunctiveQuery((V("x"),), [Atom("R", (V("x"),))])
        native = canonical_rows(ENGINE.execute(query, database).rows)
        pushed = canonical_rows(BACKEND.execute(query, database).rows)
        for native_row, pushed_row in zip(sorted(native, key=repr), sorted(pushed, key=repr)):
            for left, right in zip(native_row, pushed_row):
                assert left is right or (
                    isinstance(left, float) and math.isnan(left)
                ) is False


class TestEngineIntegration:
    """The same oracle through ``QueryEngine(backend=...)``: whichever arm
    the arbiter picks per call, answers must not change."""

    def test_answers_stable_across_arbitration(self):
        query, database = acyclic_case(7, 2)
        backend = SqliteBackend()
        with QueryEngine(max_workers=1, backend=backend) as engine:
            expected = ENGINE.execute(query, database)
            for _ in range(12):  # covers explore (both arms) + exploit
                assert engine.execute(query, database) == expected
                assert engine.decide(query, database) == bool(expected.rows)
                assert engine.count(query, database) == expected.cardinality
            stats = engine.pushdown_stats()
            assert stats, "arbiter should have observations"
            assert any(
                info["backend_samples"] > 0 for info in stats.values()
            ), "the backend arm must have been explored"
        backend.close()

    def test_explain_shows_pushdown_decision_and_sql(self):
        query, database = acyclic_case(3, 1)
        backend = SqliteBackend()
        with QueryEngine(max_workers=1, backend=backend) as engine:
            engine.execute(query, database)
            rendering = engine.explain(query, database)
        backend.close()
        assert "pushdown : sqlite eligible" in rendering
        assert "SELECT DISTINCT" in rendering

    def test_ineligible_shapes_fall_back_natively(self):
        from repro.query.atoms import Comparison

        database = Database(
            {"R": Relation.from_rows(("a", "b"), [(1, 2), (2, 1)])}
        )
        query = ConjunctiveQuery(
            (V("x"),),
            [Atom("R", (V("x"), V("y")))],
            comparisons=[Comparison(V("x"), V("y"))],
        )
        backend = SqliteBackend()
        with QueryEngine(max_workers=1, backend=backend) as engine:
            result = engine.execute(query, database)
            assert result.rows == frozenset({(1,)})
            rendering = engine.explain(query, database)
        backend.close()
        assert "ineligible" in rendering


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
