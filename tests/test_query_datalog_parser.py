"""Tests for Datalog programs and the rule-notation parser."""

import pytest

from repro.errors import ParseError, QueryError
from repro.query import (
    Atom,
    C,
    DatalogProgram,
    Inequality,
    Rule,
    V,
    parse_program,
    parse_query,
)
from repro.query.atoms import Comparison


class TestParserTerms:
    def test_lowercase_is_variable(self):
        q = parse_query("Q(x) :- R(x, y).")
        assert q.head_terms == (V("x"),)

    def test_numbers_and_strings_are_constants(self):
        q = parse_query("Q(x) :- R(x, 3, 'CS'), R(x, -2, 'x').")
        constants = {c.value for a in q.atoms for c in a.constants()}
        assert constants == {3, "CS", -2, "x"}

    def test_zero_ary_atom(self):
        q = parse_query("P() :- R(x, y).")
        assert q.head_terms == ()
        q2 = parse_query("P() :- G(x, y), T().")
        assert q2.atoms[1].arity == 0

    def test_inequality_and_comparisons(self):
        q = parse_query("Q(x) :- R(x, y), x != y, x < 3, y <= x.")
        assert q.inequalities == (Inequality("x", "y"),)
        assert Comparison(V("x"), C(3), strict=True) in q.comparisons
        assert Comparison(V("y"), V("x"), strict=False) in q.comparisons

    def test_trailing_period_optional(self):
        assert parse_query("Q(x) :- R(x, y)") == parse_query("Q(x) :- R(x, y).")


class TestParserErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- R(x, y) % nonsense.")

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) R(x, y).")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- R(x, y). extra")

    def test_comparison_in_datalog_rejected(self):
        with pytest.raises(ParseError):
            parse_program("T(x) :- E(x, y), x != y.")

    def test_unterminated_atom(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- R(x, y.")


class TestRules:
    def test_unsafe_rule_rejected(self):
        with pytest.raises(QueryError):
            Rule(Atom.of("T", "x", "w"), (Atom.of("E", "x", "y"),))

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            Rule(Atom.of("T", "x"), ())

    def test_rule_variables(self):
        rule = Rule(Atom.of("T", "x"), (Atom.of("E", "x", "y"),))
        assert rule.num_variables() == 2


class TestDatalogProgram:
    def transitive(self) -> DatalogProgram:
        return parse_program(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- E(x, z), T(z, y).
            """
        )

    def test_idb_edb_split(self):
        program = self.transitive()
        assert program.idb_names() == frozenset({"T"})
        assert program.edb_names() == frozenset({"E"})

    def test_goal_defaults_to_first_head(self):
        assert self.transitive().goal == "T"

    def test_goal_must_be_idb(self):
        with pytest.raises(QueryError):
            parse_program("T(x) :- E(x, y).", goal="E")

    def test_arity_consistency_enforced(self):
        with pytest.raises(QueryError):
            parse_program("T(x) :- E(x, y). T(x, y) :- E(x, y).")

    def test_max_arity_and_sizes(self):
        program = self.transitive()
        assert program.max_arity() == 2
        assert program.max_rule_variables() == 3
        assert program.query_size() > 0

    def test_rules_for(self):
        assert len(self.transitive().rules_for("T")) == 2
