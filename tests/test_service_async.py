"""Concurrency stress tests: many async clients, one shared engine.

The acceptance contract of the service front-end: ≥ 32 concurrent clients
multiplex onto one ``QueryEngine`` with results identical to sequential
``QueryEngine(parallel=False)`` execution, no plan-cache corruption, and a
stats ledger whose totals are consistent with the request count.  Plus the
front-end's own semantics: single-flight coalescing (N identical in-flight
queries → one plan, one execution), micro-batching of same-shape floods
into N-wide lifted executions, bounded-queue backpressure, and error
propagation to every coalesced caller.
"""

import asyncio
import random
import threading

import pytest

from repro import QueryEngine, QueryService, parse_query
from repro.engine import PlanCache
from repro.errors import SchemaError
from repro.operations import DECIDE, EXECUTE, operations_of
from repro.workloads import chain_database, path_query, star_database, star_query

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def chain_db():
    return chain_database(layers=5, width=32, p=0.3, seed=11)


@pytest.fixture(scope="module")
def star_db():
    return star_database(3, 120, seed=5)


def _mixed_workload(chain_db, star_db, clients, per_client):
    """Per client, a list of (query, database) mixing shapes and constants."""
    rng = random.Random(17)
    chain_starts = sorted({row[0] for row in chain_db["E"].rows})
    hubs = sorted({row[0] for row in star_db["A1"].rows})
    path3, path4 = path_query(3, head_arity=1), path_query(4, head_arity=1)
    star3 = star_query(3)
    workload = []
    for _ in range(clients):
        requests = []
        for _ in range(per_client):
            shape = rng.randrange(4)
            if shape == 0:
                requests.append((path3, chain_db))
            elif shape == 1:
                value = rng.choice(chain_starts)
                requests.append((path4.decision_instance((value,)), chain_db))
            elif shape == 2:
                hub = rng.choice(hubs + [99_999])
                requests.append((star3.decision_instance((hub,)), star_db))
            else:
                requests.append((star3, star_db))
        workload.append(requests)
    return workload


class TestStress:
    def test_32_clients_mixed_shapes_match_sequential(self, chain_db, star_db):
        clients, per_client = 32, 6
        workload = _mixed_workload(chain_db, star_db, clients, per_client)
        sequential = QueryEngine(parallel=False)
        reference = [
            [sequential.execute(query, db) for query, db in requests]
            for requests in workload
        ]

        async def client(service, requests):
            return [await service.execute(query, db) for query, db in requests]

        async def main():
            async with QueryService(batch_window=0.002) as service:
                results = await asyncio.gather(
                    *(client(service, requests) for requests in workload)
                )
                stats = await service.stats()
            return results, stats

        results, stats = asyncio.run(main())
        for got_list, want_list in zip(results, reference):
            for got, want in zip(got_list, want_list):
                assert got == want
                assert got.rows == want.rows  # identical down to the rows
        counters = stats.service
        assert counters.requests == clients * per_client
        assert counters.failed == 0
        assert counters.completed == counters.submitted
        cache = stats.engine.cache
        assert cache.size <= cache.capacity

    def test_ledger_totals_consistent_with_request_count(self, chain_db):
        """No batching, no duplicates: every request is one recorded
        execution — the ledger's totals must agree exactly."""
        clients, per_client = 32, 4
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})
        assert len(starts) >= clients * per_client
        instances = [
            query.decision_instance((value,))
            for value in starts[: clients * per_client]
        ]

        async def main():
            async with QueryService(batch_window=0.0) as service:
                chunks = [
                    instances[i * per_client : (i + 1) * per_client]
                    for i in range(clients)
                ]

                async def client(chunk):
                    return [await service.execute(q, chain_db) for q in chunk]

                await asyncio.gather(*(client(chunk) for chunk in chunks))
                return await service.stats()

        stats = asyncio.run(main())
        assert stats.service.coalesced == 0
        assert stats.engine.executions == clients * per_client
        assert stats.service.completed == clients * per_client
        # One shape, planned once, shared by every client.
        assert stats.engine.cache.misses == 1
        assert stats.engine.cache.hits == clients * per_client - 1

    def test_concurrent_decides_match_sequential(self, star_db):
        query = star_query(3)
        hubs = sorted({row[0] for row in star_db["A1"].rows})[:40]
        candidates = hubs + [77_777, 88_888]
        instances = [query.decision_instance((hub,)) for hub in candidates]
        sequential = QueryEngine(parallel=False)
        reference = [sequential.decide(q, star_db) for q in instances]

        async def main():
            async with QueryService(batch_window=0.01) as service:
                return await asyncio.gather(
                    *(service.decide(q, star_db) for q in instances)
                )

        assert list(asyncio.run(main())) == reference


class TestSingleFlight:
    def test_identical_queries_one_plan_one_execution(self, chain_db):
        """The CI coalescing contract: N identical concurrent queries →
        1 plan-cache miss, 1 engine execution, N identical results."""
        n = 32
        query = path_query(4, head_arity=1)

        async def main():
            async with QueryService(batch_window=0.0) as service:
                results = await asyncio.gather(
                    *(service.execute(query, chain_db) for _ in range(n))
                )
                return results, await service.stats()

        results, stats = asyncio.run(main())
        assert all(result == results[0] for result in results)
        assert stats.service.coalesced == n - 1
        assert stats.service.submitted == 1
        assert stats.engine.executions == 1
        assert stats.engine.cache.misses == 1

    def test_distinct_queries_do_not_coalesce(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:8]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            async with QueryService(batch_window=0.0) as service:
                await asyncio.gather(
                    *(service.execute(q, chain_db) for q in instances)
                )
                return await service.stats()

        stats = asyncio.run(main())
        assert stats.service.coalesced == 0
        assert stats.engine.executions == len(instances)

    @pytest.mark.parametrize("window", [0.0, 0.01])
    def test_error_propagates_to_every_coalesced_caller(self, chain_db, window):
        """Both failure sites — admission (the shape key is computed
        before enqueue when the window is open) and execution — must
        complete the shared future; neither may leave coalesced callers
        hanging."""
        bad = parse_query("Q(x) :- NoSuchRelation(x, y).")

        async def main():
            async with QueryService(batch_window=window) as service:
                return await asyncio.wait_for(
                    asyncio.gather(
                        *(service.execute(bad, chain_db) for _ in range(6)),
                        return_exceptions=True,
                    ),
                    timeout=10,
                )

        outcomes = asyncio.run(main())
        assert len(outcomes) == 6
        assert all(isinstance(outcome, SchemaError) for outcome in outcomes)


class TestMicroBatching:
    def test_same_shape_flood_collapses_into_groups(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:48]
        instances = [query.decision_instance((value,)) for value in starts]
        sequential = QueryEngine(parallel=False)
        reference = [sequential.execute(q, chain_db) for q in instances]

        async def main():
            async with QueryService(batch_window=0.05) as service:
                results = await asyncio.gather(
                    *(service.execute(q, chain_db) for q in instances)
                )
                return results, await service.stats()

        results, stats = asyncio.run(main())
        assert list(results) == reference
        # The flood rode a handful of groups, not 48 single dispatches.
        assert stats.service.groups < len(instances)
        assert stats.service.max_group > 1
        assert stats.service.batched > 0

    def test_batch_limit_flushes_early(self, chain_db):
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:20]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            async with QueryService(
                batch_window=0.2, batch_limit=8
            ) as service:
                results = await asyncio.gather(
                    *(service.execute(q, chain_db) for q in instances)
                )
                return results, await service.stats()

        results, stats = asyncio.run(main())
        assert stats.service.max_group <= 8
        sequential = QueryEngine(parallel=False)
        for got, instance in zip(results, instances):
            assert got == sequential.execute(instance, chain_db)

    def test_window_zero_disables_batching(self, chain_db):
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:10]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            async with QueryService(batch_window=0.0) as service:
                await asyncio.gather(
                    *(service.execute(q, chain_db) for q in instances)
                )
                return await service.stats()

        stats = asyncio.run(main())
        assert stats.service.batched == 0
        assert stats.service.max_group == 1

    def test_decide_flood_routes_through_decision_lifting(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:32]
        candidates = starts + [999_999]
        instances = [query.decision_instance((value,)) for value in candidates]
        sequential = QueryEngine(parallel=False)
        reference = [sequential.decide(q, chain_db) for q in instances]

        async def main():
            async with QueryService(batch_window=0.05) as service:
                decisions = await asyncio.gather(
                    *(service.decide(q, chain_db) for q in instances)
                )
                return decisions, await service.stats()

        decisions, stats = asyncio.run(main())
        assert list(decisions) == reference
        assert stats.service.max_group > 1


class TestFacade:
    def test_explicit_batches_and_explain(self, chain_db):
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:12]
        instances = [query.decision_instance((value,)) for value in starts]
        sequential = QueryEngine(parallel=False)

        async def main():
            async with QueryService() as service:
                results = await service.run_batch(operations_of(EXECUTE, instances), chain_db)
                decisions = await service.run_batch(operations_of(DECIDE, instances), chain_db)
                rendering = await service.explain(query, chain_db)
                empty = await service.run_batch(operations_of(EXECUTE, []), chain_db)
                return results, decisions, rendering, empty

        results, decisions, rendering, empty = asyncio.run(main())
        assert results == [sequential.execute(q, chain_db) for q in instances]
        assert decisions == [sequential.decide(q, chain_db) for q in instances]
        assert "QueryPlan" in rendering and "evaluator" in rendering
        assert empty == []

    def test_injected_engine_is_shared_and_not_closed(self, chain_db):
        engine = QueryEngine(parallel=False)
        query = path_query(3, head_arity=1)

        async def main():
            async with QueryService(engine) as service:
                await service.execute(query, chain_db)

        asyncio.run(main())
        # The injected engine survives service shutdown and kept the work.
        assert engine.stats().executions == 1
        assert engine.execute(query, chain_db) is not None

    def test_engine_kwargs_conflict_rejected(self):
        with pytest.raises(ValueError):
            QueryService(QueryEngine(), parallel=False)

    def test_dispatch_pool_is_separate_from_engine_pool(self, chain_db):
        """Dispatch must not run as tasks *of the engine's pool* — that
        would trip its re-entrancy guard and silently serialize every
        sharded intra-query fan-out beneath the service."""
        engine = QueryEngine()
        query = path_query(3, head_arity=1)

        async def main():
            async with QueryService(engine) as service:
                await service.execute(query, chain_db)
                assert service._pool is not engine.pool

        asyncio.run(main())
        engine.close()

    def test_bounded_queue_backpressure_still_completes(self, chain_db):
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:24]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            async with QueryService(
                batch_window=0.0, max_pending=1, dispatchers=1
            ) as service:
                results = await asyncio.gather(
                    *(service.execute(q, chain_db) for q in instances)
                )
                return results, await service.stats()

        results, stats = asyncio.run(main())
        assert stats.service.completed == len(instances)
        sequential = QueryEngine(parallel=False)
        assert list(results) == [
            sequential.execute(q, chain_db) for q in instances
        ]

    def test_closed_service_rejects_new_requests(self, chain_db):
        query = path_query(3, head_arity=1)

        async def main():
            service = QueryService()
            await service.execute(query, chain_db)
            await service.aclose()
            await service.aclose()  # idempotent
            with pytest.raises(RuntimeError):
                await service.execute(query, chain_db)

        asyncio.run(main())

    def test_pending_work_completes_through_aclose(self, chain_db):
        """Requests still collecting in a batch window when aclose runs
        are flushed and answered, never stranded."""
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:6]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            service = QueryService(batch_window=5.0)  # would wait 5 s
            tasks = [
                asyncio.ensure_future(service.execute(q, chain_db))
                for q in instances
            ]
            await asyncio.sleep(0.05)  # all collecting, none dispatched
            await service.aclose()
            return await asyncio.gather(*tasks)

        results = asyncio.run(main())
        sequential = QueryEngine(parallel=False)
        assert list(results) == [
            sequential.execute(q, chain_db) for q in instances
        ]


class TestCancellation:
    def test_cancelled_originator_does_not_strand_coalesced(self, chain_db):
        """The in-flight entry outlives its originating caller: a
        coalesced waiter still completes after the originator cancels."""
        query = path_query(4, head_arity=1)

        async def main():
            async with QueryService(batch_window=0.0) as service:
                first = asyncio.ensure_future(service.execute(query, chain_db))
                await asyncio.sleep(0)  # originator registers in flight
                second = asyncio.ensure_future(service.execute(query, chain_db))
                await asyncio.sleep(0)
                first.cancel()
                result = await second
                stats = await service.stats()
                return result, stats

        result, stats = asyncio.run(main())
        assert result == QueryEngine(parallel=False).execute(query, chain_db)
        assert stats.service.coalesced == 1

    def test_cancelled_caller_mid_backpressure_loses_nothing(self, chain_db):
        """Cancelling a caller awaiting queue admission must not lose its
        group: the enqueue is service-owned and completes anyway."""
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:12]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            async with QueryService(
                batch_window=0.0, max_pending=1, dispatchers=1
            ) as service:
                tasks = [
                    asyncio.ensure_future(service.execute(q, chain_db))
                    for q in instances
                ]
                await asyncio.sleep(0.005)
                tasks[-1].cancel()
                return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = asyncio.run(main())
        sequential = QueryEngine(parallel=False)
        completed = 0
        for instance, outcome in zip(instances, outcomes):
            if isinstance(outcome, asyncio.CancelledError):
                continue
            assert outcome == sequential.execute(instance, chain_db)
            completed += 1
        assert completed >= len(instances) - 1

    def test_cancelled_member_does_not_strand_batch(self, chain_db):
        """Cancelling one member of a collecting micro-batch leaves the
        rest of the group intact and correctly answered."""
        query = path_query(3, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:6]
        instances = [query.decision_instance((value,)) for value in starts]

        async def main():
            async with QueryService(batch_window=0.05) as service:
                tasks = [
                    asyncio.ensure_future(service.execute(q, chain_db))
                    for q in instances
                ]
                await asyncio.sleep(0.01)  # all collecting, none flushed
                tasks[2].cancel()
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                # No dead flushed groups may linger in the collector map.
                assert service._collecting == {}
                return outcomes

        outcomes = asyncio.run(main())
        sequential = QueryEngine(parallel=False)
        for position, (instance, outcome) in enumerate(zip(instances, outcomes)):
            if position == 2:
                assert isinstance(outcome, asyncio.CancelledError)
            else:
                assert outcome == sequential.execute(instance, chain_db)


class TestEngineThreadSafety:
    def test_plan_cache_hammered_from_threads(self):
        cache = PlanCache(capacity=16)
        errors = []
        operations = 400

        def worker(seed):
            rng = random.Random(seed)
            try:
                for i in range(operations):
                    key = ("shape", rng.randrange(48))
                    if cache.get(key) is None:
                        cache.put(key, ("plan", key))
                    if i % 97 == 0:
                        cache.invalidate(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats
        assert len(cache) <= 16
        assert stats.size <= stats.capacity
        assert stats.hits + stats.misses == 8 * operations

    def test_shared_engine_from_raw_threads(self, chain_db):
        """Below the asyncio layer: the engine itself is thread-safe."""
        engine = QueryEngine()
        query = path_query(4, head_arity=1)
        starts = sorted({row[0] for row in chain_db["E"].rows})[:32]
        sequential = QueryEngine(parallel=False)
        reference = {
            value: sequential.execute(
                query.decision_instance((value,)), chain_db
            )
            for value in starts
        }
        mismatches = []

        def worker(values):
            for value in values:
                got = engine.execute(query.decision_instance((value,)), chain_db)
                if got != reference[value]:
                    mismatches.append(value)

        threads = [
            threading.Thread(target=worker, args=(starts[i::4],))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert mismatches == []
        stats = engine.stats()
        assert stats.executions == len(starts)
        engine.close()
