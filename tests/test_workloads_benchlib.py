"""Tests for workload generators and the benchmark harness utilities."""

import pytest

from repro.benchlib import (
    growth_exponent,
    render_series,
    render_table,
    speedup,
    sweep,
    time_thunk,
)
from repro.hypergraph import JoinTree
from repro.workloads import (
    Graph,
    GraphError,
    chain_database,
    complete_graph,
    cycle_graph,
    cycle_query,
    empty_graph,
    graph_suite,
    grid_graph,
    path_graph,
    path_neq_query,
    path_query,
    planted_clique_graph,
    random_acyclic_query,
    random_database,
    random_graph,
    star_database,
    star_query,
)
from repro.relational.schema import DatabaseSchema


class TestGraph:
    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph([1], [(1, 1)])

    def test_edge_outside_nodes_rejected(self):
        with pytest.raises(GraphError):
            Graph([1, 2], [(1, 3)])

    def test_degree_neighbours(self):
        g = path_graph(3)
        assert g.degree(1) == 2
        assert g.neighbours(0) == frozenset({1})

    def test_edges_each_once(self):
        g = complete_graph(4)
        assert len(list(g.edges())) == 6
        assert len(list(g.directed_edges())) == 12

    def test_is_clique(self):
        g = complete_graph(4)
        assert g.is_clique((0, 1, 2))
        assert not g.is_clique((0, 0, 1))
        assert not path_graph(3).is_clique((0, 2))

    def test_complement(self):
        g = path_graph(3)
        comp = g.complement()
        assert comp.has_edge(0, 2)
        assert not comp.has_edge(0, 1)

    def test_generators_shapes(self):
        assert cycle_graph(5).num_edges == 5
        assert grid_graph(2, 3).num_edges == 7
        assert empty_graph(4).num_edges == 0
        g, clique = planted_clique_graph(10, 4, 0.2, seed=1)
        assert g.is_clique(clique)

    def test_random_graph_determinism(self):
        assert random_graph(8, 0.5, seed=3) == random_graph(8, 0.5, seed=3)

    def test_graph_suite_diverse(self):
        suite = graph_suite(5)
        assert len(suite) > 10
        sizes = {g.num_nodes for g in suite}
        assert len(sizes) > 2


class TestQueryGenerators:
    def test_path_query_shape(self):
        q = path_query(3, head_arity=2)
        assert q.num_atoms() == 3
        assert len(q.head_terms) == 2
        assert q.is_acyclic()

    def test_star_query_shape(self):
        q = star_query(4)
        assert q.num_atoms() == 4
        assert q.is_acyclic()

    def test_cycle_query_cyclic(self):
        assert not cycle_query(4).is_acyclic()

    def test_path_neq_query_inequalities_in_i1(self):
        from repro.inequalities import partition_inequalities

        q = path_neq_query(4, 3, seed=2)
        partition = partition_inequalities(q)
        assert len(partition.i1) == 3

    def test_random_acyclic_query_always_acyclic(self):
        for seed in range(30):
            q = random_acyclic_query(num_atoms=5, num_inequalities=2, seed=seed)
            assert q.is_acyclic()
            JoinTree.from_hypergraph(q.hypergraph())

    def test_random_acyclic_inequalities_in_i1(self):
        from repro.inequalities import partition_inequalities

        for seed in range(10):
            q = random_acyclic_query(num_atoms=4, num_inequalities=2, seed=seed)
            partition = partition_inequalities(q)
            assert len(partition.i2) == 0


class TestDatabaseGenerators:
    def test_random_database_schema(self):
        schema = DatabaseSchema.of(E=2, S=1)
        db = random_database(schema, domain_size=5, tuples_per_relation=10, seed=0)
        assert db["E"].arity == 2
        assert db["S"].arity == 1
        assert db.domain() == frozenset(range(5))

    def test_chain_database_layered(self):
        db = chain_database(layers=3, width=4, p=1.0, seed=0)
        assert db["E"].cardinality == 2 * 16

    def test_star_database_relations(self):
        db = star_database(arms=3, fanout=4, seed=0)
        assert set(db.names()) == {"A1", "A2", "A3"}


class TestBenchlib:
    def test_time_thunk(self):
        seconds, result = time_thunk(lambda: sum(range(100)), repeats=2)
        assert result == 4950
        assert seconds >= 0

    def test_sweep(self):
        grid = [{"n": 1}, {"n": 2}]
        measurements = sweep(
            "demo", grid, lambda n: (lambda: n * n), repeats=1
        )
        assert [m.result for m in measurements] == [1, 4]
        assert all(m.label == "demo" for m in measurements)

    def test_growth_exponent_linear(self):
        sizes = [10, 20, 40, 80]
        times = [0.01, 0.02, 0.04, 0.08]
        assert abs(growth_exponent(sizes, times) - 1.0) < 0.01

    def test_growth_exponent_quadratic(self):
        sizes = [10, 20, 40]
        times = [1.0, 4.0, 16.0]
        assert abs(growth_exponent(sizes, times) - 2.0) < 0.01

    def test_growth_exponent_validation(self):
        with pytest.raises(ValueError):
            growth_exponent([1], [1.0])
        with pytest.raises(ValueError):
            growth_exponent([5, 5], [1.0, 2.0])

    def test_render_table(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", 3e-9]], title="T")
        assert "T" in text and "| a" in text and "bb" in text

    def test_render_series(self):
        text = render_series("curve", [(1, 0.5), (2, 1.0)])
        assert text.startswith("curve:")

    def test_speedup_guards_zero(self):
        assert speedup(1.0, 0.0) > 0
