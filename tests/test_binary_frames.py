"""Binary relation frames: byte-exact codec round-trips and negotiation.

The contracts under test:

* ``decode_binary`` inverts ``encode_binary``, and the round-trip is
  *byte-exact with respect to the JSON framing*: re-encoding the decoded
  message as a JSON line reproduces the original line byte for byte —
  including value spellings JSON distinguishes but Python equality does
  not (``true`` vs ``1``, ``-0.0`` vs ``0.0``).
* ``encode_binary`` declines (returns ``None``) for messages without
  relation payloads; the wire then carries plain JSON lines.
* The framing is negotiated per connection over ``ping`` and measurably
  shrinks bulk relation payloads; non-negotiated connections and
  pre-negotiation servers are unaffected.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation
from repro.protocol import (
    AsyncQueryClient,
    ProtocolError,
    QueryClient,
    QueryServer,
    Request,
    Response,
    decode_binary,
    encode,
    encode_binary,
    encode_relation,
)
from repro.protocol.frames import (
    BINARY_FRAME,
    BINARY_FRAMES_V1,
    JSON_FRAME,
    KIND_MESSAGE,
    MAGIC,
    negotiate_frames,
    read_frame_blocking,
)
from repro.protocol.messages import PING, PONG, RELATION, RELATIONS
from repro.workloads import chain_database, path_query

ids = st.integers(min_value=0, max_value=2**31)
texts = st.text(max_size=60)
names = st.text(min_size=1, max_size=16)

# JSON-representable relation values, including the spellings that are
# Python-equal but JSON-distinct (True/1, -0.0/0.0).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.sampled_from([1, True, 0, False, -0.0, 0.0, 1.0]),
    texts,
)


@st.composite
def relation_payloads(draw):
    arity = draw(st.integers(min_value=0, max_value=4))
    attributes = draw(st.lists(names, min_size=arity, max_size=arity, unique=True))
    row = st.tuples(*([scalars] * arity))
    rows = draw(st.lists(row, max_size=25))
    return encode_relation(Relation.from_rows(tuple(attributes), rows))


@st.composite
def relation_responses(draw):
    rid = draw(st.one_of(st.none(), ids))
    if draw(st.booleans()):
        return Response(id=rid, kind=RELATION, result=draw(relation_payloads()))
    return Response(
        id=rid,
        kind=RELATIONS,
        result=draw(st.lists(relation_payloads(), min_size=1, max_size=4)),
    )


def run(coroutine):
    return asyncio.run(coroutine)


def body_of(frame: bytes) -> bytes:
    assert frame[0] == MAGIC
    assert frame[1] == KIND_MESSAGE
    length = int.from_bytes(frame[2:6], "big")
    body = frame[6:]
    assert len(body) == length
    return body


class TestCodecRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(relation_responses())
    def test_round_trip_is_byte_exact_vs_json(self, response):
        frame = encode_binary(response)
        if frame is None:
            # Only empty relation lists decline; kinds above always carry
            # at least the payload shape, so a relation response encodes.
            assert response.kind == RELATIONS and response.result == []
            return
        decoded = decode_binary(body_of(frame))
        assert encode(decoded) == encode(response)

    @settings(max_examples=100, deadline=None)
    @given(relation_payloads(), ids)
    def test_register_database_request_round_trips(self, payload, rid):
        request = Request(
            op="register_database",
            id=rid,
            database="db",
            data={"relations": {"R": payload}},
        )
        frame = encode_binary(request)
        assert frame is not None
        assert encode(decode_binary(body_of(frame))) == encode(request)

    def test_json_distinct_spellings_survive(self):
        # 1 == True and -0.0 == 0.0 in Python; JSON spells all four apart.
        payload = {
            "attributes": ["a"],
            "rows": [[True], [1], [-0.0], [0.0]],
        }
        response = Response(id=3, kind=RELATION, result=payload)
        frame = encode_binary(response)
        decoded = decode_binary(body_of(frame))
        assert json.dumps(decoded.result["rows"]) == json.dumps(payload["rows"])

    def test_relation_free_messages_decline(self):
        assert encode_binary(Response(id=1, kind=PONG, result=None)) is None
        assert encode_binary(Request(op=PING, id=1)) is None
        assert encode_binary(Response(id=1, kind="count", result=7)) is None

    def test_marker_collision_declines(self):
        # A stats-like payload that already uses the marker key must not
        # be rewritten into a frame it did not ask for.
        response = Response(
            id=1,
            kind="stats",
            result={"__relation_frame__": 0, "r": encode_relation(
                Relation.from_rows(("a",), [(1,)])
            )},
        )
        assert encode_binary(response) is None

    def test_pool_is_shared_across_rows(self):
        # 400 rows over a 2-value domain: the frame must be far smaller
        # than the JSON line (the whole point of dictionary encoding).
        rows = [[i % 2, (i + 1) % 2, "constant-padding-value"] for i in range(400)]
        response = Response(
            id=1, kind=RELATION, result={"attributes": ["x", "y", "z"], "rows": rows}
        )
        frame = encode_binary(response)
        line = encode(response)
        assert len(frame) < len(line) / 3
        assert encode(decode_binary(body_of(frame))) == line

    def test_truncated_frame_is_typed_error(self):
        frame = encode_binary(
            Response(
                id=1,
                kind=RELATION,
                result=encode_relation(Relation.from_rows(("a",), [(1,), (2,)])),
            )
        )
        body = body_of(frame)
        with pytest.raises(ProtocolError):
            decode_binary(body[:-3])
        with pytest.raises(ProtocolError):
            decode_binary(body + b"\x00")  # trailing garbage

    def test_negotiate_frames_intersects(self):
        assert negotiate_frames([BINARY_FRAMES_V1]) == (BINARY_FRAMES_V1,)
        assert negotiate_frames([BINARY_FRAMES_V1, "future-v9"]) == (
            BINARY_FRAMES_V1,
        )
        assert negotiate_frames(["future-v9"]) == ()
        assert negotiate_frames("not-a-list") == ()
        assert negotiate_frames(None) == ()


class TestDualFramingReader:
    def test_blocking_reader_separates_framings(self, tmp_path):
        response = Response(
            id=1,
            kind=RELATION,
            result=encode_relation(Relation.from_rows(("a",), [(1,)])),
        )
        blob = encode(response) + encode_binary(response) + b"\n" + encode(response)
        path = tmp_path / "stream.bin"
        path.write_bytes(blob)
        with open(path, "rb") as stream:
            tag1, line = read_frame_blocking(stream)
            tag2, body = read_frame_blocking(stream)
            tag3, blank = read_frame_blocking(stream)
            tag4, line2 = read_frame_blocking(stream)
            tag5, eof = read_frame_blocking(stream)
        assert (tag1, line) == (JSON_FRAME, encode(response))
        assert tag2 == BINARY_FRAME and decode_binary(body).result == response.result
        assert (tag3, blank) == (JSON_FRAME, b"\n")
        assert (tag4, line2) == (JSON_FRAME, encode(response))
        assert (tag5, eof) == (JSON_FRAME, b"")


class TestNegotiatedConnection:
    @pytest.fixture(scope="class")
    def chain(self):
        return chain_database(layers=6, width=20, p=0.5, seed=11)

    def test_async_negotiation_and_equal_results(self, chain):
        q = path_query(3, head_arity=2)

        async def main():
            async with QueryServer({"chain": chain}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(
                    host, port, binary_frames=True
                ) as binary_client:
                    assert binary_client.binary_frames
                    binary_result = await binary_client.execute(q, "chain")
                    # run_batch relations ride the same framing.
                    from repro.operations import EXECUTE, operations_of

                    batch = await binary_client.run_batch(
                        operations_of(EXECUTE, [q, path_query(2)]), "chain"
                    )
                async with await AsyncQueryClient.connect(host, port) as plain:
                    assert not plain.binary_frames
                    plain_result = await plain.execute(q, "chain")
            return binary_result, batch, plain_result

        binary_result, batch, plain_result = run(main())
        assert binary_result == plain_result
        assert batch[0] == binary_result

    def test_blocking_client_negotiates_and_registers(self, chain):
        q = path_query(2, head_arity=1)

        async def main():
            async with QueryServer({"chain": chain}) as server:
                host, port = server.address

                def sync_work():
                    with QueryClient(host, port, binary_frames=True) as client:
                        assert client.binary_frames
                        result = client.execute(q, "chain")
                        # register_database's bulk payload goes out binary.
                        registered = client.register_database("copy", chain)
                        copied = client.execute(q, "copy")
                    return result, registered, copied

                return await asyncio.to_thread(sync_work)

        result, registered, copied = run(main())
        assert registered == ["E"]
        assert result == copied

    def test_plain_ping_unchanged(self, chain):
        async def main():
            async with QueryServer({"chain": chain}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    assert await client.ping()

        run(main())

    def test_binary_payload_shrinks_bulk_relations(self, chain):
        # The acceptance property: the negotiated framing measurably
        # shrinks a bulk relation payload versus its JSON line.
        q = path_query(3, head_arity=2)

        async def main():
            async with QueryServer({"chain": chain}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    relation = await client.execute(q, "chain")
            return relation

        relation = run(main())
        response = Response(id=1, kind=RELATION, result=encode_relation(relation))
        line = encode(response)
        frame = encode_binary(response)
        assert frame is not None
        assert len(frame) < 0.75 * len(line)
