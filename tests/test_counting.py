"""The counting subsystem: modes, the annotated Yannakakis pass, sharded
partial counts, grouped counts, and the aggregate facades."""

import pytest

from repro import Database, QueryEngine, Relation, parse_query
from repro.engine import (
    COUNT_BOOLEAN,
    COUNT_COVERED,
    COUNT_FULL,
    COUNT_GENERAL,
    COUNT_HARD,
    FAST_COUNTING_MODES,
    Planner,
    analyze,
    counting_mode,
    covering_atom,
)
from repro.errors import QueryError
from repro.evaluation import (
    CountingYannakakisEvaluator,
    NaiveEvaluator,
    grouped_count_reference,
    head_domain_size,
)
from repro.query import Atom, ConjunctiveQuery
from repro.query.terms import Variable
from repro.workloads import (
    chain_database,
    cycle_query,
    path_query,
    star_database,
    star_query,
)


@pytest.fixture(scope="module")
def chain() -> Database:
    return chain_database(layers=6, width=8, p=0.5, seed=7)


def naive_count(query, database) -> int:
    return NaiveEvaluator().evaluate(query, database).cardinality


def full_path_query(length: int) -> ConjunctiveQuery:
    """A path query exporting every variable (no existential vars)."""
    return path_query(length, head_arity=length + 1)


def headed_cycle_query(length: int) -> ConjunctiveQuery:
    """A cyclic query WITH head variables (so counting is count-general)."""
    base = cycle_query(length)
    return ConjunctiveQuery((Variable("x0"),), list(base.atoms), head_name="CYC")


class TestCountingModes:
    def test_boolean(self):
        query = ConjunctiveQuery(
            (), [Atom("E", (Variable("x"), Variable("y")))], head_name="Q"
        )
        assert counting_mode(query, analyze(query).structural_class) == COUNT_BOOLEAN

    def test_covered(self):
        query = path_query(3, head_arity=2)
        assert counting_mode(query, analyze(query).structural_class) == COUNT_COVERED
        assert covering_atom(query) == 0

    def test_full(self):
        query = full_path_query(3)
        assert counting_mode(query, analyze(query).structural_class) == COUNT_FULL
        assert covering_atom(query) is None

    def test_hard_projection(self):
        # Head {x0, x3} spans no single atom and x1, x2 are existential:
        # the Chen–Mengel hard case for acyclic counting.
        base = path_query(3)
        variables = [Variable(f"x{i}") for i in range(4)]
        query = ConjunctiveQuery(
            (variables[0], variables[3]), list(base.atoms), head_name="Q"
        )
        assert counting_mode(query, analyze(query).structural_class) == COUNT_HARD

    def test_boolean_beats_structure(self):
        # An empty head is count-boolean even on a cyclic body: counting
        # IS deciding there, whatever evaluation costs.
        query = cycle_query(4)
        assert counting_mode(query, analyze(query).structural_class) == COUNT_BOOLEAN

    def test_cyclic_is_general(self):
        query = headed_cycle_query(4)
        assert counting_mode(query, analyze(query).structural_class) == COUNT_GENERAL

    def test_plans_carry_the_mode(self, chain):
        engine = QueryEngine()
        with engine:
            plan = engine.plan_for(path_query(3, head_arity=2), chain)
            assert plan.count_mode == COUNT_COVERED
            assert "counting : count-covered" in plan.explain()


class TestCountingEvaluator:
    @pytest.mark.parametrize("length", [2, 3])
    def test_full_mode_matches_naive(self, chain, length):
        query = full_path_query(length)
        result = CountingYannakakisEvaluator().count(query, chain)
        assert result.mode == COUNT_FULL
        assert result.total == naive_count(query, chain)
        assert sum(result.partials) == result.total

    @pytest.mark.parametrize("head_arity", [1, 2])
    def test_covered_mode_matches_naive(self, chain, head_arity):
        query = path_query(3, head_arity=head_arity)
        result = CountingYannakakisEvaluator().count(query, chain)
        assert result.mode == COUNT_COVERED
        assert result.total == naive_count(query, chain)

    def test_boolean_mode(self, chain):
        query = ConjunctiveQuery(
            (), list(path_query(3).atoms), head_name="Q"
        )
        result = CountingYannakakisEvaluator().count(query, chain)
        assert result.mode == COUNT_BOOLEAN
        assert result.total == 1

    def test_empty_result_counts_zero(self):
        database = Database.from_tuples({"E": [(1, 2)]})
        query = path_query(3, head_arity=2)
        result = CountingYannakakisEvaluator().count(query, database)
        assert result.total == 0

    def test_non_fast_mode_raises(self, chain):
        evaluator = CountingYannakakisEvaluator()
        with pytest.raises(QueryError):
            evaluator.count(headed_cycle_query(4), chain)

    @pytest.mark.parametrize("shard_count", [2, 4])
    @pytest.mark.parametrize("head_arity", [2, 4])
    def test_sharded_partials_merge_exactly(self, chain, shard_count, head_arity):
        # The per-shard partial counts must sum to the serial total: the
        # covered mode routes whole index buckets so no key spans shards,
        # and the full mode hash-partitions root annotations.
        query = path_query(3, head_arity=head_arity)
        serial = CountingYannakakisEvaluator().count(query, chain)
        sharded = CountingYannakakisEvaluator().count(
            query, chain, shard_count=shard_count
        )
        assert len(sharded.partials) == shard_count
        assert sum(sharded.partials) == serial.total
        assert sharded.total == serial.total

    def test_star_quantified_count(self):
        # STAR(hub) :- A1(hub,l1)..Ak(hub,lk) with the leaves existential:
        # head covered by any one arm, so counting skips the join whose
        # size grows with the quantified star size.
        database = star_database(arms=3, fanout=6, seed=2)
        query = star_query(3)
        result = CountingYannakakisEvaluator().count(query, database)
        assert result.mode == COUNT_COVERED
        assert result.total == naive_count(query, database)


class TestGroupedCounts:
    def test_matches_reference(self, chain):
        query = path_query(3, head_arity=2)
        evaluator = CountingYannakakisEvaluator()
        grouped = evaluator.grouped_count(query, chain, ("x0",))
        answers = NaiveEvaluator().evaluate(query, chain)
        reference = grouped_count_reference(query, answers, ("x0",))
        assert grouped == reference

    def test_full_mode_grouping(self, chain):
        query = full_path_query(2)
        evaluator = CountingYannakakisEvaluator()
        grouped = evaluator.grouped_count(query, chain, ("x2",))
        answers = NaiveEvaluator().evaluate(query, chain)
        assert grouped == grouped_count_reference(query, answers, ("x2",))

    def test_counts_sum_to_total(self, chain):
        query = path_query(3, head_arity=2)
        evaluator = CountingYannakakisEvaluator()
        grouped = evaluator.grouped_count(query, chain, ("x1",))
        total = evaluator.count(query, chain).total
        assert sum(row[-1] for row in grouped.rows) == total

    def test_unknown_group_name_rejected(self, chain):
        with pytest.raises(QueryError):
            CountingYannakakisEvaluator().grouped_count(
                path_query(3, head_arity=2), chain, ("nope",)
            )

    def test_count_attribute_collision_renamed(self):
        database = Database.from_tuples({"E": [(1, 2), (1, 3)]})
        count_var = Variable("count")
        other = Variable("y")
        query = ConjunctiveQuery(
            (count_var, other), [Atom("E", (count_var, other))], head_name="Q"
        )
        grouped = CountingYannakakisEvaluator().grouped_count(
            query, database, ("count",)
        )
        assert grouped.attributes == ("count", "_count")
        assert set(grouped.rows) == {(1, 2)}


class TestEngineCountingFacade:
    def test_count_equals_execute_cardinality(self, chain):
        with QueryEngine() as engine:
            for query in (
                path_query(2),
                path_query(3, head_arity=2),
                full_path_query(3),
                headed_cycle_query(4),  # count-general: falls back to evaluation
            ):
                assert engine.count(query, chain) == engine.execute(
                    query, chain
                ).cardinality

    def test_count_hard_falls_back(self, chain):
        base = path_query(3)
        variables = [Variable(f"x{i}") for i in range(4)]
        query = ConjunctiveQuery(
            (variables[0], variables[3]), list(base.atoms), head_name="Q"
        )
        with QueryEngine() as engine:
            assert engine.plan_for(query, chain).count_mode == COUNT_HARD
            assert engine.count(query, chain) == naive_count(query, chain)

    def test_sharded_count_matches_serial(self, chain):
        query = path_query(3, head_arity=2)
        with QueryEngine(
            planner=Planner(shard_threshold_rows=1, shard_count=4)
        ) as sharded, QueryEngine(parallel=False) as serial:
            assert sharded.plan_for(query, chain).shard_count == 4
            assert sharded.count(query, chain) == serial.count(query, chain)

    def test_count_batch(self, chain):
        queries = [path_query(n, head_arity=1) for n in (1, 2, 3)]
        with QueryEngine() as engine:
            counts = engine.count_batch(queries, chain)
            assert counts == [engine.count(query, chain) for query in queries]

    def test_exists_and_forall(self):
        full = Database.from_tuples(
            {"E": [(a, b) for a in range(3) for b in range(3)]}
        )
        query = path_query(1, head_arity=2)
        with QueryEngine() as engine:
            assert engine.exists(query, full) is True
            assert engine.forall(query, full) is True
            # Domains {0,1}×{0,1} but only 3 of the 4 pairs present.
            sparse = Database.from_tuples({"E": [(0, 1), (1, 0), (0, 0)]})
            assert engine.forall(query, sparse) is False
            empty = Database({}).with_relation(
                "E", Relation.from_rows(("E.0", "E.1"))
            )
            assert engine.exists(query, empty) is False
            # Empty candidate domains: vacuously true.
            assert engine.forall(query, empty) is True

    def test_grouped_count_facade(self, chain):
        query = path_query(3, head_arity=2)
        with QueryEngine() as engine:
            grouped = engine.grouped_count(query, chain, ("x0",))
            reference = grouped_count_reference(
                query, engine.execute(query, chain), ("x0",)
            )
            assert grouped == reference

    def test_count_records_cardinality_for_replanning(self, chain):
        with QueryEngine() as engine:
            query = path_query(3, head_arity=2)
            total = engine.count(query, chain)
            plan = engine.plan_for(query, chain)
            assert plan.runtime.last_rows == total


class TestHeadDomainSize:
    def test_product_of_intersections(self):
        database = Database.from_tuples({"E": [(1, 2), (2, 3), (3, 1)]})
        query = path_query(1, head_arity=2)
        # x0 ranges over first-column values ∩ nothing else; x1 likewise.
        assert head_domain_size(query, database) == 9

    def test_repeated_head_variable_counted_once(self):
        database = Database.from_tuples({"E": [(1, 1), (2, 2)]})
        x = Variable("x")
        query = ConjunctiveQuery((x, x), [Atom("E", (x, x))], head_name="Q")
        assert head_domain_size(query, database) == 2


class TestPlannerCalibration:
    def test_observed_unit_costs_need_samples(self, chain):
        with QueryEngine() as engine:
            query = path_query(3, head_arity=2)
            engine.execute(query, chain)
            ledger = engine._ledger
            assert ledger.observed_unit_costs(min_samples=3) == {}
            engine.execute(query, chain)
            engine.execute(query, chain)
            units = ledger.observed_unit_costs(min_samples=3)
            assert set(units) == {"yannakakis"}
            assert units["yannakakis"] > 0.0

    def test_pass_weight_scales_with_evidence(self):
        # Yannakakis observed 3x slower than naive per modelled row-op →
        # the acyclic cost estimate triples relative to the static prior.
        static = Planner()
        fast = Planner(calibration=lambda: {"yannakakis": 3.0, "naive": 1.0})
        assert fast._pass_weight() == pytest.approx(3.0 * static._pass_weight())
        # Evidence for only one evaluator keeps the static prior.
        partial = Planner(calibration=lambda: {"yannakakis": 3.0})
        assert partial._pass_weight() == static._pass_weight()

    def test_calibration_clamped(self):
        static = Planner()
        extreme = Planner(calibration=lambda: {"yannakakis": 1000.0, "naive": 1.0})
        assert extreme._pass_weight() == pytest.approx(4.0 * static._pass_weight())
        tiny = Planner(calibration=lambda: {"yannakakis": 1.0, "naive": 1000.0})
        assert tiny._pass_weight() == pytest.approx(0.25 * static._pass_weight())

    def test_engine_feeds_its_own_ledger(self, chain):
        with QueryEngine() as engine:
            assert engine._planner._calibration is not None
            query = path_query(3, head_arity=2)
            for _ in range(3):
                engine.execute(query, chain)
            # Re-planning with warmed calibration still picks a sound
            # evaluator and the same answers.
            evicted = parse_query(repr(query))
            assert engine.execute(evicted, chain) == NaiveEvaluator().evaluate(
                query, chain
            )

    def test_fast_counting_modes_subset(self):
        assert set(FAST_COUNTING_MODES) <= {
            COUNT_BOOLEAN,
            COUNT_COVERED,
            COUNT_FULL,
        }
