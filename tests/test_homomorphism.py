"""Tests for Chandra–Merlin homomorphisms, containment, minimization."""

import pytest

from repro.errors import QueryError
from repro.query import (
    are_equivalent,
    canonical_database,
    find_homomorphism,
    is_contained_in,
    is_homomorphism,
    minimize,
    parse_query,
)


class TestCanonicalDatabase:
    def test_frozen_variables_distinct_from_constants(self):
        q = parse_query("Q(x) :- R(x, 1), R(x, y).")
        db, head = canonical_database(q)
        assert db["R"].cardinality == 2
        values = db.active_domain()
        assert 1 in values
        assert len(head) == 1

    def test_rejects_constraints(self):
        q = parse_query("Q(x) :- R(x, y), x != y.")
        with pytest.raises(QueryError):
            canonical_database(q)


class TestHomomorphism:
    def test_identity_always_exists(self):
        q = parse_query("Q(x) :- E(x, y), E(y, z).")
        mapping = find_homomorphism(q, q)
        assert mapping is not None
        assert is_homomorphism(mapping, q, q)

    def test_folding_homomorphism(self):
        # Longer path maps onto shorter by folding.
        long = parse_query("Q() :- E(a, b), E(b, c), E(c, d).")
        zigzag = parse_query("Q() :- E(u, v), E(v, u).")
        mapping = find_homomorphism(long, zigzag)
        assert mapping is not None
        assert is_homomorphism(mapping, long, zigzag)

    def test_no_homomorphism_to_disconnected(self):
        triangleish = parse_query("Q() :- E(x, y), E(y, z), E(z, x).")
        single = parse_query("Q() :- E(u, v).")
        assert find_homomorphism(triangleish, single) is None

    def test_head_preservation_required(self):
        q1 = parse_query("Q(x) :- E(x, y).")
        q2 = parse_query("Q(y) :- E(x, y).")
        mapping = find_homomorphism(q1, q2)
        # x must map to y (the head) — then E(y, ?) must be an atom of q2,
        # but q2 only has E(x, y): no homomorphism.
        assert mapping is None

    def test_constants_must_match(self):
        with_const = parse_query("Q() :- E(x, 1).")
        other_const = parse_query("Q() :- E(x, 2).")
        assert find_homomorphism(with_const, other_const) is None
        same = parse_query("Q() :- E(y, 1), E(y, 2).")
        assert find_homomorphism(with_const, same) is not None

    def test_missing_relation(self):
        q1 = parse_query("Q() :- E(x, y), F(y).")
        q2 = parse_query("Q() :- E(x, y).")
        assert find_homomorphism(q1, q2) is None

    def test_head_arity_mismatch(self):
        q1 = parse_query("Q(x, y) :- E(x, y).")
        q2 = parse_query("Q(x) :- E(x, y).")
        assert find_homomorphism(q1, q2) is None


class TestContainment:
    def test_longer_path_contains_shorter_fold(self):
        # Q2 (2-cycle pattern) ⊆ Q1 (3-path pattern): hom Q1 → Q2 exists.
        q1 = parse_query("Q() :- E(a, b), E(b, c), E(c, d).")
        q2 = parse_query("Q() :- E(u, v), E(v, u).")
        assert is_contained_in(q2, q1)
        assert not is_contained_in(q1, q2)

    def test_adding_atoms_shrinks(self):
        base = parse_query("Q(x) :- E(x, y).")
        refined = parse_query("Q(x) :- E(x, y), F(y).")
        assert is_contained_in(refined, base)
        assert not is_contained_in(base, refined)

    def test_containment_soundness_on_data(self):
        """If Q2 ⊆ Q1 then Q2(d) ⊆ Q1(d) on concrete data."""
        from repro import Database, NaiveEvaluator

        q1 = parse_query("Q(x) :- E(x, y).")
        q2 = parse_query("Q(x) :- E(x, y), E(y, z).")
        assert is_contained_in(q2, q1)
        db = Database.from_tuples({"E": [(1, 2), (2, 3), (4, 4)]})
        engine = NaiveEvaluator()
        assert engine.evaluate(q2, db).rows <= engine.evaluate(q1, db).rows


class TestEquivalenceAndMinimization:
    def test_redundant_atom_removed(self):
        # E(x,y), E(x,y') with y' existential folds onto E(x,y).
        redundant = parse_query("Q(x) :- E(x, y), E(x, z).")
        core = minimize(redundant)
        assert len(core.atoms) == 1
        assert are_equivalent(core, redundant)

    def test_triangle_not_minimizable(self):
        triangle = parse_query("Q() :- E(x, y), E(y, z), E(z, x).")
        core = minimize(triangle)
        assert len(core.atoms) == 3

    def test_path_with_fold(self):
        # E(x,y), E(y,z), E(y,w): the E(y,w) atom folds onto E(y,z).
        q = parse_query("Q(x) :- E(x, y), E(y, z), E(y, w).")
        core = minimize(q)
        assert len(core.atoms) == 2
        assert are_equivalent(core, q)

    def test_head_variables_protected(self):
        # Both atoms export head variables: nothing can be dropped.
        q = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        assert len(minimize(q).atoms) == 2

    def test_minimal_query_is_minimal(self):
        q = parse_query("Q(x) :- E(x, y), E(y, x), E(x, x).")
        core = minimize(q)
        # E(x,x) maps into itself; E(x,y)/E(y,x) fold onto it via y ↦ x.
        assert len(core.atoms) == 1
        assert are_equivalent(core, q)

    def test_equivalence_reflexive_symmetric(self):
        q1 = parse_query("Q(x) :- E(x, y).")
        q2 = parse_query("Q(a) :- E(a, b).")
        assert are_equivalent(q1, q1)
        assert are_equivalent(q1, q2)  # alpha-renaming
        assert are_equivalent(q2, q1)
