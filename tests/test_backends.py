"""Unit tests for the SQL pushdown backend: compiler, adapters, arbiter.

The differential oracle (``tests/test_differential_sql.py``) proves the
backend *agrees* with the native engine; this file pins the pieces in
isolation — the SQL the compiler emits, the fragment boundary
(:class:`SqlCompilationError`), the generic operation surface, table
lifecycle/eviction, the latency arbiter's explore/exploit policy, and the
gated DuckDB adapter.
"""

import gc

import pytest

from repro import Database, QueryEngine, Relation
from repro.backends import (
    BACKEND,
    NATIVE,
    PushdownArbiter,
    SqliteBackend,
    canonical_value,
    compile_query,
    duckdb_available,
)
from repro.errors import (
    BackendError,
    BackendUnavailableError,
    InvalidOperationError,
    SchemaError,
    SqlCompilationError,
)
from repro.operations import Operation
from repro.query.atoms import Atom, Comparison, Inequality
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.terms import C, V


def q(head, atoms, **kw):
    return ConjunctiveQuery(head, atoms, **kw)


PATH = q(
    (V("x"), V("z")),
    [Atom("E", (V("x"), V("y"))), Atom("E", (V("y"), V("z")))],
)

EDGES = Database(
    {"E": Relation.from_rows(("s", "t"), [(1, 2), (2, 3), (3, 4), (2, 4)])}
)


@pytest.fixture
def backend():
    with SqliteBackend() as b:
        yield b


class TestCompiler:
    def test_join_sql_shape(self):
        compiled = compile_query(PATH)
        assert compiled.head_arity == 2
        assert compiled.head_attributes == ("o0", "o1")
        sql = compiled.select_sql
        assert sql.startswith("SELECT DISTINCT")
        assert 'AS o0' in sql and 'AS o1' in sql
        # The shared variable y joins position 1 of atom 0 to position 0
        # of atom 1.
        assert "a1.c0 = a0.c1" in sql
        assert compiled.count_sql.startswith("SELECT COUNT(*) FROM (")

    def test_constants_become_parameters(self):
        query = q((V("y"),), [Atom("E", (C(1), V("y")))])
        compiled = compile_query(query)
        assert "a0.c0 = ?" in compiled.select_sql
        # Raw value; the adapter pool-encodes at bind time.
        assert compiled.select_params == (1,)

    def test_head_constants_parameterized_first(self):
        query = q((C("tag"), V("x")), [Atom("R", (V("x"),))])
        compiled = compile_query(query)
        assert compiled.select_sql.startswith("SELECT DISTINCT ? AS o0")
        assert compiled.select_params[0] == "tag"

    def test_boolean_head_compiles_to_exists(self):
        query = q((), [Atom("E", (V("x"), V("y")))])
        compiled = compile_query(query)
        assert compiled.select_sql is None
        assert "EXISTS" in compiled.exists_sql or "LIMIT 1" in compiled.exists_sql
        assert compiled.count_sql == compiled.exists_sql

    def test_repeated_variable_in_atom(self):
        query = q((V("x"),), [Atom("E", (V("x"), V("x")))])
        compiled = compile_query(query)
        assert "a0.c1 = a0.c0" in compiled.select_sql

    def test_inequalities_compile_to_not_equal(self):
        query = q(
            (V("x"), V("y")),
            [Atom("E", (V("x"), V("y")))],
            inequalities=[Inequality(V("x"), V("y"))],
        )
        assert "<>" in compile_query(query).select_sql

    def test_comparisons_are_outside_the_fragment(self):
        query = q(
            (V("x"),),
            [Atom("E", (V("x"), V("y")))],
            comparisons=[Comparison(V("x"), V("y"))],
        )
        with pytest.raises(SqlCompilationError):
            compile_query(query)

    def test_custom_table_names(self):
        compiled = compile_query(PATH, table_names={"E": "t42"})
        assert '"t42"' not in compiled.select_sql  # physical names unquoted
        assert "t42" in compiled.select_sql


class TestSqliteBackend:
    def test_loads_lazily_and_caches_tables(self, backend):
        assert backend.loaded_databases == 0
        backend.execute(PATH, EDGES)
        assert backend.loaded_databases == 1
        backend.execute(PATH, EDGES)  # same Database object: no reload
        assert backend.loaded_databases == 1

    def test_tables_evicted_when_database_dies(self, backend):
        db = Database({"E": Relation.from_rows(("s", "t"), [(1, 2)])})
        backend.decide(PATH, db)
        assert backend.loaded_databases == 1
        del db
        gc.collect()
        assert backend.loaded_databases == 0

    def test_missing_relation_is_schema_error(self, backend):
        query = q((V("x"),), [Atom("NOPE", (V("x"),))])
        with pytest.raises(SchemaError):
            backend.execute(query, EDGES)

    def test_unsupported_query_raises_compilation_error(self, backend):
        query = q(
            (V("x"),),
            [Atom("E", (V("x"), V("y")))],
            comparisons=[Comparison(V("x"), V("y"))],
        )
        assert not backend.supports(query)
        with pytest.raises(SqlCompilationError):
            backend.execute(query, EDGES)

    def test_run_covers_the_operation_surface(self, backend):
        assert backend.run(Operation.execute(PATH), EDGES).cardinality == 3
        assert backend.run(Operation.decide(PATH), EDGES) is True
        assert backend.run(Operation.count(PATH), EDGES) == 3
        assert backend.run(Operation.exists(PATH), EDGES) is True
        agg = Operation.make("aggregate", PATH, {"mode": "count"})
        assert backend.run(agg, EDGES) == 3

    def test_run_rejects_explain_and_forced_evaluators(self, backend):
        with pytest.raises(BackendError):
            backend.run(Operation.explain(PATH), EDGES)
        with pytest.raises(BackendError):
            backend.run(Operation.execute(PATH, evaluator="naive"), EDGES)
        with pytest.raises(BackendError):
            backend.run(Operation.forall(PATH), EDGES)

    def test_run_batch_is_elementwise(self, backend):
        ops = [Operation.count(PATH), Operation.decide(PATH)]
        assert backend.run_batch(ops, EDGES) == [3, True]

    def test_unhashable_constant_is_a_compilation_error(self, backend):
        query = q((V("y"),), [Atom("E", (C([1, 2]), V("y")))])
        with pytest.raises(SqlCompilationError):
            backend.execute(query, EDGES)

    def test_canonical_value_maps_to_pool_representative(self):
        assert canonical_value(True) == 1
        assert canonical_value(1.0) == canonical_value(1)


class TestDuckDbGate:
    def test_adapter_raises_when_driver_missing(self):
        if duckdb_available():  # pragma: no cover - not in this container
            pytest.skip("duckdb installed; gate not exercised")
        from repro.backends import DuckDbBackend

        with pytest.raises(BackendUnavailableError):
            DuckDbBackend()


class TestArbiter:
    def make(self):
        return PushdownArbiter(SqliteBackend(), probe_stride=4)

    def test_explore_then_exploit(self):
        arbiter = self.make()
        key = ("shape", 1)
        # Nothing observed: native first, then the backend arm.
        assert arbiter.choose(key, "execute") == NATIVE
        arbiter.record(key, "execute", NATIVE, 0.010)
        assert arbiter.choose(key, "execute") == BACKEND
        arbiter.record(key, "execute", BACKEND, 0.001)
        # Backend is 10x faster: exploited on non-probe calls.
        choices = [arbiter.choose(key, "execute") for _ in range(5)]
        assert BACKEND in choices
        assert choices.count(NATIVE) <= 2  # the periodic loser probe

    def test_probe_stride_revisits_loser(self):
        arbiter = self.make()
        key = "k"
        arbiter.record(key, "count", NATIVE, 0.001)
        arbiter.record(key, "count", BACKEND, 0.100)
        choices = [arbiter.choose(key, "count") for _ in range(8)]
        assert NATIVE in choices  # winner
        assert BACKEND in choices  # probed every 4th call

    def test_mark_failed_is_permanent(self):
        arbiter = self.make()
        key = "bad"
        assert arbiter.supports(key, PATH)
        arbiter.mark_failed(key, "driver exploded")
        assert not arbiter.supports(key, PATH)
        assert arbiter.choose(key, "execute") == NATIVE

    def test_unsupported_shape_cached_with_reason(self):
        arbiter = self.make()
        query = q(
            (V("x"),),
            [Atom("E", (V("x"), V("y")))],
            comparisons=[Comparison(V("x"), V("y"))],
        )
        assert not arbiter.supports("c", query)
        rendering = arbiter.describe("c", query)
        assert "ineligible" in rendering

    def test_snapshot_reports_both_arms(self):
        arbiter = self.make()
        arbiter.record("s", "execute", NATIVE, 0.002)
        arbiter.record("s", "execute", BACKEND, 0.001)
        arbiter.choose("s", "execute")
        snap = arbiter.snapshot()
        ((_, info),) = [
            (k, v) for k, v in snap.items() if k == ("s", "execute")
        ]
        assert info["native_samples"] == 1
        assert info["backend_samples"] == 1


class TestEngineWiring:
    def test_engine_without_backend_has_no_arbiter(self):
        with QueryEngine(max_workers=1) as engine:
            assert engine.backend is None
            assert engine.pushdown_stats() == {}

    def test_backend_failure_falls_back_to_native(self):
        class ExplodingBackend(SqliteBackend):
            def execute(self, query, database):
                raise BackendError("synthetic failure")

            def count(self, query, database):
                raise BackendError("synthetic failure")

            def decide(self, query, database):
                raise BackendError("synthetic failure")

        backend = ExplodingBackend()
        with QueryEngine(max_workers=1, backend=backend) as engine:
            expected = None
            for _ in range(6):  # backend arm tried, fails, marked dead
                result = engine.execute(PATH, EDGES)
                expected = expected or result
                assert result == expected
            stats = engine.pushdown_stats()
            assert any(not info["supported"] for info in stats.values())
        backend.close()

    def test_naive_evaluator_run_surface(self):
        from repro.evaluation import NaiveEvaluator

        ev = NaiveEvaluator()
        assert ev.run(Operation.execute(PATH), EDGES).cardinality == 3
        assert ev.run(Operation.decide(PATH), EDGES) is True
        with pytest.raises(InvalidOperationError):
            ev.run(Operation.count(PATH), EDGES)
        results = ev.run_batch(
            [Operation.execute(PATH), Operation.decide(PATH)], EDGES
        )
        assert results[1] is True
