"""Tests for the parametric framework, classic problems, and Figure 1."""

import pytest

from repro.errors import ReductionError
from repro.parametric import (
    FIGURE_1,
    FIGURE_1_ARCS,
    ParametricReduction,
    Q_FIXED,
    Q_VARIABLE,
    V_FIXED,
    V_VARIABLE,
    WClass,
    easier_than,
    harder_than,
    theorem1_table,
)
from repro.parametric.problems import (
    AW_P,
    AlternatingWeightedCircuitInstance,
    CLIQUE,
    CliqueInstance,
    DOMINATING_SET,
    DominatingSetInstance,
    INDEPENDENT_SET,
    IndependentSetInstance,
    VERTEX_COVER,
    VertexCoverInstance,
    find_clique,
    find_dominating_set,
    find_vertex_cover,
    has_clique,
)
from repro.circuits import CircuitBuilder
from repro.workloads.graphs import (
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    random_graph,
)


class TestClique:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert has_clique(g, 5)
        assert not has_clique(g, 6)

    def test_found_clique_is_clique(self):
        g = random_graph(12, 0.6, seed=3)
        for k in (2, 3, 4):
            witness = find_clique(g, k)
            if witness is not None:
                assert g.is_clique(witness)
                assert len(witness) == k

    def test_trivial_parameters(self):
        g = path_graph(3)
        assert has_clique(g, 0)
        assert has_clique(g, 1)
        assert has_clique(g, 2)
        assert not has_clique(g, 3)

    def test_matches_bruteforce(self):
        from itertools import combinations

        for seed in range(5):
            g = random_graph(8, 0.45, seed=seed)
            for k in (2, 3, 4):
                brute = any(
                    g.is_clique(c) for c in combinations(g.nodes, k)
                )
                assert has_clique(g, k) == brute

    def test_independent_set_is_complement_clique(self):
        g = cycle_graph(5)
        assert INDEPENDENT_SET.solve(IndependentSetInstance(g, 2))
        assert not INDEPENDENT_SET.solve(IndependentSetInstance(g, 3))


class TestDominatingSet:
    def test_star_center_dominates(self):
        from repro.workloads.graphs import Graph

        star = Graph(range(5), [(0, i) for i in range(1, 5)])
        assert find_dominating_set(star, 1) == (0,)

    def test_cycle(self):
        g = cycle_graph(6)
        assert DOMINATING_SET.solve(DominatingSetInstance(g, 2))
        assert not DOMINATING_SET.solve(DominatingSetInstance(g, 1))

    def test_empty_graph_needs_all(self):
        g = empty_graph(3)
        assert not find_dominating_set(g, 2)
        assert find_dominating_set(g, 3) is not None


class TestVertexCover:
    def test_path(self):
        g = path_graph(5)  # 4 edges, VC = 2
        assert VERTEX_COVER.solve(VertexCoverInstance(g, 2))
        assert not VERTEX_COVER.solve(VertexCoverInstance(g, 1))

    def test_cover_is_cover(self):
        g = random_graph(10, 0.3, seed=9)
        cover = find_vertex_cover(g, 6)
        if cover is not None:
            assert all(a in cover or b in cover for a, b in g.edges())

    def test_complete_graph_needs_n_minus_1(self):
        g = complete_graph(4)
        assert not find_vertex_cover(g, 2)
        assert find_vertex_cover(g, 3) is not None


class TestAlternating:
    def test_exists_forall_semantics(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input("b")
        c = builder.input("c")
        d = builder.input("d")
        circuit = builder.build(
            builder.or_(builder.and_(a, c), builder.and_(a, d), builder.and_(b, c))
        )
        # ∃ one of {a,b}, ∀ one of {c,d}: choosing a works (a∧c, a∧d).
        instance = AlternatingWeightedCircuitInstance(
            circuit, (("a", "b"), ("c", "d")), (1, 1)
        )
        assert AW_P.solve(instance)
        # choosing b fails for d.
        instance_b_only = AlternatingWeightedCircuitInstance(
            circuit, (("b",), ("c", "d")), (1, 1)
        )
        assert not AW_P.solve(instance_b_only)

    def test_block_validation(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        circuit = builder.build(builder.and_(a))
        with pytest.raises(ReductionError):
            AlternatingWeightedCircuitInstance(circuit, (("a", "a"),), (1,))
        with pytest.raises(ReductionError):
            AlternatingWeightedCircuitInstance(circuit, (("zz",),), (1,))

    def test_parameter_is_sum(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input("b")
        circuit = builder.build(builder.or_(a, b))
        instance = AlternatingWeightedCircuitInstance(
            circuit, (("a",), ("b",)), (1, 1)
        )
        assert instance.parameter == 2


class TestReductionFramework:
    def test_verify_detects_wrong_reduction(self):
        bogus = ParametricReduction(
            name="bogus",
            source=CLIQUE,
            target=CLIQUE,
            transform=lambda inst: CliqueInstance(inst.graph, inst.k + 1),
            parameter_bound=lambda k: k + 1,
        )
        instances = [CliqueInstance(complete_graph(3), 3)]
        with pytest.raises(ReductionError):
            bogus.verify(instances)
        records = bogus.verify(instances, raise_on_failure=False)
        assert not records[0].answers_match

    def test_verify_detects_parameter_violation(self):
        bad_bound = ParametricReduction(
            name="bad-bound",
            source=CLIQUE,
            target=CLIQUE,
            transform=lambda inst: inst,
            parameter_bound=lambda k: k - 1,
        )
        instances = [CliqueInstance(complete_graph(3), 2)]
        with pytest.raises(ReductionError):
            bad_bound.verify(instances)

    def test_identity_reduction_passes(self):
        identity = ParametricReduction(
            name="id",
            source=CLIQUE,
            target=CLIQUE,
            transform=lambda inst: inst,
            parameter_bound=lambda k: k,
        )
        suite = [
            CliqueInstance(random_graph(6, 0.5, seed=s), k)
            for s in range(3)
            for k in (2, 3)
        ]
        records = identity.verify(suite)
        assert all(r.answers_match and r.bound_holds for r in records)


class TestWHierarchy:
    def test_order(self):
        assert WClass.W1 < WClass.W2 < WClass.W_SAT < WClass.W_P
        assert WClass.W_P.contains(WClass.W1)
        assert not WClass.W1.contains(WClass.W_P)

    def test_display(self):
        assert WClass.W1.display == "W[1]"
        assert WClass.W_SAT.display == "W[SAT]"

    def test_theorem1_table_contents(self):
        table = theorem1_table()
        assert table.entry("conjunctive", "q").display() == "W[1]-complete"
        assert table.entry("positive", "v").display() == "W[SAT]-hard"
        assert table.entry("first-order", "q").display() == "W[t] (all t)-hard"
        assert table.entry("first-order", "v").display() == "W[P]-hard"
        assert table.entry("acyclic+neq", "q").display() == "in FPT"
        assert len(table.rows()) == 13

    def test_figure1_partial_order(self):
        # Q_FIXED is the bottom, V_VARIABLE the top.
        assert harder_than(Q_FIXED) == {Q_VARIABLE, V_FIXED, V_VARIABLE}
        assert easier_than(V_VARIABLE) == {Q_FIXED, Q_VARIABLE, V_FIXED}
        assert harder_than(V_VARIABLE) == frozenset()
        assert easier_than(Q_FIXED) == frozenset()
        # The two middle nodes are incomparable.
        assert V_FIXED not in harder_than(Q_VARIABLE)
        assert Q_VARIABLE not in harder_than(V_FIXED)

    def test_figure1_has_four_nodes_four_arcs(self):
        assert len(FIGURE_1) == 4
        assert len(FIGURE_1_ARCS) == 4
