"""Tests for tree-decomposition heuristics and the exact oracle."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    exact_treewidth,
    min_degree_order,
    min_fill_order,
    primal_graph,
    tree_decomposition,
    verify_decomposition,
)
from repro.workloads.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)


def graph_to_hypergraph(graph) -> Hypergraph:
    return Hypergraph(graph.nodes, [set(e) for e in graph.edges()])


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", ["min_fill", "min_degree"])
    def test_path_width_one(self, heuristic):
        h = graph_to_hypergraph(path_graph(8))
        decomposition = tree_decomposition(h, heuristic=heuristic)
        assert verify_decomposition(h, decomposition)
        assert decomposition.width == 1

    @pytest.mark.parametrize("heuristic", ["min_fill", "min_degree"])
    def test_cycle_width_two(self, heuristic):
        h = graph_to_hypergraph(cycle_graph(7))
        decomposition = tree_decomposition(h, heuristic=heuristic)
        assert verify_decomposition(h, decomposition)
        assert decomposition.width == 2

    def test_clique_width(self):
        h = graph_to_hypergraph(complete_graph(5))
        decomposition = tree_decomposition(h)
        assert verify_decomposition(h, decomposition)
        assert decomposition.width == 4

    def test_grid_width_bounded(self):
        h = graph_to_hypergraph(grid_graph(3, 4))
        decomposition = tree_decomposition(h)
        assert verify_decomposition(h, decomposition)
        assert decomposition.width >= 3  # true treewidth is 3
        assert decomposition.width <= 5  # heuristic slack

    def test_hyperedges_covered(self):
        h = Hypergraph("abcd", [{"a", "b", "c"}, {"c", "d"}])
        decomposition = tree_decomposition(h)
        assert verify_decomposition(h, decomposition)

    def test_orders_cover_all_nodes(self):
        adjacency = primal_graph(graph_to_hypergraph(cycle_graph(6)))
        assert set(min_fill_order(adjacency)) == set(adjacency)
        assert set(min_degree_order(adjacency)) == set(adjacency)

    def test_unknown_heuristic(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            tree_decomposition(graph_to_hypergraph(path_graph(3)), heuristic="x")


class TestExactOracle:
    def test_exact_matches_known_values(self):
        assert exact_treewidth(primal_graph(graph_to_hypergraph(path_graph(5)))) == 1
        assert exact_treewidth(primal_graph(graph_to_hypergraph(cycle_graph(5)))) == 2
        assert (
            exact_treewidth(primal_graph(graph_to_hypergraph(complete_graph(4)))) == 3
        )

    def test_heuristics_upper_bound_exact(self):
        for make in (lambda: cycle_graph(6), lambda: grid_graph(2, 3)):
            h = graph_to_hypergraph(make())
            adjacency = primal_graph(h)
            exact = exact_treewidth(adjacency)
            heuristic = tree_decomposition(h).width
            assert heuristic >= exact
