"""Tests for terms, atoms, inequality and comparison atoms."""

import pytest

from repro.errors import QueryError
from repro.query import Atom, C, Comparison, Inequality, V, Variable, term, terms
from repro.query.terms import (
    Constant,
    constants_in,
    fresh_variable,
    substitute_term,
    variables_in,
)


class TestTerms:
    def test_string_coerces_to_variable(self):
        assert term("x") == Variable("x")

    def test_non_string_coerces_to_constant(self):
        assert term(5) == Constant(5)

    def test_explicit_string_constant(self):
        assert term(C("hello")) == Constant("hello")

    def test_passthrough(self):
        v = V("x")
        assert term(v) is v

    def test_reserved_prefix_rejected(self):
        with pytest.raises(QueryError):
            Variable("#shadow")

    def test_empty_name_rejected(self):
        with pytest.raises(QueryError):
            Variable("")

    def test_variables_in_order_and_dedup(self):
        items = terms(["x", 1, "y", "x"])
        assert variables_in(items) == (V("x"), V("y"))
        assert constants_in(items) == (C(1),)

    def test_substitute_term(self):
        assert substitute_term(V("x"), {V("x"): C(3)}) == C(3)
        assert substitute_term(C(1), {V("x"): C(3)}) == C(1)

    def test_fresh_variable(self):
        taken = [V("x"), V("x_1")]
        assert fresh_variable("x", taken) == V("x_2")
        assert fresh_variable("y", taken) == V("y")


class TestAtoms:
    def test_atom_of_convention(self):
        atom = Atom.of("R", "x", 3, "x")
        assert atom.variables() == (V("x"),)
        assert atom.constants() == (C(3),)
        assert atom.arity == 3

    def test_substitute(self):
        atom = Atom.of("R", "x", "y")
        replaced = atom.substitute({V("x"): C(1)})
        assert replaced == Atom("R", (C(1), V("y")))

    def test_empty_relation_name_rejected(self):
        with pytest.raises(QueryError):
            Atom("", ())

    def test_zero_ary_atom(self):
        atom = Atom("P", ())
        assert atom.variables() == ()
        assert atom.arity == 0


class TestInequality:
    def test_symmetric_equality(self):
        assert Inequality("x", "y") == Inequality("y", "x")
        assert hash(Inequality("x", "y")) == hash(Inequality("y", "x"))

    def test_variable_constant(self):
        ineq = Inequality("x", C(3))
        assert not ineq.is_variable_variable()
        assert isinstance(ineq.left, Variable)  # canonical orientation

    def test_constant_constant_rejected(self):
        with pytest.raises(QueryError):
            Inequality(C(1), C(2))

    def test_reflexive_rejected(self):
        with pytest.raises(QueryError):
            Inequality("x", "x")

    def test_holds(self):
        assert Inequality("x", "y").holds(1, 2)
        assert not Inequality("x", "y").holds(1, 1)

    def test_substitute(self):
        ineq = Inequality("x", "y")
        replaced = ineq.substitute({V("x"): C(3)})
        assert replaced == Inequality(C(3), V("y"))


class TestComparison:
    def test_strict_and_weak(self):
        assert Comparison("x", "y", strict=True).op == "<"
        assert Comparison("x", "y", strict=False).op == "<="

    def test_directional_not_symmetric(self):
        assert Comparison("x", "y") != Comparison("y", "x")

    def test_holds(self):
        strict = Comparison("x", "y", strict=True)
        weak = Comparison("x", "y", strict=False)
        assert strict.holds(1, 2)
        assert not strict.holds(2, 2)
        assert weak.holds(2, 2)

    def test_constant_only_rejected(self):
        with pytest.raises(QueryError):
            Comparison(C(1), C(2))

    def test_substitute(self):
        comp = Comparison("x", "y")
        replaced = comp.substitute({V("y"): C(10)})
        assert replaced == Comparison(V("x"), C(10))
