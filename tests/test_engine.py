"""Unit tests for the adaptive engine: analyzer, planner, cache, facade."""

import pytest

from repro import Database, QueryEngine, parse_query
from repro.engine import (
    ACYCLIC,
    ACYCLIC_NEQ,
    BOUNDED_TREEWIDTH,
    BOUNDED_VARIABLES,
    GENERAL,
    PlanCache,
    Planner,
    analyze,
    plan_cache_key,
    shape_signature,
)
from repro.errors import NotAcyclicError, QueryError
from repro.operations import EXECUTE, operations_of
from repro.evaluation import NaiveEvaluator
from repro.query import Atom, ConjunctiveQuery
from repro.query.atoms import Comparison, Inequality
from repro.query.terms import Variable
from repro.workloads import (
    chain_database,
    cycle_query,
    path_neq_query,
    path_query,
    star_database,
    star_query,
)


def redundant_clique_query(k: int = 5) -> ConjunctiveQuery:
    """A k-clique asked over two relations per edge: duplicate variable
    sets, cyclic, width k-1 — the parameter-v grouping class for k = 5."""
    from itertools import combinations

    variables = [Variable(f"x{i}") for i in range(k)]
    atoms = []
    for i, j in combinations(range(k), 2):
        atoms.append(Atom("E", (variables[i], variables[j])))
        atoms.append(Atom("F", (variables[i], variables[j])))
    return ConjunctiveQuery((), atoms, head_name="K")


@pytest.fixture
def clique_db() -> Database:
    rows = [(a, b) for a in range(6) for b in range(6) if a != b]
    return Database.from_tuples({"E": rows, "F": rows})


class TestAnalyzer:
    def test_acyclic_path(self):
        analysis = analyze(path_query(3))
        assert analysis.structural_class == ACYCLIC
        assert analysis.acyclic
        assert analysis.join_tree is not None
        assert analysis.width is None

    def test_cycle_is_bounded_treewidth(self):
        analysis = analyze(cycle_query(4))
        assert analysis.structural_class == BOUNDED_TREEWIDTH
        assert not analysis.acyclic
        assert analysis.width == 2
        assert analysis.decomposition is not None

    def test_threshold_excludes_wide_cycles(self):
        analysis = analyze(cycle_query(4), treewidth_threshold=1)
        assert analysis.structural_class == GENERAL

    def test_acyclic_with_inequalities(self):
        analysis = analyze(path_neq_query(3, 2, seed=1))
        assert analysis.structural_class == ACYCLIC_NEQ
        assert analysis.num_inequalities == 2

    def test_comparisons_force_general(self):
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery(
            (x,), [Atom("E", (x, y))], comparisons=[Comparison(x, y, True)]
        )
        assert analyze(query).structural_class == GENERAL

    def test_duplicate_variable_sets(self):
        query = redundant_clique_query(5)
        analysis = analyze(query)
        assert analysis.structural_class == BOUNDED_VARIABLES
        assert analysis.distinct_variable_sets == 10
        assert analysis.num_atoms == 20


class TestSignatures:
    def test_bindings_share_shape(self):
        query = path_query(3, head_arity=1)
        first = query.decision_instance((1,))
        second = query.decision_instance((7,))
        assert shape_signature(first) == shape_signature(second)
        assert shape_signature(first) != shape_signature(query)

    def test_different_relations_differ(self):
        x, y = Variable("x"), Variable("y")
        q1 = ConjunctiveQuery((x,), [Atom("R", (x, y))])
        q2 = ConjunctiveQuery((x,), [Atom("S", (x, y))])
        assert shape_signature(q1) != shape_signature(q2)

    def test_variable_renaming_is_canonical(self):
        x, y, u, v = (Variable(n) for n in "xyuv")
        q1 = ConjunctiveQuery((x,), [Atom("R", (x, y))])
        q2 = ConjunctiveQuery((u,), [Atom("R", (u, v))])
        assert shape_signature(q1) == shape_signature(q2)

    def test_inequalities_affect_shape(self):
        base = path_query(3, head_arity=1)
        x0, x2 = Variable("x0"), Variable("x2")
        with_neq = ConjunctiveQuery(
            base.head_terms, base.atoms, [Inequality(x0, x2)]
        )
        assert shape_signature(base) != shape_signature(with_neq)

    def test_schema_signature_tracks_scale(self):
        query = path_query(2)
        small = chain_database(layers=3, width=4, p=0.5, seed=1)
        large = chain_database(layers=3, width=32, p=0.5, seed=1)
        assert plan_cache_key(query, small) != plan_cache_key(query, large)
        assert plan_cache_key(query, small) == plan_cache_key(query, small)


class TestPlanCache:
    def test_hit_miss_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: no eviction
        cache.put("c", 3)  # evicts "b", the true LRU
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_clear_resets(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class CountingPlanner(Planner):
    def __init__(self):
        super().__init__()
        self.calls = 0

    def plan(self, query, database):
        self.calls += 1
        return super().plan(query, database)


class TestQueryEngine:
    def test_acyclic_dispatch_and_answers(self, edge_db):
        engine = QueryEngine()
        query = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        plan = engine.plan_for(query, edge_db)
        assert plan.evaluator == "yannakakis"
        assert plan.structural_class == ACYCLIC
        result = engine.execute(query, edge_db)
        assert result == NaiveEvaluator().evaluate(query, edge_db)

    def test_cache_hits_across_bindings(self, edge_db):
        engine = QueryEngine()
        query = parse_query("Q(x) :- E(x, y), E(y, z).")
        assert engine.contains(query, edge_db, (1,))
        assert engine.contains(query, edge_db, (2,))
        assert not engine.contains(query, edge_db, (4,))
        stats = engine.cache_stats
        assert stats.misses == 1  # one shape, planned once
        assert stats.hits == 2

    def test_planner_called_once_per_shape(self, edge_db):
        planner = CountingPlanner()
        engine = QueryEngine(planner=planner)
        query = parse_query("Q(x) :- E(x, y).")
        for _ in range(5):
            engine.execute(query, edge_db)
        assert planner.calls == 1

    def test_execute_batch_matches_individuals(self, edge_db):
        planner = CountingPlanner()
        engine = QueryEngine(planner=planner)
        query = parse_query("Q(x) :- E(x, y), E(y, z).")
        batch = [query.decision_instance((value,)) for value in (1, 2, 3, 4)]
        results = engine.run_batch(operations_of(EXECUTE, batch), edge_db)
        assert planner.calls == 1  # same shape: planned once for the batch
        reference = [
            QueryEngine().execute(member, edge_db) for member in batch
        ]
        assert results == reference

    def test_execute_batch_mixed_shapes(self, edge_db):
        engine = QueryEngine()
        queries = [
            parse_query("Q(x) :- E(x, y)."),
            parse_query("Q() :- E(x, y), E(y, z), E(z, w), E(w, x)."),
            parse_query("Q(x) :- E(x, y)."),
        ]
        results = engine.run_batch(operations_of(EXECUTE, queries), edge_db)
        assert len(results) == 3
        assert results[0] == results[2]
        naive = NaiveEvaluator()
        for query, result in zip(queries, results):
            assert result == naive.evaluate(query, edge_db)

    def test_forced_evaluator_paths(self, edge_db):
        engine = QueryEngine()
        cyclic = cycle_query(4)
        adaptive = engine.execute(cyclic, edge_db)
        forced = engine.execute(cyclic, edge_db, evaluator="naive")
        assert adaptive == forced
        with pytest.raises(NotAcyclicError):
            engine.execute(cyclic, edge_db, evaluator="yannakakis")
        with pytest.raises(QueryError):
            engine.execute(cyclic, edge_db, evaluator="no-such-engine")

    def test_explain_mentions_dispatch(self, edge_db):
        engine = QueryEngine()
        query = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        text = engine.explain(query, edge_db)
        assert "class: acyclic" in text
        assert "evaluator: yannakakis" in text
        assert "cache    : miss" in text
        assert "row ops" in text
        again = engine.explain(query, edge_db)
        assert "cache    : hit" in again

    def test_eviction_forces_replanning(self, edge_db):
        planner = CountingPlanner()
        engine = QueryEngine(plan_cache_size=1, planner=planner)
        q1 = parse_query("Q(x) :- E(x, y).")
        q2 = parse_query("Q(x) :- E(y, x).")
        engine.execute(q1, edge_db)
        engine.execute(q2, edge_db)  # evicts q1's plan
        engine.execute(q1, edge_db)  # must replan
        assert planner.calls == 3
        assert engine.cache_stats.evictions == 2

    def test_alpha_renamed_twin_reuses_plan_safely(self, edge_db):
        # Same shape, different variable names: the second query hits the
        # first one's cached plan, but must not reuse its named join tree /
        # decomposition (bags and edges are keyed by variable name).
        planner = CountingPlanner()
        engine = QueryEngine(planner=planner)
        naive = NaiveEvaluator()
        cyc1 = parse_query("Q() :- E(a, b), E(b, c), E(c, d), E(d, a).")
        cyc2 = parse_query("Q() :- E(p, q), E(q, r), E(r, s), E(s, p).")
        assert engine.execute(cyc1, edge_db) == naive.evaluate(cyc1, edge_db)
        assert engine.execute(cyc2, edge_db) == naive.evaluate(cyc2, edge_db)
        assert planner.calls == 1  # one shape, one plan
        acy1 = parse_query("Q(x) :- E(x, y), E(y, z).")
        acy2 = parse_query("Q(u) :- E(u, v), E(v, w).")
        assert engine.execute(acy1, edge_db) == engine.execute(acy2, edge_db)
        assert engine.execute(acy2, edge_db) == naive.evaluate(acy2, edge_db)

    def test_bounded_variables_execution(self, clique_db):
        engine = QueryEngine()
        query = redundant_clique_query(5)
        plan = engine.plan_for(query, clique_db)
        assert plan.structural_class == BOUNDED_VARIABLES
        result = engine.execute(query, clique_db)
        assert result == NaiveEvaluator().evaluate(query, clique_db)
        assert engine.decide(query, clique_db)

    def test_inequality_class_execution(self):
        engine = QueryEngine()
        database = chain_database(layers=4, width=6, p=0.5, seed=2)
        query = path_neq_query(3, 2, seed=1)
        plan = engine.plan_for(query, database)
        assert plan.structural_class == ACYCLIC_NEQ
        assert plan.evaluator in ("naive", "inequality")
        assert engine.execute(query, database) == NaiveEvaluator().evaluate(
            query, database
        )

    def test_star_dispatch(self):
        engine = QueryEngine()
        database = star_database(3, 8, seed=0)
        query = star_query(3)
        assert engine.plan_for(query, database).evaluator == "yannakakis"
        assert engine.execute(query, database) == NaiveEvaluator().evaluate(
            query, database
        )


class TestNaiveAtomOrderOverride:
    def test_explicit_order_same_answers(self, edge_db):
        naive = NaiveEvaluator()
        query = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        default = naive.evaluate(query, edge_db)
        assert naive.evaluate(query, edge_db, atom_order=(1, 0)) == default
        assert naive.evaluate(query, edge_db, atom_order=(0, 1)) == default

    def test_invalid_order_rejected(self, edge_db):
        naive = NaiveEvaluator()
        query = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        with pytest.raises(QueryError):
            naive.evaluate(query, edge_db, atom_order=(0, 0))
        with pytest.raises(QueryError):
            naive.evaluate(query, edge_db, atom_order=(0,))
