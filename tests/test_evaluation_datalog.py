"""Tests for Datalog evaluation: naive, semi-naive, and the CQ-oracle route."""

import pytest

from repro.errors import QueryError
from repro.evaluation import DatalogEvaluator, NaiveEvaluator
from repro.query import parse_program
from repro.relational import Database
from repro.reductions import evaluate_via_cq_oracle, naive_cq_oracle, w1_cq_oracle


@pytest.fixture
def edges():
    return Database.from_tuples({"E": [(1, 2), (2, 3), (3, 4)]})


@pytest.fixture
def transitive():
    return parse_program(
        """
        T(x, y) :- E(x, y).
        T(x, y) :- E(x, z), T(z, y).
        """
    )


class TestFixpoints:
    def test_transitive_closure(self, transitive, edges):
        result = DatalogEvaluator().evaluate(transitive, edges)
        assert result.rows == frozenset(
            {(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)}
        )

    def test_naive_and_seminaive_agree(self, transitive, edges):
        evaluator = DatalogEvaluator()
        naive = evaluator.evaluate(transitive, edges, method="naive")
        semi = evaluator.evaluate(transitive, edges, method="seminaive")
        assert naive == semi

    def test_unknown_method(self, transitive, edges):
        with pytest.raises(QueryError):
            DatalogEvaluator().evaluate(transitive, edges, method="magic")

    def test_cycle_terminates(self):
        program = parse_program(
            "T(x, y) :- E(x, y). T(x, y) :- E(x, z), T(z, y)."
        )
        db = Database.from_tuples({"E": [(1, 2), (2, 1)]})
        result = DatalogEvaluator().evaluate(program, db)
        assert result.rows == frozenset({(1, 2), (2, 1), (1, 1), (2, 2)})

    def test_multiple_idbs(self):
        program = parse_program(
            """
            A(x) :- S(x).
            B(x) :- A(x), R(x).
            """,
            goal="B",
        )
        db = Database.from_tuples({"S": [(1,), (2,)], "R": [(2,), (3,)]})
        fixpoint = DatalogEvaluator().fixpoint(program, db)
        assert fixpoint["A"].rows == frozenset({(1,), (2,)})
        assert fixpoint["B"].rows == frozenset({(2,)})

    def test_constants_in_rules(self):
        program = parse_program("T(x) :- E(1, x). T(x) :- E(x, 4), T(x).")
        db = Database.from_tuples({"E": [(1, 2), (2, 4), (1, 4)]})
        result = DatalogEvaluator().evaluate(program, db)
        assert result.rows == frozenset({(2,), (4,)})

    def test_same_generation(self):
        program = parse_program(
            """
            SG(x, y) :- F(p, x), F(p, y).
            SG(x, y) :- F(p, x), F(q, y), SG(p, q).
            """
        )
        db = Database.from_tuples(
            {"F": [(1, 2), (1, 3), (2, 4), (3, 5)]}
        )
        result = DatalogEvaluator().evaluate(program, db)
        assert (4, 5) in result
        assert (2, 3) in result
        assert (2, 5) not in result


class TestCQOracleRoute:
    def test_oracle_route_matches_engine(self, transitive, edges):
        direct = DatalogEvaluator().evaluate(transitive, edges)
        via_oracle, stats = evaluate_via_cq_oracle(transitive, edges)
        assert direct.rows == via_oracle.rows
        assert stats.calls > 0

    def test_w1_oracle_agrees_with_naive_oracle(self, transitive, edges):
        via_naive, _ = evaluate_via_cq_oracle(transitive, edges, naive_cq_oracle)
        via_w1, _ = evaluate_via_cq_oracle(transitive, edges, w1_cq_oracle)
        assert via_naive.rows == via_w1.rows

    def test_oracle_call_count_polynomial(self, transitive, edges):
        _, stats = evaluate_via_cq_oracle(transitive, edges)
        n = len(edges.domain())
        r = transitive.max_arity()
        rules = len(transitive.rules)
        # stages ≤ n^r + 1 (one confirming stage), calls ≤ stages·rules·n^r.
        assert stats.stages <= n ** r + 1
        assert stats.calls <= stats.stages * rules * n ** r

    def test_oracle_parameter_bounded_by_program(self, transitive, edges):
        _, stats = evaluate_via_cq_oracle(transitive, edges)
        assert stats.max_parameter_v <= transitive.max_rule_variables()


class TestBatchedRuleBodies:
    """Semi-naive rounds hand ALL rule bodies to the engine as one
    ``run_batch`` call — one snapshot per round, never per rule."""

    class RecordingEngine:
        """Wraps an engine, recording every batch/single evaluation."""

        def __init__(self, engine):
            self._engine = engine
            self.batch_calls = []
            self.single_calls = 0

        def execute(self, query, database):
            self.single_calls += 1
            return self._engine.execute(query, database)

        def run_batch(self, operations, database):
            self.batch_calls.append(len(operations))
            return self._engine.run_batch(operations, database)

    def test_seminaive_routes_rounds_through_execute_batch(self, edges):
        from repro import QueryEngine
        from repro.query import parse_program

        program = parse_program(
            """
            T(x, y) :- E(x, y).
            T(x, y) :- E(x, z), T(z, y).
            S(x) :- T(x, x).
            S(x) :- T(x, y), E(y, x).
            """
        )
        with QueryEngine(max_workers=1) as engine:
            recording = self.RecordingEngine(engine)
            batched = DatalogEvaluator(rule_engine=recording).fixpoint(
                program, edges
            )
            reference = DatalogEvaluator(
                rule_engine=NaiveEvaluator()
            ).fixpoint(program, edges)
        assert {n: r.rows for n, r in batched.items()} == {
            n: r.rows for n, r in reference.items()
        }
        # First round: all 4 rule bodies in ONE call; every delta round
        # batches its delta-instantiated bodies too.
        assert recording.batch_calls and recording.batch_calls[0] == 4
        assert recording.single_calls == 0

    def test_naive_evaluator_satisfies_the_batch_interface(self, transitive, edges):
        evaluator = DatalogEvaluator(rule_engine=NaiveEvaluator())
        assert evaluator._evaluate_batch is not None
        semi = evaluator.evaluate(transitive, edges, method="seminaive")
        naive = evaluator.evaluate(transitive, edges, method="naive")
        assert semi == naive

    def test_engines_without_run_batch_are_rejected_loudly(self, edges):
        """Regression: a rule engine missing ``run_batch`` used to degrade
        silently to sequential per-rule evaluation (the pre-operation-API
        legacy fallback); it must be a typed construction-time error."""

        class ExecuteOnlyEngine:
            def execute(self, query, database):  # pragma: no cover - never run
                raise AssertionError("construction should already have failed")

        with pytest.raises(QueryError, match="run_batch"):
            DatalogEvaluator(rule_engine=ExecuteOnlyEngine())
