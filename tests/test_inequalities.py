"""Theorem 2 tests: partition, hash families, Algorithms 1–2, evaluator."""

import random

import pytest

from repro.errors import NotAcyclicError, QueryError
from repro.inequalities import (
    AcyclicInequalityEvaluator,
    ExhaustiveHashFamily,
    GreedyPerfectHashFamily,
    RandomHashFamily,
    build_engine,
    is_perfect_family,
    partition_inequalities,
)
from repro.query import parse_query
from repro.relational import Database
from repro.relational.schema import DatabaseSchema
from repro.workloads import (
    employees_projects_database,
    employees_projects_query,
    path_neq_query,
    random_acyclic_query,
    random_database,
    students_courses_database,
    students_courses_query,
)


class TestPartition:
    def test_i1_versus_i2(self):
        q = parse_query(
            "Q() :- E(x, y), E(y, z), x != z, x != y, y != 3."
        )
        partition = partition_inequalities(q)
        assert len(partition.i1) == 1  # x != z (never co-occur)
        assert len(partition.i2) == 2  # x != y (co-occur), y != 3 (constant)
        assert {v.name for v in partition.v1} == {"x", "z"}
        assert partition.k == 2

    def test_partners(self):
        q = parse_query("Q() :- E(x, y), E(y, z), E(z, w), x != z, x != w.")
        partition = partition_inequalities(q)
        partners = partition.partners()
        from repro.query import V

        assert partners[V("x")] == frozenset({V("z"), V("w")})

    def test_comparisons_rejected(self):
        q = parse_query("Q() :- E(x, y), x < y.")
        with pytest.raises(QueryError):
            partition_inequalities(q)

    def test_no_inequalities(self):
        q = parse_query("Q() :- E(x, y).")
        partition = partition_inequalities(q)
        assert partition.k == 0


class TestHashFamilies:
    def test_greedy_family_is_perfect(self):
        domain = list(range(10))
        for k in (2, 3):
            family = list(GreedyPerfectHashFamily(seed=1).functions(domain, k))
            assert is_perfect_family(family, domain, k)

    def test_greedy_small_domain_injective(self):
        family = list(GreedyPerfectHashFamily().functions([1, 2], 3))
        assert len(family) == 1
        assert len(set(family[0].values())) == 2

    def test_exhaustive_family_is_perfect(self):
        domain = [1, 2, 3, 4]
        family = list(ExhaustiveHashFamily().functions(domain, 2))
        assert len(family) == 16
        assert is_perfect_family(family, domain, 2)

    def test_exhaustive_size_guard(self):
        from repro.inequalities import HashFamilyError

        with pytest.raises(HashFamilyError):
            list(ExhaustiveHashFamily(max_functions=10).functions(range(20), 3))

    def test_random_family_trial_count(self):
        family = RandomHashFamily(confidence=2.0, seed=0)
        assert family.trials_for(3) >= int(2.0 * 2.718 ** 3)

    def test_k1_trivial(self):
        for strategy in (
            RandomHashFamily(),
            GreedyPerfectHashFamily(),
            ExhaustiveHashFamily(),
        ):
            family = list(strategy.functions([1, 2, 3], 1))
            assert len(family) == 1


class TestEngineStructure:
    def test_w_sets_path_query(self):
        q = parse_query("Q() :- E(x, y), E(y, z), x != z.")
        db = Database.from_tuples({"E": [(1, 2)]})
        engine = build_engine(q, db)
        # Some node must carry a hashed attribute for the far endpoint.
        all_w = set()
        for j in engine.tree.nodes():
            all_w |= set(engine.w_sets[j])
        assert all_w  # nonempty on this query

    def test_y_sets_contain_u_and_hashes(self):
        q = parse_query("Q() :- E(x, y), E(y, z), x != z.")
        db = Database.from_tuples({"E": [(1, 2)]})
        engine = build_engine(q, db)
        for j in engine.tree.nodes():
            names = {v.name for v in engine.atom_vars(j)}
            assert names <= engine.y_sets[j]

    def test_cyclic_query_rejected(self):
        q = parse_query("Q() :- E(x, y), E(y, z), E(z, x), x != z.")
        db = Database.from_tuples({"E": [(1, 2)]})
        with pytest.raises(NotAcyclicError):
            build_engine(q, db)


class TestEvaluatorAgainstNaive:
    def test_paper_example_employees(self, naive, theorem2):
        q = employees_projects_query()
        db = employees_projects_database(seed=5)
        assert theorem2.evaluate(q, db) == naive.evaluate(q, db)

    def test_paper_example_students(self, naive, theorem2):
        q = students_courses_query()
        db = students_courses_database(seed=6)
        assert theorem2.evaluate(q, db) == naive.evaluate(q, db)

    def test_no_inequalities_degrades_to_acyclic(self, naive, theorem2):
        q = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        db = Database.from_tuples({"E": [(1, 2), (2, 3), (3, 4)]})
        assert theorem2.evaluate(q, db) == naive.evaluate(q, db)

    def test_i2_only(self, naive, theorem2):
        q = parse_query("Q(x) :- E(x, y), x != y, y != 2.")
        db = Database.from_tuples({"E": [(1, 1), (1, 2), (1, 3), (2, 2)]})
        assert theorem2.evaluate(q, db) == naive.evaluate(q, db)

    def test_unsatisfiable_inequality_chain(self, naive, theorem2):
        # x != z over a database where paths force x == z.
        q = parse_query("Q() :- E(x, y), E(y, z), x != z.")
        db = Database.from_tuples({"E": [(1, 2), (2, 1)]})
        assert not theorem2.decide(q, db)
        assert not naive.decide(q, db)

    def test_contains(self, naive, theorem2):
        q = employees_projects_query()
        db = employees_projects_database(seed=7)
        for candidate in [("e1",), ("e2",), ("nobody",)]:
            assert theorem2.contains(q, db, candidate) == naive.contains(
                q, db, candidate
            )

    def test_path_neq_queries(self, naive, theorem2):
        rng = random.Random(17)
        for trial in range(15):
            query = path_neq_query(
                length=rng.randint(1, 4),
                neq_pairs=rng.randint(0, 3),
                seed=rng.randrange(1 << 30),
            )
            edges = [
                (rng.randrange(5), rng.randrange(5)) for _ in range(12)
            ]
            db = Database.from_tuples({"E": edges})
            assert theorem2.evaluate(query, db) == naive.evaluate(query, db)

    def test_random_acyclic_neq_queries(self, naive, theorem2):
        rng = random.Random(23)
        for trial in range(20):
            query = random_acyclic_query(
                num_atoms=rng.randint(1, 4),
                max_arity=3,
                num_inequalities=rng.randint(0, 3),
                seed=rng.randrange(1 << 30),
            )
            schema = DatabaseSchema.of(
                **{a.relation: a.arity for a in query.atoms}
            )
            db = random_database(
                schema, domain_size=4, tuples_per_relation=10,
                seed=rng.randrange(1 << 30),
            )
            assert theorem2.evaluate(query, db) == naive.evaluate(query, db)

    def test_exhaustive_family_oracle(self, naive):
        evaluator = AcyclicInequalityEvaluator(ExhaustiveHashFamily())
        q = parse_query("Q(x) :- E(x, y), E(y, z), x != z.")
        db = Database.from_tuples({"E": [(1, 2), (2, 3), (2, 1), (3, 1)]})
        assert evaluator.evaluate(q, db) == naive.evaluate(q, db)

    def test_monte_carlo_never_false_positive(self, naive):
        evaluator = AcyclicInequalityEvaluator(RandomHashFamily(confidence=1.0, seed=3))
        rng = random.Random(29)
        for trial in range(10):
            query = path_neq_query(2, 1, seed=trial)
            edges = [(rng.randrange(4), rng.randrange(4)) for _ in range(8)]
            db = Database.from_tuples({"E": edges})
            if evaluator.decide(query, db):
                assert naive.decide(query, db)

    def test_monte_carlo_high_confidence_finds_answers(self, naive):
        evaluator = AcyclicInequalityEvaluator(
            RandomHashFamily(confidence=6.0, seed=11)
        )
        q = employees_projects_query()
        db = employees_projects_database(seed=8)
        assert evaluator.decide(q, db) == naive.decide(q, db)


class TestOutputSensitivity:
    def test_large_output_collected(self, naive, theorem2):
        # Many employees on two projects each: output is large, engine must
        # union across hash functions without losing tuples.
        rows = []
        for e in range(25):
            rows.append((f"e{e}", "pa"))
            rows.append((f"e{e}", "pb"))
        db = Database.from_tuples({"EP": rows})
        q = employees_projects_query()
        result = theorem2.evaluate(q, db)
        assert result.cardinality == 25
        assert result == naive.evaluate(q, db)
