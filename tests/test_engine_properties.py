"""Property tests: the adaptive engine agrees with every applicable
evaluator on randomized acyclic and cyclic queries.

The engine's whole contract is that dispatch is invisible: whatever the
planner picks, ``execute`` returns exactly what the generic backtracking
oracle returns, and — where their preconditions hold — what Yannakakis,
the treewidth evaluator, and the Theorem 2 machinery return.
"""

import random

import pytest

from repro import Database, QueryEngine
from repro.evaluation import (
    NaiveEvaluator,
    TreewidthEvaluator,
    YannakakisEvaluator,
)
from repro.inequalities import AcyclicInequalityEvaluator
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads import (
    chain_database,
    cycle_query,
    path_neq_query,
    random_acyclic_query,
    random_database,
    random_graph,
)


def database_for(query, domain_size: int, tuples: int, seed: int) -> Database:
    schema = DatabaseSchema(
        RelationSchema(atom.relation, atom.arity) for atom in query.atoms
    )
    return random_database(schema, domain_size, tuples, seed=seed)


def graph_database(n: int, p: float, seed: int) -> Database:
    edges = list(random_graph(n, p, seed=seed).edges())
    rows = edges + [(b, a) for a, b in edges]
    return Database.from_tuples({"E": rows or [(0, 0)]})


class TestAcyclicAgreement:
    @pytest.mark.parametrize("seed", range(12))
    def test_engine_matches_all_applicable_evaluators(self, seed):
        rng = random.Random(seed)
        query = random_acyclic_query(
            num_atoms=rng.randint(2, 5),
            max_arity=3,
            num_inequalities=0,
            seed=seed,
            head_arity=rng.randint(0, 2),
        )
        database = database_for(query, domain_size=6, tuples=25, seed=seed)
        engine = QueryEngine()
        reference = NaiveEvaluator().evaluate(query, database)
        assert engine.execute(query, database) == reference
        assert YannakakisEvaluator().evaluate(query, database) == reference
        assert TreewidthEvaluator().evaluate(query, database) == reference
        assert engine.decide(query, database) == (not reference.is_empty())

    @pytest.mark.parametrize("seed", range(8))
    def test_engine_matches_on_inequality_queries(self, seed):
        query = path_neq_query(3 + seed % 3, 1 + seed % 2, seed=seed)
        assert query.inequalities
        database = chain_database(
            layers=len(query.atoms) + 1, width=5, p=0.5, seed=seed
        )
        engine = QueryEngine()
        reference = NaiveEvaluator().evaluate(query, database)
        assert engine.execute(query, database) == reference
        assert (
            AcyclicInequalityEvaluator().evaluate(query, database) == reference
        )


class TestCyclicAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_cycles_match_naive_and_treewidth(self, seed):
        rng = random.Random(seed)
        length = rng.randint(3, 5)
        query = cycle_query(length)
        database = graph_database(n=10, p=0.4, seed=seed)
        engine = QueryEngine()
        reference = NaiveEvaluator().evaluate(query, database)
        assert engine.execute(query, database) == reference
        assert TreewidthEvaluator().evaluate(query, database) == reference
        assert engine.decide(query, database) == (not reference.is_empty())


class TestParameterizedAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_contains_matches_naive_across_bindings(self, seed):
        query = random_acyclic_query(
            num_atoms=3, max_arity=2, num_inequalities=0, seed=seed, head_arity=1
        )
        database = database_for(query, domain_size=5, tuples=20, seed=seed)
        engine = QueryEngine()
        naive = NaiveEvaluator()
        for candidate in sorted(database.domain()):
            assert engine.contains(query, database, (candidate,)) == (
                naive.contains(query, database, (candidate,))
            ), f"seed={seed}, candidate={candidate}"
        # One shape -> one plan for the whole candidate sweep.
        assert engine.cache_stats.misses <= 2
