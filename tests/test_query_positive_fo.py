"""Tests for positive and first-order query ASTs and normal forms."""

import pytest

from repro.errors import QueryError
from repro.query import (
    And,
    Atom,
    AtomFormula,
    Exists,
    FirstOrderQuery,
    Forall,
    Not,
    Or,
    PositiveQuery,
    V,
    prenex_formula,
    to_nnf,
    to_prenex,
)
from repro.query.builders import and_, atom, exists, forall, lift, not_, or_


def r(x, y):
    return AtomFormula(Atom.of("R", x, y))


class TestFormulaBasics:
    def test_free_variables(self):
        f = Exists("y", And((r("x", "y"), r("y", "z"))))
        assert f.free_variables() == {V("x"), V("z")}

    def test_variable_names_include_bound(self):
        f = Exists("y", r("x", "y"))
        assert f.variable_names() == {"x", "y"}

    def test_connectives_flatten(self):
        f = And((And((r("a", "b"), r("b", "c"))), r("c", "d")))
        assert len(f.children) == 3

    def test_size(self):
        assert r("x", "y").size() == 3
        assert Not(r("x", "y")).size() == 4
        assert Exists("x", r("x", "y")).size() == 5

    def test_is_positive(self):
        assert Exists("x", Or((r("x", "y"), r("y", "x")))).is_positive()
        assert not Not(r("x", "y")).is_positive()
        assert not Forall("x", r("x", "y")).is_positive()

    def test_atoms_collects_occurrences(self):
        f = And((r("x", "y"), r("x", "y")))
        assert len(f.atoms()) == 2


class TestSubstitution:
    def test_bound_variable_not_substituted(self):
        f = Exists("x", r("x", "y"))
        replaced = f.substitute({V("x"): V("w")})
        assert replaced == f

    def test_capture_avoidance(self):
        # ∃x R(x, y) [y := x] must not capture x.
        f = Exists("x", r("x", "y"))
        replaced = f.substitute({V("y"): V("x")})
        assert isinstance(replaced, Exists)
        assert replaced.variable != V("x")
        inner_atom = replaced.operand.atom
        assert inner_atom.terms[1] == V("x")  # the substituted free x
        assert inner_atom.terms[0] == replaced.variable


class TestNNF:
    def test_double_negation(self):
        assert to_nnf(Not(Not(r("x", "y")))) == r("x", "y")

    def test_de_morgan_and(self):
        f = to_nnf(Not(And((r("x", "y"), r("y", "x")))))
        assert isinstance(f, Or)
        assert all(isinstance(c, Not) for c in f.children)

    def test_quantifier_duality(self):
        f = to_nnf(Not(Forall("x", r("x", "y"))))
        assert isinstance(f, Exists)
        assert isinstance(f.operand, Not)

    def test_nnf_idempotent(self):
        f = Not(Or((r("x", "y"), Not(Forall("z", r("z", "y"))))))
        once = to_nnf(f)
        assert to_nnf(once) == once


class TestPrenex:
    def test_simple_pull(self):
        f = And((Exists("x", r("x", "y")), Exists("z", r("z", "y"))))
        prefix, matrix = to_prenex(f)
        assert [q for q, _ in prefix] == ["E", "E"]
        assert matrix.free_variables() >= {V("y")}

    def test_renaming_apart(self):
        # Reused bound name x must be renamed in the prefix.
        f = And((Exists("x", r("x", "y")), Exists("x", r("y", "x"))))
        prefix, _matrix = to_prenex(f)
        names = [v.name for _, v in prefix]
        assert len(set(names)) == 2

    def test_universal_flip_under_negation(self):
        f = Not(Exists("x", r("x", "y")))
        prefix, matrix = to_prenex(f)
        assert prefix[0][0] == "A"
        assert isinstance(matrix, Not)

    def test_prenex_formula_roundtrip_structure(self):
        f = Exists("x", Forall("z", r("x", "z")))
        prefix, matrix = to_prenex(f)
        rebuilt = prenex_formula(prefix, matrix)
        assert rebuilt == f


class TestPositiveQuery:
    def test_requires_positive_formula(self):
        with pytest.raises(QueryError):
            PositiveQuery((), Not(r("x", "y")))

    def test_head_must_match_free_variables(self):
        f = r("x", "y")
        with pytest.raises(QueryError):
            PositiveQuery(("x",), f)
        q = PositiveQuery(("x", "y"), f)
        assert q.head_variables() == (V("x"), V("y"))

    def test_num_variables_counts_names_once(self):
        f = Or((Exists("u", r("x", "u")), Exists("u", r("u", "x"))))
        q = PositiveQuery(("x",), f)
        assert q.num_variables() == 2  # x and u

    def test_is_prenex(self):
        prenexed = PositiveQuery((), Exists("x", Exists("y", r("x", "y"))))
        assert prenexed.is_prenex()
        nested = PositiveQuery(
            (), And((Exists("x", Exists("y", r("x", "y"))),))
        )
        assert not nested.is_prenex() or isinstance(nested.formula, Exists)

    def test_to_prenex_preserves_positivity(self):
        f = And((Exists("u", r("x", "u")), Exists("w", r("x", "w"))))
        q = PositiveQuery(("x",), f)
        assert q.to_prenex().is_prenex()

    def test_union_of_cqs_counts_disjuncts(self):
        f = Exists("y", Or((r("x", "y"), r("y", "x"))))
        q = PositiveQuery(("x",), f)
        cqs = q.to_union_of_conjunctive_queries()
        assert len(cqs) == 2

    def test_union_of_cqs_distributes(self):
        # (a ∨ b) ∧ (c ∨ d) has 4 disjuncts.
        f = Exists(
            "y",
            And(
                (
                    Or((r("x", "y"), r("y", "x"))),
                    Or((AtomFormula(Atom.of("S", "x")), AtomFormula(Atom.of("T", "x")))),
                )
            ),
        )
        q = PositiveQuery(("x",), f)
        assert len(q.to_union_of_conjunctive_queries()) == 4

    def test_unsafe_disjunct_rejected(self):
        # Q(x) := R(x,y) ∨ S(z) — second disjunct misses x.
        f = Or((Exists("y", r("x", "y")), Exists("z", AtomFormula(Atom.of("S", "z", "x")))))
        ok = PositiveQuery(("x",), f)
        assert len(ok.to_union_of_conjunctive_queries()) == 2
        # a disjunct like S(x) alone is still safe; construct a
        # genuinely unsafe one:
        from repro.query.first_order import Exists as E

        unsafe = PositiveQuery(
            ("x",),
            Or((r("x", "x"), Exists("x", AtomFormula(Atom.of("S", "x"))))),
        )
        # Free vars: x in first disjunct only; prenexing renames bound x,
        # leaving the second disjunct without the head variable.
        with pytest.raises(QueryError):
            unsafe.to_union_of_conjunctive_queries()


class TestFirstOrderQuery:
    def test_head_free_variable_match(self):
        with pytest.raises(QueryError):
            FirstOrderQuery((), r("x", "y"))
        q = FirstOrderQuery(("x", "y"), r("x", "y"))
        assert not q.is_boolean()

    def test_decision_instance_substitutes(self):
        q = FirstOrderQuery(("x",), Exists("y", r("x", "y")))
        decided = q.decision_instance((3,))
        assert decided.is_boolean()
        assert decided.formula.free_variables() == frozenset()

    def test_num_variables_counts_reused_names_once(self):
        inner = Exists("y", r("x", "y"))
        f = Exists("x", And((lift(Atom.of("S", "x")), inner)))
        q = FirstOrderQuery((), f)
        assert q.num_variables() == 2


class TestBuilders:
    def test_builder_shorthand(self):
        f = exists("x", and_(atom("R", "x", "y"), not_(atom("S", "x"))))
        assert f.free_variables() == {V("y")}
        g = forall("y", or_(atom("R", "x", "y"), atom("S", "y")))
        assert g.free_variables() == {V("x")}

    def test_single_child_passthrough(self):
        single = and_(atom("R", "x", "y"))
        assert isinstance(single, AtomFormula)
