"""Chaos suite: injected faults against a live server, invariants checked.

Every scenario drives a real TCP server through a deterministic
:class:`~repro.resilience.FaultPlan` and asserts the two invariants the
resilience layer promises:

* **no request is silently lost or hangs** — every outcome is either the
  byte-correct result or a typed error, under a hard ``wait_for`` bound;
* **the system keeps serving** — after the fault, a follow-up request on
  a surviving (or fresh) connection returns the byte-correct result.
"""

import asyncio
import random
import time

import pytest

from repro import Database, QueryEngine, parse_query
from repro.errors import ConnectionLostError, RetryExhaustedError
from repro.protocol import AsyncQueryClient, QueryServer, RemoteQueryError
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.faults import FAULTS_ENV_VAR
from repro.workloads import chain_database
from repro.workloads.queries import path_query

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

WAIT = 30  # hard bound: nothing in this suite may hang


@pytest.fixture(scope="module")
def chain_db():
    return chain_database(layers=5, width=24, p=0.3, seed=7)


@pytest.fixture(scope="module")
def fast_query():
    return path_query(3, head_arity=1)


@pytest.fixture(scope="module")
def reference(chain_db, fast_query):
    return QueryEngine(parallel=False).execute(fast_query, chain_db)


def adversarial():
    """A cyclic 6-atom query over a dense graph: seconds of naive search."""
    rng = random.Random(11)
    rows = {(rng.randrange(60), rng.randrange(60)) for _ in range(1400)}
    database = Database.from_tuples({"E": sorted(rows)})
    query = parse_query(
        "Q(x1) :- E(x1, x2), E(x2, x3), E(x3, x4), E(x4, x5), "
        "E(x5, x6), E(x6, x1)."
    )
    return query, database


def run(coroutine):
    return asyncio.run(coroutine)


class TestWorkerCrashRecovery:
    def test_pool_crash_under_live_traffic_is_transparent(
        self, chain_db, fast_query, reference, monkeypatch
    ):
        """A worker-pool crash mid-query respawns + retries; the caller
        sees the byte-correct result, never an error."""
        plan = FaultPlan({"pool.worker_crash": {"times": 1}})
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_env())

        async def main():
            # The server's service and engine construct their pools under
            # the patched environment, so the crash lands in real
            # evaluation machinery, not a test double.
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    results = [
                        await asyncio.wait_for(
                            client.execute(fast_query, "chain"), WAIT
                        )
                        for _ in range(3)
                    ]
                recovered = sum(
                    pool.recoveries for pool in _service_pools(server.service)
                )
            return results, recovered

        results, recovered = run(main())
        assert all(result == reference for result in results)
        assert recovered >= 1


def _service_pools(service):
    """Every WorkerPool reachable from a service (dispatch + engine)."""
    pools = [service._pool]
    engine_pool = getattr(service.engine, "_pool", None)
    if engine_pool is not None:
        pools.append(engine_pool)
    return pools


class TestTransportFaults:
    def test_delayed_response_keeps_pipelining_correct(
        self, chain_db, fast_query, reference
    ):
        plan = FaultPlan({"server.delay": {"after": 1, "times": 1, "delay": 0.2}})

        async def main():
            async with QueryServer({"chain": chain_db}, fault_plan=plan) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    tasks = [
                        asyncio.ensure_future(client.execute(fast_query, "chain"))
                        for _ in range(3)
                    ]
                    return await asyncio.wait_for(asyncio.gather(*tasks), WAIT)

        results = run(main())
        assert results == [reference] * 3
        assert plan.fired("server.delay") == 1

    def test_dropped_connection_fails_typed_then_retry_recovers(
        self, chain_db, fast_query, reference
    ):
        plan = FaultPlan({"server.drop": {"after": 1, "times": 1}})

        async def main():
            async with QueryServer({"chain": chain_db}, fault_plan=plan) as server:
                host, port = server.address
                # Without retry: the dropped response surfaces as the
                # typed connection loss, never a hang or a wrong answer.
                bare = await AsyncQueryClient.connect(host, port)
                assert await bare.ping()
                with pytest.raises((ConnectionLostError, ConnectionError)):
                    await asyncio.wait_for(bare.execute(fast_query, "chain"), WAIT)
                await bare.aclose()
                # With retry: the same fault heals transparently.
                plan2 = FaultPlan({"server.drop": {"after": 1, "times": 1}})
                server._faults = plan2
                retrying = await AsyncQueryClient.connect(
                    host, port, retry=RetryPolicy(max_attempts=4, base_delay=0.01),
                    rng=random.Random(3),
                )
                assert await retrying.ping()
                result = await asyncio.wait_for(
                    retrying.execute(fast_query, "chain"), WAIT
                )
                reconnects = retrying.reconnects
                await retrying.aclose()
            return result, reconnects

        result, reconnects = run(main())
        assert result == reference
        assert reconnects >= 1

    def test_torn_frame_fails_loudly_never_truncated(
        self, chain_db, fast_query, reference
    ):
        plan = FaultPlan({"server.torn_frame": {"after": 1, "times": 1}})

        async def main():
            async with QueryServer({"chain": chain_db}, fault_plan=plan) as server:
                host, port = server.address
                bare = await AsyncQueryClient.connect(host, port)
                assert await bare.ping()
                # Half a frame must never decode into a result: the
                # client fails with the typed connection loss instead.
                with pytest.raises((ConnectionLostError, ConnectionError)):
                    await asyncio.wait_for(bare.execute(fast_query, "chain"), WAIT)
                await bare.aclose()
                # A fresh connection gets the byte-correct answer.
                async with await AsyncQueryClient.connect(host, port) as client:
                    result = await asyncio.wait_for(
                        client.execute(fast_query, "chain"), WAIT
                    )
            return result

        assert run(main()) == reference


class TestCancellationOverTheWire:
    def test_cancel_op_tears_down_inflight_request(self, chain_db, fast_query):
        slow_query, slow_db = adversarial()

        async def main():
            async with QueryServer(
                {"slow": slow_db, "chain": chain_db}, parallel=False
            ) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    task = asyncio.ensure_future(client.execute(slow_query, "slow"))
                    await asyncio.sleep(0.15)  # request reaches the engine
                    (target,) = client.pending_ids()
                    cancelled = await asyncio.wait_for(client.cancel(target), WAIT)
                    with pytest.raises(RemoteQueryError) as excinfo:
                        await asyncio.wait_for(task, WAIT)
                    # The connection survives and the lane is free: a
                    # fast query completes promptly.
                    started = time.monotonic()
                    result = await asyncio.wait_for(
                        client.execute(fast_query, "chain"), WAIT
                    )
                    elapsed = time.monotonic() - started
                    stats = await client.stats()
            return cancelled, excinfo.value, result, elapsed, stats

        cancelled, error, result, elapsed, stats = run(main())
        assert cancelled is True
        assert error.code == "cancelled"
        assert len(result.rows) >= 0  # decoded — a real relation came back
        assert elapsed < 10  # did not queue behind the cancelled query
        assert stats["transport"]["cancel_requests"] == 1
        assert stats["service"]["cancelled"] >= 1

    def test_cancelling_a_finished_request_is_false_not_an_error(self, chain_db):
        async def main():
            async with QueryServer({"chain": chain_db}) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    assert await client.ping()  # id 1, already answered
                    return await asyncio.wait_for(client.cancel(1), WAIT)

        assert run(main()) is False

    def test_deadline_aborts_over_the_wire_within_budget(
        self, chain_db, fast_query
    ):
        slow_query, slow_db = adversarial()
        deadline = 0.3

        async def main():
            async with QueryServer(
                {"slow": slow_db, "chain": chain_db}, parallel=False
            ) as server:
                host, port = server.address
                async with await AsyncQueryClient.connect(host, port) as client:
                    started = time.monotonic()
                    with pytest.raises(RemoteQueryError) as excinfo:
                        await asyncio.wait_for(
                            client.execute(slow_query, "slow", deadline=deadline),
                            WAIT,
                        )
                    elapsed = time.monotonic() - started
                    result = await asyncio.wait_for(
                        client.execute(fast_query, "chain"), WAIT
                    )
                    stats = await client.stats()
            return excinfo.value, elapsed, result, stats

        error, elapsed, result, stats = run(main())
        assert error.code == "deadline_exceeded"
        assert elapsed < deadline * 2 + 0.3  # ~2x budget plus transport slack
        assert result.arity == 1
        assert stats["service"]["deadline_exceeded"] == 1


class TestConnectionLimits:
    def test_busy_rejection_is_typed_and_retry_waits_it_out(self, chain_db):
        async def main():
            async with QueryServer(
                {"chain": chain_db}, max_connections=1
            ) as server:
                host, port = server.address
                first = await AsyncQueryClient.connect(host, port)
                assert await first.ping()
                # Second connection: one structured server_busy frame.
                bare = await AsyncQueryClient.connect(host, port)
                with pytest.raises(RemoteQueryError) as excinfo:
                    await asyncio.wait_for(bare.ping(), WAIT)
                await bare.aclose()
                busy_error = excinfo.value
                # A retrying client heals once the slot frees up.
                retrying = await AsyncQueryClient.connect(
                    host,
                    port,
                    retry=RetryPolicy(max_attempts=8, base_delay=0.05),
                    rng=random.Random(5),
                )
                ping_task = asyncio.ensure_future(retrying.ping())
                await asyncio.sleep(0.1)
                await first.aclose()  # the slot frees
                assert await asyncio.wait_for(ping_task, WAIT)
                await retrying.aclose()  # frees the single slot again
                # The server may still be reaping the closed connection —
                # a retrying stats client absorbs that race.
                stats_client = await AsyncQueryClient.connect(
                    host,
                    port,
                    retry=RetryPolicy(max_attempts=8, base_delay=0.05),
                    rng=random.Random(13),
                )
                stats = await asyncio.wait_for(stats_client.stats(), WAIT)
                await stats_client.aclose()
            return busy_error, stats

        busy_error, stats = run(main())
        assert busy_error.code == "server_busy"
        assert busy_error.detail["max_connections"] == 1
        assert stats["transport"]["busy_rejections"] >= 1
        assert stats["transport"]["max_connections"] == 1

    def test_retry_budget_exhausts_typed_when_server_stays_busy(self, chain_db):
        async def main():
            async with QueryServer(
                {"chain": chain_db}, max_connections=1
            ) as server:
                host, port = server.address
                holder = await AsyncQueryClient.connect(host, port)
                assert await holder.ping()
                retrying = await AsyncQueryClient.connect(
                    host,
                    port,
                    retry=RetryPolicy(max_attempts=2, base_delay=0.01),
                    rng=random.Random(9),
                )
                with pytest.raises(RetryExhaustedError) as excinfo:
                    await asyncio.wait_for(retrying.ping(), WAIT)
                await retrying.aclose()
                await holder.aclose()
            return excinfo.value

        error = run(main())
        assert error.attempts == 2
        assert isinstance(error.last_error, RemoteQueryError)
        assert error.last_error.code == "server_busy"

    def test_idle_connections_are_reaped_active_ones_survive(
        self, chain_db, fast_query, reference
    ):
        async def main():
            async with QueryServer(
                {"chain": chain_db}, idle_timeout=0.15
            ) as server:
                host, port = server.address
                idle = await AsyncQueryClient.connect(host, port)
                assert await idle.ping()
                busy = await AsyncQueryClient.connect(host, port)
                # Keep one connection active across the idle window.
                for _ in range(6):
                    await asyncio.wait_for(busy.ping(), WAIT)
                    await asyncio.sleep(0.08)
                # The silent connection is gone — typed, not hanging.
                with pytest.raises((ConnectionError, RemoteQueryError)):
                    await asyncio.wait_for(idle.ping(), WAIT)
                await idle.aclose()
                result = await asyncio.wait_for(
                    busy.execute(fast_query, "chain"), WAIT
                )
                stats = await busy.stats()
                await busy.aclose()
            return result, stats

        result, stats = run(main())
        assert result == reference
        assert stats["transport"]["idle_closed"] >= 1
