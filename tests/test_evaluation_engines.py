"""Cross-engine tests: naive, Yannakakis, parameter-v transform, treewidth."""

import random

import pytest

from repro.errors import NotAcyclicError, QueryError
from repro.evaluation import atom_candidate_relation, parameter_v_transform
from repro.query import Atom, parse_query
from repro.relational import Database, Relation
from repro.workloads import (
    chain_database,
    path_query,
    random_acyclic_query,
    random_database,
    star_database,
    star_query,
)
from repro.relational.schema import DatabaseSchema


class TestAtomCandidateRelation:
    def test_constants_filter(self):
        rel = Relation.from_rows(("a", "b"), [(1, 2), (3, 2)])
        atom = Atom.of("R", "x", 2)
        s = atom_candidate_relation(atom, rel)
        assert s.attributes == ("x",)
        assert s.rows == frozenset({(1,), (3,)})

    def test_repeated_variable_filter(self):
        rel = Relation.from_rows(("a", "b"), [(1, 1), (1, 2)])
        s = atom_candidate_relation(Atom.of("R", "x", "x"), rel)
        assert s.rows == frozenset({(1,)})

    def test_variable_free_atom(self):
        rel = Relation.from_rows(("a",), [(1,)])
        assert atom_candidate_relation(Atom.of("R", 1), rel).cardinality == 1
        assert atom_candidate_relation(Atom.of("R", 2), rel).is_empty()

    def test_arity_mismatch(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            atom_candidate_relation(Atom.of("R", "x"), Relation.from_rows(("a", "b"), []))


class TestNaiveEvaluator:
    def test_path_answers(self, naive, edge_db):
        q = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        assert naive.evaluate(q, edge_db).rows == frozenset(
            {(1, 3), (1, 4), (2, 4)}
        )

    def test_decide_early_exit(self, naive, edge_db):
        q = parse_query("Q() :- E(x, y), E(y, z), E(z, w).")
        assert naive.decide(q, edge_db)

    def test_contains(self, naive, edge_db):
        q = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        assert naive.contains(q, edge_db, (1, 3))
        assert not naive.contains(q, edge_db, (4, 1))

    def test_contains_wrong_arity_false(self, naive, edge_db):
        q = parse_query("Q(x) :- E(x, y).")
        assert not naive.contains(q, edge_db, (1, 2))

    def test_constants_in_body(self, naive, edge_db):
        q = parse_query("Q(y) :- E(1, y).")
        assert naive.evaluate(q, edge_db).rows == frozenset({(2,), (3,)})

    def test_repeated_head_terms(self, naive, edge_db):
        q = parse_query("Q(x, x) :- E(x, y).")
        assert (1, 1) in naive.evaluate(q, edge_db)

    def test_inequality_and_comparison(self, naive):
        db = Database.from_tuples({"R": [(1, 2), (2, 2), (3, 1)]})
        q = parse_query("Q(a, b) :- R(a, b), a != b.")
        assert q and naive.evaluate(q, db).rows == frozenset({(1, 2), (3, 1)})
        q2 = parse_query("Q(a, b) :- R(a, b), a < b.")
        assert naive.evaluate(q2, db).rows == frozenset({(1, 2)})
        q3 = parse_query("Q(a, b) :- R(a, b), a <= b.")
        assert naive.evaluate(q3, db).rows == frozenset({(1, 2), (2, 2)})

    def test_satisfying_assignments_schema(self, naive, edge_db):
        q = parse_query("Q() :- E(x, y).")
        assignments = naive.satisfying_assignments(q, edge_db)
        assert set(assignments.attributes) == {"x", "y"}
        assert assignments.cardinality == 4

    def test_cyclic_queries_supported(self, naive):
        db = Database.from_tuples({"E": [(1, 2), (2, 3), (3, 1)]})
        q = parse_query("Q() :- E(x, y), E(y, z), E(z, x).")
        assert naive.decide(q, db)


class TestYannakakis:
    def test_rejects_cyclic(self, yannakakis, edge_db):
        q = parse_query("Q() :- E(x, y), E(y, z), E(z, x).")
        with pytest.raises(NotAcyclicError):
            yannakakis.decide(q, edge_db)

    def test_rejects_inequalities(self, yannakakis, edge_db):
        q = parse_query("Q() :- E(x, y), x != y.")
        with pytest.raises(QueryError):
            yannakakis.decide(q, edge_db)

    def test_agrees_with_naive_on_paths(self, yannakakis, naive):
        db = chain_database(layers=4, width=4, p=0.5, seed=2)
        for length in (1, 2, 3):
            q = path_query(length, head_arity=2)
            assert yannakakis.evaluate(q, db) == naive.evaluate(q, db)

    def test_agrees_with_naive_on_stars(self, yannakakis, naive):
        db = star_database(arms=3, fanout=5, seed=1)
        q = star_query(3)
        assert yannakakis.evaluate(q, db) == naive.evaluate(q, db)

    def test_decide_matches_evaluate(self, yannakakis):
        db = chain_database(layers=3, width=3, p=0.4, seed=5)
        q = path_query(2)
        assert yannakakis.decide(q, db) == (not yannakakis.evaluate(q, db).is_empty())

    def test_contains(self, yannakakis, naive, edge_db):
        q = parse_query("Q(x, z) :- E(x, y), E(y, z).")
        for candidate in [(1, 3), (1, 4), (2, 3), (4, 4)]:
            assert yannakakis.contains(q, edge_db, candidate) == naive.contains(
                q, edge_db, candidate
            )

    def test_empty_candidate_relation_short_circuits(self, yannakakis):
        db = Database.from_tuples({"E": [(1, 1)], "F": [(2, 2)]})
        q = parse_query("Q() :- E(x, x), F(x, x).")
        assert not yannakakis.decide(q, db)

    def test_random_acyclic_queries_match_naive(self, yannakakis, naive):
        rng = random.Random(7)
        for trial in range(25):
            query = random_acyclic_query(
                num_atoms=rng.randint(1, 5),
                max_arity=3,
                seed=rng.randrange(1 << 30),
            )
            schema = DatabaseSchema.of(
                **{a.relation: a.arity for a in query.atoms}
            )
            db = random_database(
                schema, domain_size=4, tuples_per_relation=12,
                seed=rng.randrange(1 << 30),
            )
            assert yannakakis.evaluate(query, db) == naive.evaluate(query, db)


class TestParameterVTransform:
    def test_groups_atoms_with_same_variable_set(self, naive):
        db = Database.from_tuples({"E": [(1, 2), (2, 1), (1, 1)]})
        q = parse_query("Q(x) :- E(x, y), E(y, x).")
        q2, db2 = parameter_v_transform(q, db)
        # {x,y} appears twice but with different orders -> one grouped atom.
        assert len(q2.atoms) == 1
        assert naive.evaluate(q2, db2) == naive.evaluate(q, db)

    def test_atom_bound_is_2_to_v(self, naive):
        db = Database.from_tuples({"E": [(1, 2)], "F": [(2, 1)], "G": [(1, 1)]})
        q = parse_query("Q() :- E(x, y), F(y, x), G(x, x).")
        q2, _db2 = parameter_v_transform(q, db)
        assert len(q2.atoms) <= 2 ** q.num_variables()

    def test_rejects_constraints(self):
        db = Database.from_tuples({"E": [(1, 2)]})
        q = parse_query("Q() :- E(x, y), x != y.")
        with pytest.raises(QueryError):
            parameter_v_transform(q, db)

    def test_random_equivalence(self, naive):
        rng = random.Random(11)
        for trial in range(15):
            query = random_acyclic_query(
                num_atoms=rng.randint(1, 4), seed=rng.randrange(1 << 30)
            ).without_constraints()
            schema = DatabaseSchema.of(
                **{a.relation: a.arity for a in query.atoms}
            )
            db = random_database(
                schema, domain_size=3, tuples_per_relation=10,
                seed=rng.randrange(1 << 30),
            )
            q2, db2 = parameter_v_transform(query, db)
            assert naive.evaluate(q2, db2) == naive.evaluate(query, db)


class TestTreewidthEvaluator:
    def test_acyclic_matches_yannakakis(self, treewidth_eval, yannakakis):
        db = chain_database(layers=4, width=3, p=0.6, seed=3)
        q = path_query(3, head_arity=2)
        assert treewidth_eval.evaluate(q, db) == yannakakis.evaluate(q, db)

    def test_cyclic_query_handled(self, treewidth_eval, naive):
        db = Database.from_tuples({"E": [(1, 2), (2, 3), (3, 1), (2, 1)]})
        q = parse_query("Q(x) :- E(x, y), E(y, z), E(z, x).")
        assert treewidth_eval.evaluate(q, db) == naive.evaluate(q, db)

    def test_width_reported(self, treewidth_eval):
        from repro.workloads import cycle_query

        assert treewidth_eval.width(cycle_query(5)) == 2

    def test_rejects_inequalities(self, treewidth_eval, edge_db):
        q = parse_query("Q() :- E(x, y), x != y.")
        with pytest.raises(QueryError):
            treewidth_eval.evaluate(q, edge_db)

    def test_random_cyclic_equivalence(self, treewidth_eval, naive):
        rng = random.Random(13)
        for trial in range(10):
            length = rng.randint(3, 5)
            from repro.workloads import cycle_query

            q = cycle_query(length)
            edges = [
                (rng.randrange(4), rng.randrange(4)) for _ in range(10)
            ]
            db = Database.from_tuples({"E": edges})
            assert treewidth_eval.decide(q, db) == naive.decide(q, db)
