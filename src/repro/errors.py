"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.  Subclasses
partition the failure modes along the package structure: schema/arity
problems in the relational layer, malformed queries, structural requirements
(acyclicity, consistency) and parser errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class SchemaError(ReproError):
    """A relation or database was used inconsistently with its schema.

    Examples: inserting a tuple of the wrong arity, joining relations whose
    shared attribute names disagree on declared meaning, or looking up a
    relation name that the database does not define.
    """


class ArityError(SchemaError):
    """A tuple or term list does not match the arity of its relation."""


class QueryError(ReproError):
    """A query object is malformed.

    Examples: a head variable that does not occur in the body (unsafe
    query), an inequality atom over variables that appear in no relational
    atom, or a comparison constraint set that mentions undeclared terms.
    """


class NotAcyclicError(ReproError):
    """An algorithm that requires an acyclic hypergraph received a cyclic one.

    Raised by the Yannakakis evaluator, the Theorem 2 evaluator and the
    join-tree constructor when GYO reduction does not empty the hypergraph.
    """


class InconsistentConstraintsError(ReproError):
    """A set of order constraints (< / <=) admits no satisfying assignment.

    Detected by the Klug-style strongly-connected-component test: some
    strong component of the constraint graph contains a strict arc.
    """


class ParseError(ReproError):
    """The textual query parser rejected its input.

    Carries the character ``position`` of the offending token (``-1`` when
    unknown) and, once the parser has annotated it, the 1-based ``line``
    and ``column`` — the coordinates the wire codec surfaces to remote
    clients.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position
        self.line: int = -1
        self.column: int = -1


class RequestRejectedError(ReproError):
    """A service request was rejected before execution.

    The typed error result the service facade and the wire protocol share:
    instead of a raw traceback, callers get a stable machine-readable
    ``code`` (``"parse_error"``, ``"bad_request"``, ...) plus a structured
    ``detail`` mapping (e.g. the parse position).  The protocol codec
    serializes these fields verbatim into an error response.
    """

    code = "rejected"

    def __init__(self, message: str, code: str | None = None, **detail: object) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.detail = dict(detail)


class InvalidOperationError(QueryError, RequestRejectedError):
    """A generic :class:`~repro.operations.Operation` is malformed.

    Raised by ``Operation.validate()`` for unknown kinds, options not
    accepted by the kind, and malformed option values (e.g. a bad
    aggregate mode).  Deriving from both :class:`QueryError` (the local
    contract — ``except QueryError`` keeps working) and
    :class:`RequestRejectedError` gives the same failure one stable wire
    code, ``invalid_operation``, whether it is raised engine-locally or
    surfaced through the protocol codec.
    """

    code = "invalid_operation"

    def __init__(self, message: str, **detail: object) -> None:
        RequestRejectedError.__init__(self, message, **detail)


class ServiceOverloadedError(RequestRejectedError):
    """Admission backpressure: a client exceeded its pending-request budget.

    Raised by :class:`~repro.service.QueryService` when a per-client
    pending bound is configured and one client floods past it; the wire
    protocol maps it to a structured ``backpressure`` error response
    instead of dropping the connection.
    """

    code = "backpressure"


class ServerBusyError(RequestRejectedError):
    """The server's connection limit is reached; try again later.

    Raised (and sent as a final frame) by
    :class:`~repro.protocol.QueryServer` when ``max_connections`` is
    configured and a new connection arrives past the limit.  The code is
    in the default client retry set — the condition is transient.
    """

    code = "server_busy"


class DeadlineExceededError(RequestRejectedError):
    """A request's deadline expired before its evaluation finished.

    Raised at the next cooperative check-point of the evaluators (level
    boundaries, shard-map steps) once the request's
    :class:`~repro.resilience.CancelToken` deadline passes, and by the
    service-side waiter when the engine has not answered in time.  Maps
    to the wire code ``deadline_exceeded``; carries the original budget
    in ``detail["deadline"]``.
    """

    code = "deadline_exceeded"


class CancelledRequestError(RequestRejectedError):
    """A request was cancelled before completion.

    Raised when a client disconnects mid-request, sends an explicit
    ``cancel`` message, or every waiter of a coalesced request abandons
    it.  Maps to the wire code ``cancelled``; carries the teardown
    ``detail["reason"]``.
    """

    code = "cancelled"


class ConnectionLostError(ReproError, ConnectionError):
    """The server connection died with requests still pending.

    The protocol clients raise this (instead of leaving futures pending
    forever) when the transport closes abruptly.  ``last_server_error``
    carries the final structured error the server managed to send before
    the close — usually the *reason* the connection died (e.g. a
    ``frame_too_large`` rejection) — or ``None`` for a silent drop.

    Subclasses :class:`ConnectionError` so existing transport-level
    ``except`` clauses keep working.
    """

    def __init__(
        self, message: str, last_server_error: BaseException | None = None
    ) -> None:
        super().__init__(message)
        self.last_server_error = last_server_error


class RequestTimeoutError(ReproError, TimeoutError):
    """A blocking client's socket timeout expired mid-request.

    Raised by :class:`~repro.protocol.QueryClient` instead of hanging on
    a silent server.  Subclasses :class:`TimeoutError` (itself an
    :class:`OSError`), so transport-level handlers keep working; the
    connection is poisoned afterwards — the reply may still arrive and
    desynchronize the stream.
    """

    def __init__(self, message: str, timeout: float | None = None) -> None:
        super().__init__(message)
        self.timeout = timeout


class WorkerUnavailableError(ReproError, ConnectionError):
    """A fleet worker could not serve a routed request.

    Raised internally by :class:`~repro.fleet.FleetRouter` when the
    worker a request was routed to is dead, draining, or unreachable;
    the router's failover machinery treats it as retryable and re-routes
    the (idempotent) request to a healthy replica.  Carries the worker's
    fleet ``worker`` id so chaos tests can assert *which* replica failed.

    Subclasses :class:`ConnectionError` so it lands in the transport
    branch of :meth:`~repro.resilience.RetryPolicy.retryable`.
    """

    def __init__(self, message: str, worker: int | None = None) -> None:
        super().__init__(message)
        self.worker = worker


class FleetDrainedError(ReproError):
    """Every worker of the fleet is unavailable; the request cannot run.

    Raised by :class:`~repro.fleet.FleetRouter` when failover exhausts
    its retry budget without finding a live worker — the fleet-level
    analogue of :class:`RetryExhaustedError`.  Carries the number of
    routing ``attempts`` and the ``last_error`` that failed the final
    one (also its ``__cause__``).
    """

    def __init__(
        self, message: str, attempts: int = 0, last_error: BaseException | None = None
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class RetryExhaustedError(ReproError):
    """A client retry budget ran out without a successful attempt.

    Carries the number of ``attempts`` made and the ``last_error`` that
    failed the final attempt (also its ``__cause__``).
    """

    def __init__(
        self, message: str, attempts: int, last_error: BaseException | None = None
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class BackendError(ReproError):
    """A SQL pushdown backend could not serve a request.

    Base class of every deliberate failure in :mod:`repro.backends`.  The
    engine treats any :class:`BackendError` raised mid-pushdown as "this
    shape is not backend-servable": it marks the shape, falls back to the
    native evaluators, and never surfaces the error to the caller.
    """


class BackendUnavailableError(BackendError):
    """The backend's driver module is not importable in this process.

    Raised at adapter construction time (e.g. :class:`DuckDbBackend` when
    ``duckdb`` is not installed), never mid-query — an engine is wired to
    a backend that exists or to none.
    """


class SqlCompilationError(BackendError):
    """The query lies outside the SQL pushdown fragment.

    The compiler covers conjunctive bodies with equality/inequality
    predicates over pool codes; order comparisons (``<`` / ``<=``),
    zero-arity atoms, and unhashable constants are outside it.  Carries no
    user-facing meaning: pushdown-eligibility is an optimization decision,
    so callers of the engine never see this error.
    """


class ReductionError(ReproError):
    """A parametric reduction was applied to an instance outside its domain."""
