"""Klug-style consistency of comparison constraint sets (§5 / [10]).

"The system is consistent iff there is no strongly connected component that
contains a < arc, and the implied equalities are that all nodes of the same
strong component are equal."  (For dense orders; two distinct constants in
one component are likewise inconsistent.)

Tarjan's algorithm (iterative) finds the strong components; the module
returns the implied-equality classes so the collapse step can rewrite the
query.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..errors import InconsistentConstraintsError
from ..query.terms import Constant, Term
from .constraints import ConstraintGraph


def strongly_connected_components(graph: ConstraintGraph) -> List[FrozenSet[Term]]:
    """Tarjan's SCC algorithm, iterative to survive deep constraint chains."""
    adjacency = graph.adjacency()
    index: Dict[Term, int] = {}
    lowlink: Dict[Term, int] = {}
    on_stack: Set[Term] = set()
    stack: List[Term] = []
    components: List[FrozenSet[Term]] = []
    counter = [0]

    for root in graph.nodes:
        if root in index:
            continue
        work: List[Tuple[Term, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: Set[Term] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def check_consistency(graph: ConstraintGraph) -> List[FrozenSet[Term]]:
    """The implied-equality classes, or raise on inconsistency.

    Inconsistent iff a strong component contains a strict arc, or contains
    two distinct constants (which are never equal under the fixed
    interpretation).
    """
    components = strongly_connected_components(graph)
    component_of: Dict[Term, int] = {}
    for i, component in enumerate(components):
        for member in component:
            component_of[member] = i

    for arc in graph.arcs:
        if arc.strict and component_of[arc.source] == component_of[arc.target]:
            raise InconsistentConstraintsError(
                f"cycle through strict arc {arc.source!r} < {arc.target!r}"
            )
    for component in components:
        constants = [t for t in component if isinstance(t, Constant)]
        if len(constants) > 1:
            raise InconsistentConstraintsError(
                f"distinct constants forced equal: {constants!r}"
            )
    return components


def is_consistent(graph: ConstraintGraph) -> bool:
    """Boolean form of :func:`check_consistency`."""
    try:
        check_consistency(graph)
    except InconsistentConstraintsError:
        return False
    return True
