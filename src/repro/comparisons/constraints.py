"""Comparison constraint graphs (§5, "Comparison Constraints").

A set C of comparison atoms over variables and constants induces a directed
graph: an arc u → w labelled < or ≤ for each constraint u < w / u ≤ w, plus
< arcs between constants in their natural order.  Consistency and implied
equalities are read off the strongly connected components
(:mod:`repro.comparisons.consistency`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Tuple

from ..errors import QueryError
from ..query.atoms import Comparison
from ..query.terms import Constant, Term

Node = Term  # variables and constants are both graph nodes


@dataclass(frozen=True)
class Arc:
    """A directed constraint arc, strict (<) or weak (≤)."""

    source: Term
    target: Term
    strict: bool

    @property
    def label(self) -> str:
        return "<" if self.strict else "<="


class ConstraintGraph:
    """The directed graph of a comparison constraint set."""

    def __init__(self, comparisons: Iterable[Comparison]) -> None:
        self.comparisons: Tuple[Comparison, ...] = tuple(comparisons)
        nodes: Dict[Term, None] = {}
        arcs: List[Arc] = []
        for comparison in self.comparisons:
            nodes.setdefault(comparison.left, None)
            nodes.setdefault(comparison.right, None)
            arcs.append(
                Arc(comparison.left, comparison.right, comparison.strict)
            )
        # Order arcs between the constants that occur, reflecting the fixed
        # interpretation of constants in a densely ordered domain.
        constants = [t for t in nodes if isinstance(t, Constant)]
        for a, b in combinations(constants, 2):
            try:
                a_less = a.value < b.value
            except TypeError:
                raise QueryError(
                    f"constants {a!r} and {b!r} are not comparable"
                ) from None
            if a_less:
                arcs.append(Arc(a, b, True))
            elif b.value < a.value:
                arcs.append(Arc(b, a, True))
            else:
                # equal values in distinct Constant objects cannot happen
                # (Constant equality is by value), but keep the case total.
                arcs.append(Arc(a, b, False))
                arcs.append(Arc(b, a, False))
        self.nodes: Tuple[Term, ...] = tuple(nodes)
        self.arcs: Tuple[Arc, ...] = tuple(arcs)

    def successors(self, node: Term) -> List[Tuple[Term, bool]]:
        """(target, strict) pairs of arcs leaving *node*."""
        return [
            (arc.target, arc.strict) for arc in self.arcs if arc.source == node
        ]

    def adjacency(self) -> Dict[Term, List[Term]]:
        out: Dict[Term, List[Term]] = {node: [] for node in self.nodes}
        for arc in self.arcs:
            out[arc.source].append(arc.target)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{arc.source!r}{arc.label}{arc.target!r}" for arc in self.arcs[:8]
        )
        suffix = ", ..." if len(self.arcs) > 8 else ""
        return f"ConstraintGraph({inner}{suffix})"
