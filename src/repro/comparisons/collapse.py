"""Collapsing implied equalities of a comparison constraint set (§5).

Before Theorem 3's acyclicity question even makes sense, equal variables
must be identified: any x = y is expressible as x ≤ y ∧ y ≤ x, so "the
question makes sense only if we first identify equal variables".  Given a
consistent constraint set, every strong component collapses to a single
representative (the component's constant if it has one, else its first
variable); the rewritten query Q' and constraint set C' (now an acyclic
comparison graph) define acyclicity for queries with comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..query.atoms import Comparison
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Term, Variable
from .constraints import ConstraintGraph
from .consistency import check_consistency


@dataclass(frozen=True)
class CollapseResult:
    """Outcome of the equality collapse.

    Attributes
    ----------
    query:
        Q' — the query with equal terms identified and the reduced
        (acyclic, duplicate-free, non-reflexive) comparison set C'.
    representative:
        The substitution that was applied (term → representative term).
    """

    query: ConjunctiveQuery
    representative: Dict[Term, Term]


def collapse_equalities(query: ConjunctiveQuery) -> CollapseResult:
    """Identify terms forced equal by the comparisons; rewrite the query.

    Raises :class:`InconsistentConstraintsError` when C is inconsistent
    (the query is then unsatisfiable regardless of the data).
    """
    graph = ConstraintGraph(query.comparisons)
    components = check_consistency(graph)

    representative: Dict[Term, Term] = {}
    for component in components:
        constants = [t for t in component if isinstance(t, Constant)]
        if constants:
            chosen: Term = constants[0]
        else:
            variables = sorted(
                (t for t in component if isinstance(t, Variable)),
                key=lambda v: v.name,
            )
            chosen = variables[0]
        for member in component:
            representative[member] = chosen

    substitution = {
        term: rep
        for term, rep in representative.items()
        if isinstance(term, Variable) and term != rep
    }

    new_atoms = [atom.substitute(substitution) for atom in query.atoms]
    new_head = tuple(
        substitution.get(t, t) if isinstance(t, Variable) else t
        for t in query.head_terms
    )
    new_inequalities = [
        ineq.substitute(substitution) for ineq in query.inequalities
    ]

    reduced: List[Comparison] = []
    seen = set()
    for comparison in query.comparisons:
        left = representative.get(comparison.left, comparison.left)
        right = representative.get(comparison.right, comparison.right)
        if left == right:
            continue  # collapsed: a weak arc inside a component
        if isinstance(left, Constant) and isinstance(right, Constant):
            continue  # between constants: statically true after consistency
        marker = (left, right, comparison.strict)
        if marker in seen:
            continue
        seen.add(marker)
        reduced.append(Comparison(left, right, comparison.strict))

    new_query = ConjunctiveQuery(
        new_head,
        new_atoms,
        new_inequalities,
        reduced,
        head_name=query.head_name,
    )
    return CollapseResult(query=new_query, representative=representative)


def is_acyclic_with_comparisons(query: ConjunctiveQuery) -> bool:
    """§5's definition: acyclic after collapsing implied equalities.

    "We say that the query Q with comparisons is acyclic if the hypergraph
    corresponding to the relational atoms in the body of Q' is acyclic."
    Raises :class:`InconsistentConstraintsError` for inconsistent C.
    """
    collapsed = collapse_equalities(query)
    return collapsed.query.is_acyclic()
