"""Comparison constraints: consistency, equality collapse, Theorem 3 setting."""

from .collapse import CollapseResult, collapse_equalities, is_acyclic_with_comparisons
from .consistency import (
    check_consistency,
    is_consistent,
    strongly_connected_components,
)
from .constraints import Arc, ConstraintGraph

__all__ = [
    "Arc",
    "CollapseResult",
    "ConstraintGraph",
    "check_consistency",
    "collapse_equalities",
    "is_acyclic_with_comparisons",
    "is_consistent",
    "strongly_connected_components",
]
