"""Parametric problems: instances with a distinguished integer parameter.

A parametric problem (§2) is a set L of pairs (x, k).  Here a
:class:`ParametricProblem` bundles a name, a decision procedure (the
ground-truth solver, typically exponential — these are hard problems), and
accessors for the parameter and the instance size, so reductions can be
checked mechanically: equivalence of answers *and* the parameter bound
k' ≤ g(k).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

InstanceT = TypeVar("InstanceT")


@dataclass(frozen=True)
class ParametricProblem(Generic[InstanceT]):
    """A named parametric decision problem.

    Attributes
    ----------
    name:
        Human-readable problem name (e.g. ``"clique"``).
    solver:
        Ground-truth decision procedure ``instance -> bool``.
    parameter:
        ``instance -> int``, the parameter k of the instance.
    size:
        ``instance -> int``, the instance size |x| (used to check that
        reductions blow the size up at most polynomially on test suites).
    description:
        One-line statement of the question being decided.
    """

    name: str
    solver: Callable[[InstanceT], bool]
    parameter: Callable[[InstanceT], int]
    size: Callable[[InstanceT], int]
    description: str = ""

    def solve(self, instance: InstanceT) -> bool:
        """Decide the instance with the ground-truth solver."""
        return self.solver(instance)

    def __repr__(self) -> str:
        return f"ParametricProblem({self.name!r})"
