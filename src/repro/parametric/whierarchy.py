"""The W hierarchy and the paper's Figure 1 partial order.

:class:`WClass` models the classes W[1] ⊆ W[2] ⊆ ... ⊆ W[SAT] ⊆ W[P] plus
the alternating extensions AW[*], AW[SAT] and AW[P] the paper discusses.
The library's classification results (Theorem 1's table) are recorded in a
:class:`ClassificationTable` whose entries carry the *evidence*: the
reduction objects proving hardness and membership, which the benchmark
harness replays.

:class:`QueryParametrization` + :data:`FIGURE_1` encode the four
parametric-problem variants of §3 (parameter q or v × fixed or variable
schema) and Proposition 1's hardness/membership propagation along the
partial order.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import total_ordering
from typing import Dict, FrozenSet, List, Optional, Tuple


@total_ordering
class WClass(Enum):
    """Levels of the W hierarchy (and alternating extensions).

    Ordering follows containment as known/conjectured in [6]: FPT below
    everything, W[t] increasing in t, then W[SAT], then W[P]; each AW class
    sits above its W counterpart.  Only comparable pairs are ordered; the
    helper :meth:`contains` answers the containment question directly.
    """

    FPT = 0
    W1 = 1
    W2 = 2
    W3 = 3
    W4 = 4
    W_T = 50          # "W[t] for all t": hardness holds at every finite level
    W_SAT = 60
    W_P = 70
    AW_STAR = 80
    AW_SAT = 85
    AW_P = 90

    def __lt__(self, other: "WClass") -> bool:
        if not isinstance(other, WClass):
            return NotImplemented
        return self.value < other.value

    def contains(self, other: "WClass") -> bool:
        """Is *other* ⊆ self under the standard containments?"""
        return other.value <= self.value

    @property
    def display(self) -> str:
        names = {
            WClass.FPT: "FPT",
            WClass.W1: "W[1]",
            WClass.W2: "W[2]",
            WClass.W3: "W[3]",
            WClass.W4: "W[4]",
            WClass.W_T: "W[t] (all t)",
            WClass.W_SAT: "W[SAT]",
            WClass.W_P: "W[P]",
            WClass.AW_STAR: "AW[*]",
            WClass.AW_SAT: "AW[SAT]",
            WClass.AW_P: "AW[P]",
        }
        return names[self]


@dataclass(frozen=True)
class Classification:
    """Hardness and membership bracket for one problem."""

    problem: str
    hard_for: Optional[WClass]
    member_of: Optional[WClass]
    notes: str = ""

    @property
    def complete(self) -> bool:
        """Tight classification: hardness and membership coincide."""
        return (
            self.hard_for is not None
            and self.member_of is not None
            and self.hard_for == self.member_of
        )

    def display(self) -> str:
        if self.complete:
            return f"{self.hard_for.display}-complete"
        parts = []
        if self.hard_for is not None:
            parts.append(f"{self.hard_for.display}-hard")
        if self.member_of is not None:
            parts.append(f"in {self.member_of.display}")
        return ", ".join(parts) if parts else "unclassified"


class ClassificationTable:
    """A registry of classifications keyed by (problem, parameter)."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], Classification] = {}

    def record(
        self,
        problem: str,
        parameter: str,
        hard_for: Optional[WClass],
        member_of: Optional[WClass],
        notes: str = "",
    ) -> None:
        self._entries[(problem, parameter)] = Classification(
            problem=f"{problem}[{parameter}]",
            hard_for=hard_for,
            member_of=member_of,
            notes=notes,
        )

    def entry(self, problem: str, parameter: str) -> Classification:
        return self._entries[(problem, parameter)]

    def rows(self) -> List[Tuple[str, str, str]]:
        """(problem, parameter, classification-display) rows, sorted."""
        return [
            (problem, parameter, self._entries[(problem, parameter)].display())
            for (problem, parameter) in sorted(self._entries)
        ]


def theorem1_table() -> ClassificationTable:
    """The classification Theorem 1 proves (plus the §4 Datalog entry)."""
    table = ClassificationTable()
    table.record("conjunctive", "q", WClass.W1, WClass.W1,
                 "clique ≤ CQ; CQ ≤ weighted 2-CNF")
    table.record("conjunctive", "v", WClass.W1, WClass.W1,
                 "variable-set grouping reduces v-case to q-case")
    table.record("positive", "q", WClass.W1, WClass.W1,
                 "DNF expansion into ≤2^q conjunctive queries")
    table.record("positive", "v", WClass.W_SAT, None,
                 "weighted formula SAT ≤ positive query over EQ/NEQ")
    table.record("positive-prenex", "v", WClass.W_SAT, WClass.W_SAT,
                 "converse encoding into weighted formula SAT")
    table.record("first-order", "q", WClass.W_T, None,
                 "monotone depth-t weighted circuit SAT ≤ FO query")
    table.record("first-order", "v", WClass.W_P, None,
                 "monotone weighted circuit SAT ≤ FO query, v = k + 2")
    table.record("datalog-fixed-arity", "q", WClass.W1, WClass.W1,
                 "bottom-up evaluation = poly many W[1] oracle calls")
    table.record("datalog-fixed-arity", "v", WClass.W1, WClass.W1,
                 "same bottom-up argument")
    table.record("acyclic+neq", "q", None, WClass.FPT,
                 "Theorem 2: color-coding + acyclic processing")
    table.record("acyclic+neq", "v", None, WClass.FPT,
                 "Theorem 2, hash range bounded by v")
    table.record("acyclic+comparisons", "q", WClass.W1, WClass.W1,
                 "Theorem 3 encoding of clique")
    table.record("acyclic+comparisons", "v", WClass.W1, WClass.W1,
                 "Theorem 3 encoding of clique")
    return table


# ----------------------------------------------------------------------
# Figure 1: the four query-evaluation parametrizations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryParametrization:
    """One corner of Figure 1: a parameter choice and a schema regime."""

    parameter: str      # "q" or "v"
    fixed_schema: bool

    def __post_init__(self) -> None:
        if self.parameter not in ("q", "v"):
            raise ValueError(f"parameter must be 'q' or 'v': {self.parameter!r}")

    @property
    def label(self) -> str:
        schema = "fixed schema" if self.fixed_schema else "variable schema"
        return f"parameter {self.parameter}, {schema}"


#: The four corners.
V_FIXED = QueryParametrization("v", True)
V_VARIABLE = QueryParametrization("v", False)
Q_FIXED = QueryParametrization("q", True)
Q_VARIABLE = QueryParametrization("q", False)

#: Figure 1's arcs, drawn from easier to harder: an identity map is a valid
#: parametric reduction along each arc (Proposition 1).  q bounds v (every
#: variable occurrence is part of the query string), so the q-parametrized
#: problem reduces to the v-parametrized one; a fixed schema is the special
#: case of a variable schema.
FIGURE_1_ARCS: Tuple[Tuple[QueryParametrization, QueryParametrization], ...] = (
    (Q_FIXED, Q_VARIABLE),
    (Q_FIXED, V_FIXED),
    (Q_VARIABLE, V_VARIABLE),
    (V_FIXED, V_VARIABLE),
)

FIGURE_1: Tuple[QueryParametrization, ...] = (
    Q_FIXED, Q_VARIABLE, V_FIXED, V_VARIABLE
)


def harder_than(node: QueryParametrization) -> FrozenSet[QueryParametrization]:
    """All parametrizations above *node* (reachable along Figure 1 arcs).

    Proposition 1: hardness at *node* propagates to everything returned
    here; membership propagates in the reverse direction.
    """
    out = set()
    frontier = [node]
    while frontier:
        current = frontier.pop()
        for lower, upper in FIGURE_1_ARCS:
            if lower == current and upper not in out:
                out.add(upper)
                frontier.append(upper)
    return frozenset(out)


def easier_than(node: QueryParametrization) -> FrozenSet[QueryParametrization]:
    """All parametrizations below *node* (membership propagates to them)."""
    out = set()
    frontier = [node]
    while frontier:
        current = frontier.pop()
        for lower, upper in FIGURE_1_ARCS:
            if upper == current and lower not in out:
                out.add(lower)
                frontier.append(lower)
    return frozenset(out)
