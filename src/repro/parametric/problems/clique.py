"""The clique problem — the canonical W[1]-complete problem.

"does graph G have a clique of size k?" is the source of the paper's
Theorem 1 and Theorem 3 lower bounds.  The solver here is the ground truth
the reduction harness compares against: branch-and-bound over candidate
extensions, exact for the instance sizes the test-suite and benchmarks use.
Independent set (clique in the complement) rides along since the
footnote-2 transformation passes through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...workloads.graphs import Graph
from ..problem import ParametricProblem


@dataclass(frozen=True)
class CliqueInstance:
    """(G, k): does G contain a clique on k nodes?"""

    graph: Graph
    k: int

    def __repr__(self) -> str:
        return f"CliqueInstance({self.graph!r}, k={self.k})"


def find_clique(graph: Graph, k: int) -> Optional[Tuple[int, ...]]:
    """A k-clique of *graph*, or None.

    Backtracking over nodes in degree-descending order with two prunings:
    candidates must be adjacent to all chosen nodes, and the remaining
    candidate pool must be large enough to finish.
    """
    if k <= 0:
        return ()
    if k == 1:
        return (graph.nodes[0],) if graph.num_nodes else None
    nodes = sorted(graph.nodes, key=graph.degree, reverse=True)
    chosen: List[int] = []

    def extend(candidates: List[int]) -> Optional[Tuple[int, ...]]:
        if len(chosen) == k:
            return tuple(chosen)
        if len(chosen) + len(candidates) < k:
            return None
        for i, node in enumerate(candidates):
            if graph.degree(node) < k - 1:
                continue
            chosen.append(node)
            narrowed = [
                other for other in candidates[i + 1:]
                if graph.has_edge(node, other)
            ]
            found = extend(narrowed)
            if found is not None:
                return found
            chosen.pop()
        return None

    return extend(nodes)


def has_clique(graph: Graph, k: int) -> bool:
    """Decision form of :func:`find_clique`."""
    return find_clique(graph, k) is not None


CLIQUE = ParametricProblem(
    name="clique",
    solver=lambda inst: has_clique(inst.graph, inst.k),
    parameter=lambda inst: inst.k,
    size=lambda inst: inst.graph.size(),
    description="does G contain a clique of size k? (W[1]-complete)",
)


@dataclass(frozen=True)
class IndependentSetInstance:
    """(G, k): does G contain k pairwise non-adjacent nodes?"""

    graph: Graph
    k: int


def has_independent_set(graph: Graph, k: int) -> bool:
    """Independent set of size k = clique of size k in the complement."""
    return has_clique(graph.complement(), k)


INDEPENDENT_SET = ParametricProblem(
    name="independent-set",
    solver=lambda inst: has_independent_set(inst.graph, inst.k),
    parameter=lambda inst: inst.k,
    size=lambda inst: inst.graph.size(),
    description="does G contain an independent set of size k? (W[1]-complete)",
)
