"""Weighted satisfiability problems as :class:`ParametricProblem` objects.

These are the defining complete problems of the W hierarchy (§2):

* depth-t weighted circuit satisfiability for W[t] (t ≥ 2; t = 1 uses
  3-CNF);
* weighted formula satisfiability for W[SAT];
* weighted (monotone) circuit satisfiability for W[P].
"""

from __future__ import annotations

from dataclasses import dataclass

from ...circuits.circuit import Circuit
from ...circuits.cnf import CNF
from ...circuits.formulas import BoolFormula
from ...circuits.weighted_sat import (
    weighted_circuit_satisfiable,
    weighted_cnf_satisfiable,
    weighted_formula_satisfiable,
)
from ...errors import ReductionError
from ..problem import ParametricProblem


@dataclass(frozen=True)
class WeightedCNFInstance:
    """(CNF φ, k): does φ have a satisfying assignment of weight k?"""

    cnf: CNF
    k: int


@dataclass(frozen=True)
class WeightedFormulaInstance:
    """(formula φ, k): weight-k satisfiability of a Boolean formula."""

    formula: BoolFormula
    k: int


@dataclass(frozen=True)
class WeightedCircuitInstance:
    """(circuit C, k): weight-k satisfiability of a circuit."""

    circuit: Circuit
    k: int


WEIGHTED_2CNF_SAT = ParametricProblem(
    name="weighted-2cnf-sat",
    solver=lambda inst: weighted_cnf_satisfiable(inst.cnf, inst.k) is not None,
    parameter=lambda inst: inst.k,
    size=lambda inst: inst.cnf.size(),
    description="weight-k satisfiability of a 2-CNF (in W[1])",
)

WEIGHTED_3CNF_SAT = ParametricProblem(
    name="weighted-3cnf-sat",
    solver=lambda inst: weighted_cnf_satisfiable(inst.cnf, inst.k) is not None,
    parameter=lambda inst: inst.k,
    size=lambda inst: inst.cnf.size(),
    description="weight-k satisfiability of a 3-CNF (W[1]-complete)",
)

WEIGHTED_FORMULA_SAT = ParametricProblem(
    name="weighted-formula-sat",
    solver=lambda inst: weighted_formula_satisfiable(inst.formula, inst.k)
    is not None,
    parameter=lambda inst: inst.k,
    size=lambda inst: inst.formula.size(),
    description="weight-k satisfiability of a Boolean formula (W[SAT]-complete)",
)

WEIGHTED_CIRCUIT_SAT = ParametricProblem(
    name="weighted-circuit-sat",
    solver=lambda inst: weighted_circuit_satisfiable(inst.circuit, inst.k)
    is not None,
    parameter=lambda inst: inst.k,
    size=lambda inst: len(inst.circuit),
    description="weight-k satisfiability of a circuit (W[P]-complete)",
)


def _monotone_solver(inst: "WeightedCircuitInstance") -> bool:
    if not inst.circuit.is_monotone():
        raise ReductionError("instance is not monotone")
    return weighted_circuit_satisfiable(inst.circuit, inst.k) is not None


MONOTONE_WEIGHTED_CIRCUIT_SAT = ParametricProblem(
    name="monotone-weighted-circuit-sat",
    solver=_monotone_solver,
    parameter=lambda inst: inst.k,
    size=lambda inst: len(inst.circuit),
    description="weight-k satisfiability of a monotone circuit (W[P]-complete)",
)


def depth_t_weighted_circuit_sat(t: int) -> ParametricProblem:
    """The W[t] anchor: weighted satisfiability of depth-≤t circuits.

    Instances whose circuit exceeds depth t are rejected with
    :class:`ReductionError` — the depth restriction is part of the problem
    definition, not of the solver.
    """

    def solver(inst: WeightedCircuitInstance) -> bool:
        if inst.circuit.depth() > t:
            raise ReductionError(
                f"circuit depth {inst.circuit.depth()} exceeds t={t}"
            )
        return weighted_circuit_satisfiable(inst.circuit, inst.k) is not None

    return ParametricProblem(
        name=f"depth-{t}-weighted-circuit-sat",
        solver=solver,
        parameter=lambda inst: inst.k,
        size=lambda inst: len(inst.circuit),
        description=f"weight-k satisfiability of depth-{t} circuits (W[{t}])",
    )
