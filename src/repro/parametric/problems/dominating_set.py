"""Dominating set — the canonical W[2]-complete problem.

Included to populate the hierarchy above W[1] (the paper cites it as the
W[2] anchor); the solver enumerates k-subsets, adequate as ground truth at
test scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Tuple

from ...workloads.graphs import Graph
from ..problem import ParametricProblem


@dataclass(frozen=True)
class DominatingSetInstance:
    """(G, k): is there a set S of k nodes with N[S] = V?"""

    graph: Graph
    k: int


def find_dominating_set(graph: Graph, k: int) -> Optional[Tuple[int, ...]]:
    """A dominating set of size ≤ k (padded to k when smaller), or None."""
    nodes = graph.nodes
    if not nodes:
        return ()
    if k <= 0:
        return None
    universe = set(nodes)
    for size in range(1, min(k, len(nodes)) + 1):
        for subset in combinations(nodes, size):
            covered = set(subset)
            for node in subset:
                covered |= graph.neighbours(node)
            if covered == universe:
                padding = [n for n in nodes if n not in subset]
                padded = tuple(subset) + tuple(padding[: k - size])
                if len(padded) == k:
                    return padded
                return tuple(subset)
    return None


def has_dominating_set(graph: Graph, k: int) -> bool:
    """Decision form of :func:`find_dominating_set`."""
    return find_dominating_set(graph, k) is not None


DOMINATING_SET = ParametricProblem(
    name="dominating-set",
    solver=lambda inst: has_dominating_set(inst.graph, inst.k),
    parameter=lambda inst: inst.k,
    size=lambda inst: inst.graph.size(),
    description="does G have a dominating set of size k? (W[2]-complete)",
)
