"""The k-path problem — §5's special case of Theorem 2.

"A special case is the problem of finding simple paths of a specified
length k in a graph.  This problem was proved f.p. tractable by Monien
[12], and an improved algorithm was given in [3] using an elegant
'color-coding' (hashing) technique.  Our algorithm combines this technique
with acyclic query processing techniques."

This module provides the problem with two solvers:

* :func:`has_simple_path_bruteforce` — DFS over simple paths (ground truth);
* :func:`has_simple_path_color_coding` — the Alon–Yuster–Zwick dynamic
  program over (color subset, endpoint) states, running over any of the
  library's hash families; with a k-perfect family it is exact in
  f(k)·m·2^k time.

The query-processing route (expressing k-path as an acyclic ≠-query and
running the Theorem 2 evaluator) lives in
:mod:`repro.reductions.k_path_to_acyclic_neq`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from ...workloads.graphs import Graph
from ..problem import ParametricProblem


@dataclass(frozen=True)
class KPathInstance:
    """(G, k): does G contain a simple path on k vertices?"""

    graph: Graph
    k: int


def has_simple_path_bruteforce(graph: Graph, k: int) -> bool:
    """DFS over simple paths — exponential worst case, exact (ground truth)."""
    if k <= 0:
        return True
    if k == 1:
        return graph.num_nodes > 0
    visited: Set[int] = set()

    def extend(node: int, remaining: int) -> bool:
        if remaining == 0:
            return True
        visited.add(node)
        try:
            for neighbour in graph.neighbours(node):
                if neighbour not in visited and extend(neighbour, remaining - 1):
                    return True
        finally:
            visited.discard(node)
        return False

    return any(extend(start, k - 1) for start in graph.nodes)


def _colorful_path_exists(graph: Graph, colour: Dict[int, int], k: int) -> bool:
    """Is there a path on k vertices with pairwise distinct colours?

    Dynamic program: reachable[(node)] = set of colour subsets (bitmask)
    of colourful paths ending at node; grows paths edge by edge.
    """
    states: Dict[int, Set[int]] = {
        node: {1 << (colour[node] - 1)} for node in graph.nodes
    }
    for _ in range(k - 1):
        next_states: Dict[int, Set[int]] = {node: set() for node in graph.nodes}
        for node, masks in states.items():
            for neighbour in graph.neighbours(node):
                bit = 1 << (colour[neighbour] - 1)
                for mask in masks:
                    if not mask & bit:
                        next_states[neighbour].add(mask | bit)
        states = next_states
        if not any(states.values()):
            return False
    return any(states.values())


def has_simple_path_color_coding(
    graph: Graph, k: int, family=None
) -> bool:
    """Color-coding: exact with a k-perfect family over the vertex set.

    For every h in the family, colour each vertex h(v) and run the
    colourful-path DP; a simple k-path exists iff some h makes its vertices
    colourful (guaranteed by k-perfectness).
    """
    from ...inequalities.hashing import GreedyPerfectHashFamily

    if k <= 0:
        return True
    if k == 1:
        return graph.num_nodes > 0
    if k > graph.num_nodes:
        return False
    strategy = family or GreedyPerfectHashFamily(seed=0)
    for h in strategy.functions(graph.nodes, k):
        if _colorful_path_exists(graph, h, k):
            return True
    return False


K_PATH = ParametricProblem(
    name="k-path",
    solver=lambda inst: has_simple_path_bruteforce(inst.graph, inst.k),
    parameter=lambda inst: inst.k,
    size=lambda inst: inst.graph.size(),
    description="does G contain a simple path on k vertices? (FPT, §5)",
)
