"""Vertex cover — the textbook *fixed-parameter tractable* contrast.

§2 motivates the FPT/W distinction with problems like disjoint paths and
k-path that admit f(k)·n^c algorithms.  Vertex cover is the cleanest such
example: the bounded search tree runs in O(2^k · n), and the benchmark
suite uses it to display the f(k)·n versus n^k separation empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ...workloads.graphs import Graph
from ..problem import ParametricProblem


@dataclass(frozen=True)
class VertexCoverInstance:
    """(G, k): is there a set of ≤ k nodes touching every edge?"""

    graph: Graph
    k: int


def find_vertex_cover(graph: Graph, k: int) -> Optional[FrozenSet[int]]:
    """A vertex cover of size ≤ k via the 2^k bounded search tree, or None.

    Pick any uncovered edge (u, v); some endpoint must be in the cover;
    branch on both.  Depth ≤ k, so the tree has ≤ 2^k leaves — an f(k)·n
    algorithm, *without* k in the exponent of n.
    """
    edges = list(graph.edges())

    def search(remaining, budget: int, chosen: FrozenSet[int]) -> Optional[FrozenSet[int]]:
        uncovered = [
            (a, b) for a, b in remaining if a not in chosen and b not in chosen
        ]
        if not uncovered:
            return chosen
        if budget == 0:
            return None
        a, b = uncovered[0]
        left = search(uncovered, budget - 1, chosen | {a})
        if left is not None:
            return left
        return search(uncovered, budget - 1, chosen | {b})

    return search(edges, max(k, 0), frozenset())


def has_vertex_cover(graph: Graph, k: int) -> bool:
    """Decision form of :func:`find_vertex_cover`."""
    return find_vertex_cover(graph, k) is not None


VERTEX_COVER = ParametricProblem(
    name="vertex-cover",
    solver=lambda inst: has_vertex_cover(inst.graph, inst.k),
    parameter=lambda inst: inst.k,
    size=lambda inst: inst.graph.size(),
    description="does G have a vertex cover of size ≤ k? (FPT)",
)
