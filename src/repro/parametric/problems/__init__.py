"""Classic parametric problems populating the W hierarchy."""

from .alternating import (
    AW_P,
    AW_SAT,
    AlternatingWeightedCircuitInstance,
    AlternatingWeightedFormulaInstance,
    MONOTONE_AW_P,
    alternating_weighted_formula_satisfiable,
    alternating_weighted_satisfiable,
)
from .clique import (
    CLIQUE,
    CliqueInstance,
    INDEPENDENT_SET,
    IndependentSetInstance,
    find_clique,
    has_clique,
    has_independent_set,
)
from .dominating_set import (
    DOMINATING_SET,
    DominatingSetInstance,
    find_dominating_set,
    has_dominating_set,
)
from .k_path import (
    K_PATH,
    KPathInstance,
    has_simple_path_bruteforce,
    has_simple_path_color_coding,
)
from .vertex_cover import (
    VERTEX_COVER,
    VertexCoverInstance,
    find_vertex_cover,
    has_vertex_cover,
)
from .weighted_sat_problems import (
    MONOTONE_WEIGHTED_CIRCUIT_SAT,
    WEIGHTED_2CNF_SAT,
    WEIGHTED_3CNF_SAT,
    WEIGHTED_CIRCUIT_SAT,
    WEIGHTED_FORMULA_SAT,
    WeightedCNFInstance,
    WeightedCircuitInstance,
    WeightedFormulaInstance,
    depth_t_weighted_circuit_sat,
)

__all__ = [
    "AW_P",
    "AW_SAT",
    "AlternatingWeightedCircuitInstance",
    "AlternatingWeightedFormulaInstance",
    "CLIQUE",
    "CliqueInstance",
    "DOMINATING_SET",
    "DominatingSetInstance",
    "INDEPENDENT_SET",
    "IndependentSetInstance",
    "K_PATH",
    "KPathInstance",
    "MONOTONE_AW_P",
    "MONOTONE_WEIGHTED_CIRCUIT_SAT",
    "VERTEX_COVER",
    "VertexCoverInstance",
    "WEIGHTED_2CNF_SAT",
    "WEIGHTED_3CNF_SAT",
    "WEIGHTED_CIRCUIT_SAT",
    "WEIGHTED_FORMULA_SAT",
    "WeightedCNFInstance",
    "WeightedCircuitInstance",
    "WeightedFormulaInstance",
    "alternating_weighted_formula_satisfiable",
    "alternating_weighted_satisfiable",
    "depth_t_weighted_circuit_sat",
    "find_clique",
    "find_dominating_set",
    "has_simple_path_bruteforce",
    "has_simple_path_color_coding",
    "find_vertex_cover",
    "has_clique",
    "has_dominating_set",
    "has_independent_set",
    "has_vertex_cover",
]
