"""Alternating weighted satisfiability — the AW classes (§4 discussion).

The paper sketches AW[*] and AW[P]: the circuit's input variables are
partitioned into r blocks V_1..V_r with alternating quantifiers (∃ for odd
blocks, ∀ for even), and the question is whether

    ∃ S_1 ⊆ V_1, |S_1| = k_1, ∀ S_2 ⊆ V_2, |S_2| = k_2, ...
        C accepts the input setting exactly ∪S_i to true.

The parameter is k = Σ k_i.  The solver is a direct quantifier-alternation
recursion over k_i-subsets — exponential, as ground truth should be.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Sequence, Tuple

from ...circuits.circuit import Circuit
from ...circuits.formulas import BoolFormula
from ...errors import ReductionError
from ..problem import ParametricProblem


@dataclass(frozen=True)
class AlternatingWeightedCircuitInstance:
    """(C, blocks, weights): alternating weighted circuit satisfiability.

    ``blocks[i]`` is the tuple of input ids of V_{i+1}; ``weights[i]`` is
    k_{i+1}.  Blocks must partition a subset of the circuit's inputs;
    inputs outside every block are fixed to false.
    """

    circuit: Circuit
    blocks: Tuple[Tuple[str, ...], ...]
    weights: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.blocks) != len(self.weights):
            raise ReductionError("one weight per block required")
        seen: set = set()
        inputs = set(self.circuit.inputs)
        for block in self.blocks:
            for name in block:
                if name not in inputs:
                    raise ReductionError(f"unknown input {name!r} in block")
                if name in seen:
                    raise ReductionError(f"input {name!r} in two blocks")
                seen.add(name)

    @property
    def parameter(self) -> int:
        return sum(self.weights)


def alternating_weighted_satisfiable(
    instance: AlternatingWeightedCircuitInstance,
) -> bool:
    """Evaluate the quantifier alternation by exhaustive recursion."""
    circuit = instance.circuit
    blocks = instance.blocks
    weights = instance.weights

    def recurse(index: int, chosen: FrozenSet[str]) -> bool:
        if index == len(blocks):
            return circuit.evaluate(chosen)
        block = blocks[index]
        weight = weights[index]
        if weight > len(block):
            subsets: Sequence[Tuple[str, ...]] = ()
        else:
            subsets = tuple(combinations(block, weight))
        existential = index % 2 == 0  # blocks are 1-indexed in the paper
        if existential:
            return any(recurse(index + 1, chosen | set(s)) for s in subsets)
        return all(recurse(index + 1, chosen | set(s)) for s in subsets)

    return recurse(0, frozenset())


AW_P = ParametricProblem(
    name="alternating-weighted-circuit-sat",
    solver=alternating_weighted_satisfiable,
    parameter=lambda inst: inst.parameter,
    size=lambda inst: len(inst.circuit),
    description="alternating weighted circuit satisfiability (AW[P]-complete)",
)


def monotone_only(instance: AlternatingWeightedCircuitInstance) -> bool:
    """Solver variant that insists on a monotone circuit (the paper's form)."""
    if not instance.circuit.is_monotone():
        raise ReductionError("AW[P] instances here use monotone circuits")
    return alternating_weighted_satisfiable(instance)


MONOTONE_AW_P = ParametricProblem(
    name="monotone-alternating-weighted-circuit-sat",
    solver=monotone_only,
    parameter=lambda inst: inst.parameter,
    size=lambda inst: len(inst.circuit),
    description="monotone alternating weighted circuit sat (AW[P])",
)


# ----------------------------------------------------------------------
# AW[SAT]: the formula (fan-out 1) restriction
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AlternatingWeightedFormulaInstance:
    """Alternating weighted satisfiability of a Boolean *formula*.

    The defining problem of AW[SAT] (the alternating extension of W[SAT]),
    which the paper identifies as the right class for prenex first-order
    queries under parameter v.  Fields mirror
    :class:`AlternatingWeightedCircuitInstance` with a formula instead of
    a circuit.
    """

    formula: BoolFormula
    blocks: Tuple[Tuple[str, ...], ...]
    weights: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.blocks) != len(self.weights):
            raise ReductionError("one weight per block required")
        seen: set = set()
        for block in self.blocks:
            for name in block:
                if name in seen:
                    raise ReductionError(f"variable {name!r} in two blocks")
                seen.add(name)
        # As with the circuit variant, formula variables outside every
        # block are fixed to false; block variables absent from the
        # formula (dummy padding blocks) are equally legal.

    @property
    def parameter(self) -> int:
        return sum(self.weights)


def alternating_weighted_formula_satisfiable(
    instance: AlternatingWeightedFormulaInstance,
) -> bool:
    """Ground truth by direct quantifier recursion over k_i-subsets."""
    formula = instance.formula

    def recurse(index: int, chosen: FrozenSet[str]) -> bool:
        if index == len(instance.blocks):
            return formula.evaluate(chosen)
        block = instance.blocks[index]
        weight = instance.weights[index]
        if weight > len(block):
            subsets: Sequence[Tuple[str, ...]] = ()
        else:
            subsets = tuple(combinations(block, weight))
        if index % 2 == 0:  # existential (blocks are 1-indexed in the paper)
            return any(recurse(index + 1, chosen | set(s)) for s in subsets)
        return all(recurse(index + 1, chosen | set(s)) for s in subsets)

    return recurse(0, frozenset())


AW_SAT = ParametricProblem(
    name="alternating-weighted-formula-sat",
    solver=alternating_weighted_formula_satisfiable,
    parameter=lambda inst: inst.parameter,
    size=lambda inst: inst.formula.size(),
    description="alternating weighted formula satisfiability (AW[SAT]-complete)",
)
