"""Parametric reductions with mechanical soundness checking.

A parametric transformation (§2) maps an instance (x, k) of problem A to an
equivalent instance (y, k') of problem B with k' ≤ g(k) for some function g
independent of x.  (The more general Turing-style reduction — several
oracle calls — is also supported, for the positive-queries upper bound that
the paper notes "uses the full power of parametric reductions".)

:class:`ParametricReduction` packages the transformation together with the
declared parameter bound, and :meth:`verify` replays it over an instance
suite, checking

1. answer equivalence: ``A.solve(x) == B.solve(transform(x))``;
2. the parameter bound: ``B.parameter(transform(x)) <= parameter_bound(k)``.

Every reduction of Theorem 1, Theorem 3, and §5 is registered this way and
exercised by the test-suite and the Table 1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Iterable, List, Tuple, TypeVar

from ..errors import ReductionError
from .problem import ParametricProblem

SourceT = TypeVar("SourceT")
TargetT = TypeVar("TargetT")


@dataclass(frozen=True)
class VerificationRecord(Generic[SourceT]):
    """Outcome of verifying one instance."""

    instance: SourceT
    expected: bool
    produced: bool
    parameter_in: int
    parameter_out: int
    parameter_bound: int

    @property
    def answers_match(self) -> bool:
        return self.expected == self.produced

    @property
    def bound_holds(self) -> bool:
        return self.parameter_out <= self.parameter_bound


@dataclass(frozen=True)
class ParametricReduction(Generic[SourceT, TargetT]):
    """A many-one parametric transformation from *source* to *target*.

    Attributes
    ----------
    transform:
        ``source instance -> target instance``.
    parameter_bound:
        The function g with k' ≤ g(k); checked on every verified instance.
    """

    name: str
    source: ParametricProblem[SourceT]
    target: ParametricProblem[TargetT]
    transform: Callable[[SourceT], TargetT]
    parameter_bound: Callable[[int], int]
    notes: str = ""

    def apply(self, instance: SourceT) -> TargetT:
        """Transform one instance."""
        return self.transform(instance)

    def solve_via_target(self, instance: SourceT) -> bool:
        """Decide a source instance through the target's solver."""
        return self.target.solve(self.transform(instance))

    def verify(
        self, instances: Iterable[SourceT], raise_on_failure: bool = True
    ) -> List[VerificationRecord[SourceT]]:
        """Replay the reduction over *instances*; check soundness + bound."""
        records: List[VerificationRecord[SourceT]] = []
        for instance in instances:
            expected = self.source.solve(instance)
            transformed = self.transform(instance)
            produced = self.target.solve(transformed)
            k_in = self.source.parameter(instance)
            record = VerificationRecord(
                instance=instance,
                expected=expected,
                produced=produced,
                parameter_in=k_in,
                parameter_out=self.target.parameter(transformed),
                parameter_bound=self.parameter_bound(k_in),
            )
            if raise_on_failure and not record.answers_match:
                raise ReductionError(
                    f"{self.name}: answer mismatch on {instance!r}: "
                    f"source={expected}, target={produced}"
                )
            if raise_on_failure and not record.bound_holds:
                raise ReductionError(
                    f"{self.name}: parameter bound violated on {instance!r}: "
                    f"k'={record.parameter_out} > g(k)={record.parameter_bound}"
                )
            records.append(record)
        return records


@dataclass(frozen=True)
class TuringParametricReduction(Generic[SourceT, TargetT]):
    """A reduction making several target-oracle calls per source instance.

    ``solve_with_oracle(instance, oracle)`` must decide the source instance
    using only the supplied oracle for target instances; ``queries`` must
    return the oracle instances it will consult, so the parameter bound can
    be audited.
    """

    name: str
    source: ParametricProblem[SourceT]
    target: ParametricProblem[TargetT]
    queries: Callable[[SourceT], Tuple[TargetT, ...]]
    combine: Callable[[SourceT, Tuple[bool, ...]], bool]
    parameter_bound: Callable[[int], int]
    notes: str = ""

    def solve_via_target(self, instance: SourceT) -> bool:
        """Decide a source instance through target-oracle calls."""
        asked = self.queries(instance)
        answers = tuple(self.target.solve(q) for q in asked)
        return self.combine(instance, answers)

    def verify(
        self, instances: Iterable[SourceT], raise_on_failure: bool = True
    ) -> List[VerificationRecord[SourceT]]:
        """Check equivalence and the per-query parameter bound."""
        records: List[VerificationRecord[SourceT]] = []
        for instance in instances:
            expected = self.source.solve(instance)
            produced = self.solve_via_target(instance)
            k_in = self.source.parameter(instance)
            bound = self.parameter_bound(k_in)
            worst = 0
            for query in self.queries(instance):
                worst = max(worst, self.target.parameter(query))
            record = VerificationRecord(
                instance=instance,
                expected=expected,
                produced=produced,
                parameter_in=k_in,
                parameter_out=worst,
                parameter_bound=bound,
            )
            if raise_on_failure and not record.answers_match:
                raise ReductionError(
                    f"{self.name}: answer mismatch on {instance!r}"
                )
            if raise_on_failure and not record.bound_holds:
                raise ReductionError(
                    f"{self.name}: parameter bound violated on {instance!r}"
                )
            records.append(record)
        return records
