"""Parametric (fixed-parameter) complexity framework.

Problems, reductions with mechanical verification, the W hierarchy, and
the paper's Figure 1 partial order.
"""

from .problem import ParametricProblem
from .reduction import (
    ParametricReduction,
    TuringParametricReduction,
    VerificationRecord,
)
from .whierarchy import (
    Classification,
    ClassificationTable,
    FIGURE_1,
    FIGURE_1_ARCS,
    Q_FIXED,
    Q_VARIABLE,
    QueryParametrization,
    V_FIXED,
    V_VARIABLE,
    WClass,
    easier_than,
    harder_than,
    theorem1_table,
)

__all__ = [
    "Classification",
    "ClassificationTable",
    "FIGURE_1",
    "FIGURE_1_ARCS",
    "ParametricProblem",
    "ParametricReduction",
    "Q_FIXED",
    "Q_VARIABLE",
    "QueryParametrization",
    "TuringParametricReduction",
    "V_FIXED",
    "V_VARIABLE",
    "VerificationRecord",
    "WClass",
    "easier_than",
    "harder_than",
    "theorem1_table",
]
