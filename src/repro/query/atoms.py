"""Atoms: relational atoms, inequality (≠) atoms, and comparison atoms.

The paper's queries have three kinds of body conjuncts:

* relational atoms ``R(t1, ..., tr)`` — the hypergraph edges;
* inequality atoms ``x ≠ y`` / ``x ≠ c`` (§5, Theorem 2);
* comparison atoms ``x < y`` / ``x ≤ y`` and variable-constant variants
  (§5, Theorem 3).

Inequalities are symmetric, and their equality/hashing reflects that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Tuple

from ..errors import QueryError
from .terms import (
    Constant,
    Term,
    Variable,
    constants_in,
    substitute_term,
    terms,
    variables_in,
)


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(terms...)``."""

    relation: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise QueryError("atom relation name must be nonempty")
        object.__setattr__(self, "terms", tuple(self.terms))

    @classmethod
    def of(cls, relation: str, *values: Any) -> "Atom":
        """Build an atom coercing values via the str→variable convention."""
        return cls(relation, terms(values))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables in first-occurrence order."""
        return variables_in(self.terms)

    def variable_set(self) -> FrozenSet[Variable]:
        return frozenset(self.variables())

    def constants(self) -> Tuple[Constant, ...]:
        return constants_in(self.terms)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a variable substitution."""
        return Atom(self.relation, tuple(substitute_term(t, mapping) for t in self.terms))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


class Inequality:
    """An inequality atom ``left ≠ right`` (symmetric).

    At least one side must be a variable; ``c ≠ c'`` between constants would
    be statically decidable and is rejected to keep queries normalized.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: Any, right: Any) -> None:
        lt, rt = terms((left, right))
        if isinstance(lt, Constant) and isinstance(rt, Constant):
            raise QueryError(f"constant-only inequality {lt!r} != {rt!r}")
        if lt == rt:
            raise QueryError(f"trivially false inequality {lt!r} != {rt!r}")
        # Canonical orientation: variable side(s) first, then by sort key.
        if (lt.sort_key() > rt.sort_key()):
            lt, rt = rt, lt
        self.left: Term = lt
        self.right: Term = rt

    def variables(self) -> Tuple[Variable, ...]:
        return variables_in((self.left, self.right))

    def constants(self) -> Tuple[Constant, ...]:
        return constants_in((self.left, self.right))

    def is_variable_variable(self) -> bool:
        """True for ``x ≠ y``; False for ``x ≠ c``."""
        return isinstance(self.left, Variable) and isinstance(self.right, Variable)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Inequality":
        return Inequality(
            substitute_term(self.left, mapping), substitute_term(self.right, mapping)
        )

    def holds(self, left_value: Any, right_value: Any) -> bool:
        """Evaluate on concrete values."""
        return left_value != right_value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Inequality):
            return NotImplemented
        return (self.left, self.right) == (other.left, other.right)

    def __hash__(self) -> int:
        return hash((Inequality, self.left, self.right))

    def __repr__(self) -> str:
        return f"{self.left!r} != {self.right!r}"


class Comparison:
    """A comparison atom ``left < right`` or ``left ≤ right`` (Theorem 3).

    Unlike inequalities, comparisons are directional.  Values are compared
    with Python's ``<`` / ``<=``, i.e. the domain is assumed totally (densely)
    ordered as in the paper's §5 "Comparison Constraints" discussion.
    """

    __slots__ = ("left", "right", "strict")

    def __init__(self, left: Any, right: Any, strict: bool = True) -> None:
        lt, rt = terms((left, right))
        if isinstance(lt, Constant) and isinstance(rt, Constant):
            raise QueryError(f"constant-only comparison {lt!r} {rt!r}")
        self.left: Term = lt
        self.right: Term = rt
        self.strict: bool = bool(strict)

    @property
    def op(self) -> str:
        return "<" if self.strict else "<="

    def variables(self) -> Tuple[Variable, ...]:
        return variables_in((self.left, self.right))

    def constants(self) -> Tuple[Constant, ...]:
        return constants_in((self.left, self.right))

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Comparison":
        return Comparison(
            substitute_term(self.left, mapping),
            substitute_term(self.right, mapping),
            self.strict,
        )

    def holds(self, left_value: Any, right_value: Any) -> bool:
        """Evaluate on concrete values."""
        if self.strict:
            return left_value < right_value
        return left_value <= right_value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comparison):
            return NotImplemented
        return (self.left, self.right, self.strict) == (
            other.left,
            other.right,
            other.strict,
        )

    def __hash__(self) -> int:
        return hash((Comparison, self.left, self.right, self.strict))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"
