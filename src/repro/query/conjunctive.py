"""Conjunctive queries in rule form: ``G(t0) ← R1(t1), ..., Rs(ts)``.

A :class:`ConjunctiveQuery` carries a head (output name + terms), relational
atoms, and optionally inequality (≠) and comparison (< / ≤) atoms — the
three body kinds that appear in the paper.  The two complexity parameters of
the paper are exposed as :meth:`query_size` (q) and :meth:`num_variables`
(v).

Queries must be *safe* (every head variable occurs in a relational atom) and
*range-restricted* (every variable of an inequality or comparison atom
occurs in a relational atom); unsafe queries raise :class:`QueryError` at
construction time.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from ..errors import QueryError
from .atoms import Atom, Comparison, Inequality
from .terms import Constant, Term, Variable, terms, variables_in


class ConjunctiveQuery:
    """An immutable conjunctive query, possibly with ≠ and < atoms.

    Parameters
    ----------
    head_terms:
        Terms of the head tuple t0 (variables and constants).
    atoms:
        Relational atoms of the body.  Must be nonempty.
    inequalities, comparisons:
        Optional ≠ and < / ≤ atoms.
    head_name:
        Name of the defined relation G (cosmetic; defaults to ``"ANS"``).
    """

    __slots__ = ("head_name", "head_terms", "atoms", "inequalities", "comparisons")

    def __init__(
        self,
        head_terms: Sequence[Any],
        atoms: Iterable[Atom],
        inequalities: Iterable[Inequality] = (),
        comparisons: Iterable[Comparison] = (),
        head_name: str = "ANS",
    ) -> None:
        self.head_name = head_name
        self.head_terms: Tuple[Term, ...] = terms(head_terms)
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        self.inequalities: Tuple[Inequality, ...] = tuple(inequalities)
        self.comparisons: Tuple[Comparison, ...] = tuple(comparisons)
        self._validate()

    def _validate(self) -> None:
        if not self.atoms:
            raise QueryError("conjunctive query needs at least one relational atom")
        body_vars = self.body_variable_set()
        for v in variables_in(self.head_terms):
            if v not in body_vars:
                raise QueryError(f"unsafe query: head variable {v!r} not in body")
        for ineq in self.inequalities:
            for v in ineq.variables():
                if v not in body_vars:
                    raise QueryError(
                        f"range restriction violated: {v!r} occurs only in {ineq!r}"
                    )
        for comp in self.comparisons:
            for v in comp.variables():
                if v not in body_vars:
                    raise QueryError(
                        f"range restriction violated: {v!r} occurs only in {comp!r}"
                    )

    # ------------------------------------------------------------------
    # Shape and parameters
    # ------------------------------------------------------------------

    def body_variables(self) -> Tuple[Variable, ...]:
        """Distinct variables of the relational atoms, in occurrence order."""
        collected: Dict[Variable, None] = {}
        for atom in self.atoms:
            for v in atom.variables():
                collected.setdefault(v, None)
        return tuple(collected)

    def body_variable_set(self) -> FrozenSet[Variable]:
        return frozenset(self.body_variables())

    def variables(self) -> Tuple[Variable, ...]:
        """All distinct variables (body ∪ head; safety makes this the body's)."""
        return self.body_variables()

    def head_variables(self) -> Tuple[Variable, ...]:
        """Distinct head variables, in head order."""
        return variables_in(self.head_terms)

    def existential_variables(self) -> Tuple[Variable, ...]:
        """Body variables not exported by the head (implicitly ∃-quantified)."""
        exported = set(self.head_variables())
        return tuple(v for v in self.body_variables() if v not in exported)

    def is_boolean(self) -> bool:
        """True iff the head exports no variables (a 0-ary 'goal' query)."""
        return not self.head_variables()

    def num_atoms(self) -> int:
        """Number of relational atoms (the parameter k of the 2-CNF reduction)."""
        return len(self.atoms)

    def query_size(self) -> int:
        """The parameter q: a structural size measure of the query.

        We count one unit per atom occurrence plus one per term occurrence
        (head included), which is within a constant factor of the length of
        the standard string encoding the paper assumes.
        """
        size = 1 + len(self.head_terms)
        for atom in self.atoms:
            size += 1 + atom.arity
        size += 3 * len(self.inequalities)
        size += 3 * len(self.comparisons)
        return size

    def num_variables(self) -> int:
        """The parameter v: number of distinct variables in the query."""
        return len(self.variables())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def substitute(self, mapping: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a variable substitution to head and body uniformly.

        Inequalities that become constant-only are evaluated: a true one is
        dropped, a false one is replaced by an unsatisfiable pair of atoms?
        No — we keep the semantics honest by raising :class:`QueryError`
        if a substitution statically falsifies or trivializes an atom;
        callers (the decision-problem constructor) never do this for
        well-formed candidate tuples with distinct constants per variable.
        """
        new_ineqs = []
        for ineq in self.inequalities:
            left = mapping.get(ineq.left, ineq.left) if isinstance(ineq.left, Variable) else ineq.left
            right = mapping.get(ineq.right, ineq.right) if isinstance(ineq.right, Variable) else ineq.right
            if isinstance(left, Constant) and isinstance(right, Constant):
                if left == right:
                    raise QueryError(
                        f"substitution falsifies {ineq!r}; query is unsatisfiable"
                    )
                continue  # statically true, drop
            new_ineqs.append(Inequality(left, right))
        new_comps = []
        for comp in self.comparisons:
            left = mapping.get(comp.left, comp.left) if isinstance(comp.left, Variable) else comp.left
            right = mapping.get(comp.right, comp.right) if isinstance(comp.right, Variable) else comp.right
            if isinstance(left, Constant) and isinstance(right, Constant):
                if comp.holds(left.value, right.value):
                    continue  # statically true, drop
                raise QueryError(
                    f"substitution falsifies {comp!r}; query is unsatisfiable"
                )
            new_comps.append(Comparison(left, right, comp.strict))
        return ConjunctiveQuery(
            tuple(
                mapping.get(t, t) if isinstance(t, Variable) else t
                for t in self.head_terms
            ),
            (a.substitute(mapping) for a in self.atoms),
            new_ineqs,
            new_comps,
            head_name=self.head_name,
        )

    def decision_instance(self, candidate: Sequence[Any]) -> "ConjunctiveQuery":
        """The Boolean query asking whether *candidate* ∈ Q(d).

        Substitutes the candidate tuple's constants for the head variables
        (the paper's "after substituting the constants of the tuple t in the
        query Q") and returns the resulting Boolean query.

        Raises :class:`QueryError` if the candidate is incompatible with the
        head pattern (wrong arity, or mismatched constants) or if the same
        head variable would receive two different constants.
        """
        values = tuple(candidate)
        if len(values) != len(self.head_terms):
            raise QueryError(
                f"candidate arity {len(values)} != head arity {len(self.head_terms)}"
            )
        mapping: Dict[Variable, Term] = {}
        for head_term, value in zip(self.head_terms, values):
            if isinstance(head_term, Constant):
                if head_term.value != value:
                    raise QueryError(
                        f"candidate value {value!r} conflicts with head constant "
                        f"{head_term!r}"
                    )
                continue
            bound = mapping.get(head_term)
            if bound is not None and bound != Constant(value):
                raise QueryError(
                    f"candidate binds {head_term!r} to both {bound!r} and {value!r}"
                )
            mapping[head_term] = Constant(value)
        substituted = self.substitute(mapping)
        return ConjunctiveQuery(
            (),
            substituted.atoms,
            substituted.inequalities,
            substituted.comparisons,
            head_name=self.head_name,
        )

    def without_constraints(self) -> "ConjunctiveQuery":
        """The purely relational core (drops ≠ and < atoms)."""
        return ConjunctiveQuery(
            self.head_terms, self.atoms, (), (), head_name=self.head_name
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def hypergraph(self):
        """The query hypergraph H = (V, E) over *relational* atoms only.

        Per §5, inequality and comparison atoms are deliberately excluded;
        the query is *acyclic* iff this hypergraph is acyclic.
        """
        from ..hypergraph import Hypergraph  # local import to avoid a cycle

        edges = [frozenset(a.variable_set()) for a in self.atoms]
        return Hypergraph(self.body_variable_set(), edges)

    def is_acyclic(self) -> bool:
        """True iff the relational-atom hypergraph is (alpha-)acyclic."""
        return self.hypergraph().is_acyclic()

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.head_terms == other.head_terms
            and self.atoms == other.atoms
            and frozenset(self.inequalities) == frozenset(other.inequalities)
            and frozenset(self.comparisons) == frozenset(other.comparisons)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.head_terms,
                self.atoms,
                frozenset(self.inequalities),
                frozenset(self.comparisons),
            )
        )

    def __repr__(self) -> str:
        head_inner = ", ".join(repr(t) for t in self.head_terms)
        parts = [repr(a) for a in self.atoms]
        parts += [repr(i) for i in self.inequalities]
        parts += [repr(c) for c in self.comparisons]
        return f"{self.head_name}({head_inner}) :- " + ", ".join(parts)
