"""Query languages of the paper: conjunctive, positive, first-order, Datalog.

Construction can go through the class constructors, the fluent helpers in
:mod:`repro.query.builders`, or the textual :mod:`repro.query.parser`.
"""

from .atoms import Atom, Comparison, Inequality
from .conjunctive import ConjunctiveQuery
from .datalog import DatalogProgram, Rule
from .first_order import (
    And,
    AtomFormula,
    Exists,
    FirstOrderQuery,
    Forall,
    Formula,
    Not,
    Or,
    prenex_formula,
    to_nnf,
    to_prenex,
)
from .ineq_formula import (
    IneqAnd,
    IneqFormula,
    IneqLeaf,
    IneqOr,
    as_ineq_formula,
    conjunction_of,
    ineq_and,
    ineq_or,
    is_conjunctive_in_constants,
    variable_constant_split,
)
from .homomorphism import (
    are_equivalent,
    canonical_database,
    find_homomorphism,
    is_contained_in,
    is_homomorphism,
    minimize,
)
from .parser import parse_program, parse_query
from .positive import PositiveQuery
from .terms import C, Constant, Term, V, Variable, fresh_variable, term, terms

__all__ = [
    "And",
    "Atom",
    "AtomFormula",
    "C",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "DatalogProgram",
    "Exists",
    "FirstOrderQuery",
    "Forall",
    "Formula",
    "IneqAnd",
    "IneqFormula",
    "IneqLeaf",
    "IneqOr",
    "Inequality",
    "Not",
    "Or",
    "PositiveQuery",
    "Rule",
    "Term",
    "V",
    "Variable",
    "are_equivalent",
    "as_ineq_formula",
    "canonical_database",
    "conjunction_of",
    "find_homomorphism",
    "is_contained_in",
    "is_homomorphism",
    "minimize",
    "fresh_variable",
    "ineq_and",
    "ineq_or",
    "is_conjunctive_in_constants",
    "parse_program",
    "parse_query",
    "prenex_formula",
    "term",
    "terms",
    "to_nnf",
    "to_prenex",
    "variable_constant_split",
]
