"""Monotone Boolean formulas over inequality atoms (∧ / ∨ of ≠).

The final part of §5 extends Theorem 2 from a *conjunction* of inequalities
to an arbitrary Boolean formula φ built from inequality atoms using ∧ and ∨
(parameter q), and — with restrictions on the variable-constant atoms — for
parameter v as well.  This module provides the φ AST with the measures the
extended algorithms need: the sets of variables and constants occurring in
φ, and evaluation under an instantiation.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, Mapping, Tuple, Union

from ..errors import QueryError
from .atoms import Inequality
from .terms import Constant, Variable


class IneqLeaf:
    """A leaf holding one inequality atom."""

    __slots__ = ("atom",)

    def __init__(self, atom: Inequality) -> None:
        self.atom = atom

    def evaluate(self, valuation: Mapping[Variable, Any]) -> bool:
        left = self.atom.left
        right = self.atom.right
        lv = valuation[left] if isinstance(left, Variable) else left.value
        rv = valuation[right] if isinstance(right, Variable) else right.value
        return lv != rv

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(self.atom.variables())

    def constants(self) -> FrozenSet[Constant]:
        return frozenset(self.atom.constants())

    def leaves(self) -> Tuple[Inequality, ...]:
        return (self.atom,)

    def __repr__(self) -> str:
        return repr(self.atom)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IneqLeaf) and self.atom == other.atom

    def __hash__(self) -> int:
        return hash((IneqLeaf, self.atom))


class _Junction:
    """Shared implementation of ∧ / ∨ nodes."""

    __slots__ = ("children",)
    _symbol = "?"
    _fold: Callable

    def __init__(self, children: Iterable["IneqFormula"]) -> None:
        flat = []
        for child in children:
            child = as_ineq_formula(child)
            if type(child) is type(self):
                flat.extend(child.children)  # associativity: flatten
            else:
                flat.append(child)
        if not flat:
            raise QueryError(f"empty {self._symbol}-junction")
        self.children: Tuple["IneqFormula", ...] = tuple(flat)

    def evaluate(self, valuation: Mapping[Variable, Any]) -> bool:
        fold = all if isinstance(self, IneqAnd) else any
        return fold(child.evaluate(valuation) for child in self.children)

    def variables(self) -> FrozenSet[Variable]:
        out: FrozenSet[Variable] = frozenset()
        for child in self.children:
            out |= child.variables()
        return out

    def constants(self) -> FrozenSet[Constant]:
        out: FrozenSet[Constant] = frozenset()
        for child in self.children:
            out |= child.constants()
        return out

    def leaves(self) -> Tuple[Inequality, ...]:
        out: Tuple[Inequality, ...] = ()
        for child in self.children:
            out += child.leaves()
        return out

    def __repr__(self) -> str:
        sym = f" {self._symbol} "
        return "(" + sym.join(repr(c) for c in self.children) + ")"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self), self.children))


class IneqAnd(_Junction):
    """Conjunction of inequality subformulas."""

    _symbol = "&"


class IneqOr(_Junction):
    """Disjunction of inequality subformulas."""

    _symbol = "|"


IneqFormula = Union[IneqLeaf, IneqAnd, IneqOr]


def as_ineq_formula(value: Union[IneqFormula, Inequality]) -> IneqFormula:
    """Coerce a bare :class:`Inequality` into a leaf."""
    if isinstance(value, Inequality):
        return IneqLeaf(value)
    if isinstance(value, (IneqLeaf, IneqAnd, IneqOr)):
        return value
    raise QueryError(f"not an inequality formula: {value!r}")


def ineq_and(*children: Union[IneqFormula, Inequality]) -> IneqFormula:
    """∧ of the given subformulas (a single child passes through)."""
    if len(children) == 1:
        return as_ineq_formula(children[0])
    return IneqAnd(children)


def ineq_or(*children: Union[IneqFormula, Inequality]) -> IneqFormula:
    """∨ of the given subformulas (a single child passes through)."""
    if len(children) == 1:
        return as_ineq_formula(children[0])
    return IneqOr(children)


def conjunction_of(atoms: Iterable[Inequality]) -> IneqFormula:
    """The plain-conjunction φ corresponding to Theorem 2's atom list."""
    atom_list = list(atoms)
    if not atom_list:
        raise QueryError("conjunction_of needs at least one atom")
    return ineq_and(*atom_list)


def variable_constant_split(
    formula: IneqFormula,
) -> Tuple[FrozenSet[Variable], FrozenSet[Constant]]:
    """The (variables, constants) of φ — the paper's k = |vars| + |consts|."""
    return formula.variables(), formula.constants()


def is_conjunctive_in_constants(formula: IneqFormula) -> bool:
    """True iff every variable-constant atom ``x ≠ c`` occurs only under ∧.

    This is the §5 side condition for parameter v: φ must be a conjunction
    of ``x ≠ c`` atoms together with an arbitrary ∧/∨ formula over
    variable-variable atoms.  Concretely we check that no ``x ≠ c`` leaf
    appears beneath an ∨ node.
    """

    def check(node: IneqFormula, under_or: bool) -> bool:
        if isinstance(node, IneqLeaf):
            if not node.atom.is_variable_variable() and under_or:
                return False
            return True
        if isinstance(node, IneqOr):
            return all(check(c, True) for c in node.children)
        return all(check(c, under_or) for c in node.children)

    return check(formula, False)
