"""First-order formulas and queries (relational calculus).

The AST supports the full first-order fragment of the paper: relational
atoms, ¬, ∧, ∨, ∃ and ∀.  Variable *names* can be reused under nested
quantifiers — this matters because the paper's parameter v counts distinct
variable names, and the Theorem 1 first-order reduction achieves v = k + 2
precisely by reusing two quantified variables (y, z) at every circuit level.

Key operations:

* :meth:`Formula.free_variables` / :meth:`Formula.variable_names` — the v
  measure counts *all* distinct names, free or bound.
* :meth:`Formula.substitute` — capture-avoiding substitution.
* :func:`to_nnf` / :func:`to_prenex` — normal forms.  Prenexing renames
  bound variables apart, which in general increases v; the paper highlights
  exactly this subtlety, and our tests verify both semantics preservation
  and the v increase.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
    Union,
)

from ..errors import QueryError
from .atoms import Atom
from .terms import (
    Constant,
    Term,
    Variable,
    fresh_variable,
    terms,
    variables_in,
)


class Formula:
    """Abstract base of first-order formula nodes."""

    __slots__ = ()

    def free_variables(self) -> FrozenSet[Variable]:
        raise NotImplementedError

    def variable_names(self) -> FrozenSet[str]:
        """All distinct variable names occurring (free or bound)."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Formula":
        """Capture-avoiding substitution of free variables."""
        raise NotImplementedError

    def size(self) -> int:
        """Structural size (the parameter q, up to a constant factor)."""
        raise NotImplementedError

    def is_positive(self) -> bool:
        """True iff the formula uses only atoms, ∧, ∨ and ∃."""
        raise NotImplementedError

    def atoms(self) -> Tuple[Atom, ...]:
        """All relational atom occurrences, left to right."""
        raise NotImplementedError


class AtomFormula(Formula):
    """A relational atom as a formula leaf."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom) -> None:
        self.atom = atom

    def free_variables(self) -> FrozenSet[Variable]:
        return self.atom.variable_set()

    def variable_names(self) -> FrozenSet[str]:
        return frozenset(v.name for v in self.atom.variables())

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Formula":
        return AtomFormula(self.atom.substitute(mapping))

    def size(self) -> int:
        return 1 + self.atom.arity

    def is_positive(self) -> bool:
        return True

    def atoms(self) -> Tuple[Atom, ...]:
        return (self.atom,)

    def __repr__(self) -> str:
        return repr(self.atom)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomFormula) and self.atom == other.atom

    def __hash__(self) -> int:
        return hash((AtomFormula, self.atom))


class Not(Formula):
    """Negation ¬φ."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables()

    def variable_names(self) -> FrozenSet[str]:
        return self.operand.variable_names()

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Formula":
        return Not(self.operand.substitute(mapping))

    def size(self) -> int:
        return 1 + self.operand.size()

    def is_positive(self) -> bool:
        return False

    def atoms(self) -> Tuple[Atom, ...]:
        return self.operand.atoms()

    def __repr__(self) -> str:
        return f"~{self.operand!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash((Not, self.operand))


class _NaryConnective(Formula):
    """Shared implementation of ∧ / ∨ (n-ary, flattened, order-preserving)."""

    __slots__ = ("children",)
    _symbol = "?"

    def __init__(self, children: Iterable[Formula]) -> None:
        flat: List[Formula] = []
        for child in children:
            if not isinstance(child, Formula):
                raise QueryError(f"not a formula: {child!r}")
            if type(child) is type(self):
                flat.extend(child.children)
            else:
                flat.append(child)
        if len(flat) < 1:
            raise QueryError(f"empty {self._symbol}-connective")
        self.children = tuple(flat)

    def free_variables(self) -> FrozenSet[Variable]:
        out: FrozenSet[Variable] = frozenset()
        for child in self.children:
            out |= child.free_variables()
        return out

    def variable_names(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for child in self.children:
            out |= child.variable_names()
        return out

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Formula":
        return type(self)(c.substitute(mapping) for c in self.children)

    def size(self) -> int:
        return 1 + sum(c.size() for c in self.children)

    def is_positive(self) -> bool:
        return all(c.is_positive() for c in self.children)

    def atoms(self) -> Tuple[Atom, ...]:
        out: Tuple[Atom, ...] = ()
        for child in self.children:
            out += child.atoms()
        return out

    def __repr__(self) -> str:
        sym = f" {self._symbol} "
        return "(" + sym.join(repr(c) for c in self.children) + ")"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self), self.children))


class And(_NaryConnective):
    """Conjunction φ1 ∧ ... ∧ φn."""

    _symbol = "&"


class Or(_NaryConnective):
    """Disjunction φ1 ∨ ... ∨ φn."""

    _symbol = "|"


class _Quantifier(Formula):
    """Shared implementation of ∃ / ∀."""

    __slots__ = ("variable", "operand")
    _symbol = "?"

    def __init__(self, variable: Union[Variable, str], operand: Formula) -> None:
        self.variable = variable if isinstance(variable, Variable) else Variable(variable)
        self.operand = operand

    def free_variables(self) -> FrozenSet[Variable]:
        return self.operand.free_variables() - {self.variable}

    def variable_names(self) -> FrozenSet[str]:
        return self.operand.variable_names() | {self.variable.name}

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Formula":
        # Drop any binding of the quantified variable itself.
        effective = {v: t for v, t in mapping.items() if v != self.variable}
        if not effective:
            return self
        # Capture avoidance: if a replacement mentions our bound variable,
        # rename the bound variable apart first.
        replacement_vars = set()
        for t in effective.values():
            if isinstance(t, Variable):
                replacement_vars.add(t)
        if self.variable in replacement_vars:
            taken = (
                self.operand.free_variables()
                | replacement_vars
                | set(effective)
            )
            renamed = fresh_variable(self.variable.name, taken)
            body = self.operand.substitute({self.variable: renamed})
            return type(self)(renamed, body.substitute(effective))
        return type(self)(self.variable, self.operand.substitute(effective))

    def size(self) -> int:
        return 2 + self.operand.size()

    def is_positive(self) -> bool:
        return isinstance(self, Exists) and self.operand.is_positive()

    def atoms(self) -> Tuple[Atom, ...]:
        return self.operand.atoms()

    def __repr__(self) -> str:
        return f"{self._symbol}{self.variable!r}.{self.operand!r}"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.variable == other.variable
            and self.operand == other.operand
        )

    def __hash__(self) -> int:
        return hash((type(self), self.variable, self.operand))


class Exists(_Quantifier):
    """Existential quantification ∃x.φ."""

    _symbol = "E"


class Forall(_Quantifier):
    """Universal quantification ∀x.φ."""

    _symbol = "A"


# ----------------------------------------------------------------------
# Normal forms
# ----------------------------------------------------------------------


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: push ¬ down to atoms via De Morgan and duality."""
    if isinstance(formula, AtomFormula):
        return formula
    if isinstance(formula, And):
        return And(to_nnf(c) for c in formula.children)
    if isinstance(formula, Or):
        return Or(to_nnf(c) for c in formula.children)
    if isinstance(formula, Exists):
        return Exists(formula.variable, to_nnf(formula.operand))
    if isinstance(formula, Forall):
        return Forall(formula.variable, to_nnf(formula.operand))
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, AtomFormula):
            return formula
        if isinstance(inner, Not):
            return to_nnf(inner.operand)
        if isinstance(inner, And):
            return Or(to_nnf(Not(c)) for c in inner.children)
        if isinstance(inner, Or):
            return And(to_nnf(Not(c)) for c in inner.children)
        if isinstance(inner, Exists):
            return Forall(inner.variable, to_nnf(Not(inner.operand)))
        if isinstance(inner, Forall):
            return Exists(inner.variable, to_nnf(Not(inner.operand)))
    raise QueryError(f"unknown formula node: {formula!r}")


def to_prenex(formula: Formula) -> Tuple[Tuple[Tuple[str, Variable], ...], Formula]:
    """Prenex normal form: ``(prefix, matrix)`` with a quantifier-free matrix.

    The prefix is a tuple of ``("E" | "A", variable)`` pairs, outermost
    first.  Bound variables are renamed apart, so the prefix variables are
    pairwise distinct and distinct from all free variables — this is the
    transformation the paper notes "in general increases their number and
    thus does not preserve the parameter v".
    """
    nnf = to_nnf(formula)
    taken = {Variable(n) for n in nnf.variable_names()}

    def pull(f: Formula) -> Tuple[List[Tuple[str, Variable]], Formula]:
        if isinstance(f, (AtomFormula, Not)):
            return [], f
        if isinstance(f, (Exists, Forall)):
            quant = "E" if isinstance(f, Exists) else "A"
            var = f.variable
            if var in taken_used:
                renamed = fresh_variable(var.name, taken | taken_used)
                body = f.operand.substitute({var: renamed})
                var = renamed
            else:
                body = f.operand
            taken_used.add(var)
            inner_prefix, matrix = pull(body)
            return [(quant, var)] + inner_prefix, matrix
        if isinstance(f, (And, Or)):
            prefix: List[Tuple[str, Variable]] = []
            matrices: List[Formula] = []
            for child in f.children:
                child_prefix, child_matrix = pull(child)
                prefix.extend(child_prefix)
                matrices.append(child_matrix)
            return prefix, type(f)(matrices)
        raise QueryError(f"unknown formula node: {f!r}")

    taken_used: set = set(nnf.free_variables())
    prefix, matrix = pull(nnf)
    return tuple(prefix), matrix


def prenex_formula(prefix: Sequence[Tuple[str, Variable]], matrix: Formula) -> Formula:
    """Rebuild a formula from a prenex (prefix, matrix) pair."""
    result = matrix
    for quant, var in reversed(tuple(prefix)):
        if quant == "E":
            result = Exists(var, result)
        elif quant == "A":
            result = Forall(var, result)
        else:
            raise QueryError(f"unknown quantifier tag {quant!r}")
    return result


# ----------------------------------------------------------------------
# Query wrapper
# ----------------------------------------------------------------------


class FirstOrderQuery:
    """A first-order query ``{t0 | φ}``.

    The head terms list the output tuple; its variables must be exactly the
    free variables of φ.  A Boolean query has an empty head and a sentence
    as its formula.
    """

    __slots__ = ("head_name", "head_terms", "formula")

    def __init__(
        self,
        head_terms: Sequence[Any],
        formula: Formula,
        head_name: str = "ANS",
    ) -> None:
        self.head_name = head_name
        self.head_terms: Tuple[Term, ...] = terms(head_terms)
        self.formula = formula
        head_vars = set(variables_in(self.head_terms))
        free = set(formula.free_variables())
        if head_vars != free:
            raise QueryError(
                f"head variables {sorted(v.name for v in head_vars)} must equal "
                f"free variables {sorted(v.name for v in free)}"
            )

    def head_variables(self) -> Tuple[Variable, ...]:
        return variables_in(self.head_terms)

    def is_boolean(self) -> bool:
        return not self.head_terms or not self.head_variables()

    def query_size(self) -> int:
        """The parameter q."""
        return len(self.head_terms) + 1 + self.formula.size()

    def num_variables(self) -> int:
        """The parameter v: distinct variable *names*, free or bound."""
        return len(self.formula.variable_names() | {v.name for v in self.head_variables()})

    def decision_instance(self, candidate: Sequence[Any]) -> "FirstOrderQuery":
        """The Boolean query for the decision problem ``candidate ∈ Q(d)``."""
        values = tuple(candidate)
        if len(values) != len(self.head_terms):
            raise QueryError(
                f"candidate arity {len(values)} != head arity {len(self.head_terms)}"
            )
        mapping: Dict[Variable, Term] = {}
        for head_term, value in zip(self.head_terms, values):
            if isinstance(head_term, Constant):
                if head_term.value != value:
                    raise QueryError(
                        f"candidate value {value!r} conflicts with {head_term!r}"
                    )
                continue
            bound = mapping.get(head_term)
            if bound is not None and bound != Constant(value):
                raise QueryError(f"conflicting bindings for {head_term!r}")
            mapping[head_term] = Constant(value)
        return FirstOrderQuery((), self.formula.substitute(mapping), self.head_name)

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.head_terms)
        return f"{self.head_name}({inner}) := {self.formula!r}"
