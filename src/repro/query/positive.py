"""Positive queries: relational calculus with ∃, ∧ and ∨ (no negation).

A positive query is ``{t0 | φ}`` where φ is built from relational atoms
with ∃, ∧, ∨.  The AST is shared with :mod:`repro.query.first_order`; the
:class:`PositiveQuery` wrapper enforces positivity.

The two classical transformations of Theorem 1(2) live here:

* :meth:`PositiveQuery.to_prenex` — prenex normal form (all ∃ up front).
  Renaming may increase the number of variables, which is exactly why the
  paper's parameter-v classification distinguishes prenex queries.
* :meth:`PositiveQuery.to_union_of_conjunctive_queries` — the exponential
  DNF expansion into conjunctive queries, used for the W[1] upper bound
  under parameter q.
"""

from __future__ import annotations

from itertools import product
from typing import Any, List, Sequence, Tuple

from ..errors import QueryError
from .atoms import Atom
from .conjunctive import ConjunctiveQuery
from .first_order import (
    And,
    AtomFormula,
    Exists,
    Formula,
    Or,
    prenex_formula,
    to_prenex,
)
from .terms import Term, Variable, terms, variables_in


class PositiveQuery:
    """An immutable positive query ``{t0 | φ}`` with φ ∈ {atom, ∧, ∨, ∃}."""

    __slots__ = ("head_name", "head_terms", "formula")

    def __init__(
        self,
        head_terms: Sequence[Any],
        formula: Formula,
        head_name: str = "ANS",
    ) -> None:
        if not formula.is_positive():
            raise QueryError("positive queries admit only atoms, AND, OR, EXISTS")
        self.head_name = head_name
        self.head_terms: Tuple[Term, ...] = terms(head_terms)
        self.formula = formula
        head_vars = set(variables_in(self.head_terms))
        free = set(formula.free_variables())
        if head_vars != free:
            raise QueryError(
                f"head variables {sorted(v.name for v in head_vars)} must equal "
                f"free variables {sorted(v.name for v in free)}"
            )

    # ------------------------------------------------------------------

    def head_variables(self) -> Tuple[Variable, ...]:
        return variables_in(self.head_terms)

    def is_boolean(self) -> bool:
        return not self.head_variables()

    def query_size(self) -> int:
        """The parameter q."""
        return len(self.head_terms) + 1 + self.formula.size()

    def num_variables(self) -> int:
        """The parameter v: distinct variable names, free or bound."""
        return len(
            self.formula.variable_names() | {v.name for v in self.head_variables()}
        )

    def is_prenex(self) -> bool:
        """True iff φ is ∃y1...∃yk (quantifier-free matrix)."""
        node = self.formula
        while isinstance(node, Exists):
            node = node.operand
        return _quantifier_free(node)

    # ------------------------------------------------------------------

    def decision_instance(self, candidate: Sequence[Any]) -> "PositiveQuery":
        """The Boolean positive query for ``candidate ∈ Q(d)``."""
        from .first_order import FirstOrderQuery

        fo = FirstOrderQuery(self.head_terms, self.formula, self.head_name)
        decided = fo.decision_instance(candidate)
        return PositiveQuery((), decided.formula, self.head_name)

    def to_prenex(self) -> "PositiveQuery":
        """An equivalent prenex positive query (∃ prefix + matrix).

        Bound-variable renaming may increase :meth:`num_variables`; the
        returned query is semantically equivalent (tests verify this against
        the direct evaluator).
        """
        prefix, matrix = to_prenex(self.formula)
        if any(quant != "E" for quant, _ in prefix):
            raise QueryError("positive query prenexing produced a universal")
        return PositiveQuery(
            self.head_terms, prenex_formula(prefix, matrix), self.head_name
        )

    def to_union_of_conjunctive_queries(self) -> Tuple[ConjunctiveQuery, ...]:
        """Expand into the equivalent union of conjunctive queries.

        This is the Theorem 1(2) upper-bound construction for parameter q:
        prenex the query, put the matrix in disjunctive normal form
        (exponential in q in the worst case), and emit one conjunctive query
        per disjunct.  Each disjunct must contain every head variable, else
        the query is unsafe and :class:`QueryError` is raised.
        """
        prenexed = self.to_prenex()
        node = prenexed.formula
        while isinstance(node, Exists):
            node = node.operand
        disjuncts = _dnf(node)
        queries: List[ConjunctiveQuery] = []
        head_vars = set(self.head_variables())
        for atoms in disjuncts:
            covered = set()
            for atom in atoms:
                covered |= atom.variable_set()
            if not head_vars <= covered:
                missing = sorted(v.name for v in head_vars - covered)
                raise QueryError(
                    f"unsafe positive query: disjunct {atoms!r} misses head "
                    f"variables {missing}"
                )
            queries.append(
                ConjunctiveQuery(self.head_terms, atoms, head_name=self.head_name)
            )
        return tuple(queries)

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.head_terms)
        return f"{self.head_name}({inner}) := {self.formula!r}"


def _quantifier_free(node: Formula) -> bool:
    if isinstance(node, AtomFormula):
        return True
    if isinstance(node, (And, Or)):
        return all(_quantifier_free(c) for c in node.children)
    return False


def _dnf(node: Formula) -> Tuple[Tuple[Atom, ...], ...]:
    """DNF of a quantifier-free positive matrix, as atom tuples."""
    if isinstance(node, AtomFormula):
        return ((node.atom,),)
    if isinstance(node, Or):
        out: Tuple[Tuple[Atom, ...], ...] = ()
        for child in node.children:
            out += _dnf(child)
        return out
    if isinstance(node, And):
        child_dnfs = [_dnf(c) for c in node.children]
        combos = []
        for pick in product(*child_dnfs):
            merged: Tuple[Atom, ...] = ()
            for part in pick:
                merged += part
            # Deduplicate repeated atoms within a disjunct.
            seen = {}
            for atom in merged:
                seen.setdefault(atom, None)
            combos.append(tuple(seen))
        return tuple(combos)
    raise QueryError(f"matrix is not quantifier-free positive: {node!r}")
