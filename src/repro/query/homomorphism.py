"""Homomorphisms, containment and minimization of conjunctive queries.

The paper's opening citation is Chandra and Merlin's "Optimal
implementation of conjunctive queries" [5], whose machinery this module
provides:

* a *homomorphism* from Q1 to Q2 maps Q1's variables to Q2's terms so that
  every atom of Q1 lands on an atom of Q2 and the head is preserved;
* **containment**: Q2 ⊆ Q1 iff a homomorphism Q1 → Q2 exists — decided by
  evaluating Q1 over Q2's *canonical database* (Q2's atoms with variables
  frozen into fresh constants), which reuses the backtracking engine;
* **equivalence** and **minimization**: the core of Q is computed by
  repeatedly dropping atoms while equivalence is preserved; the result is
  the unique (up to renaming) minimal equivalent query.

Containment of conjunctive queries is the combined-complexity NP-complete
problem underlying the paper's parametric analysis, so this module is also
where the theory connects back to classical query optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import QueryError
from .conjunctive import ConjunctiveQuery
from .terms import Constant, Term, Variable


@dataclass(frozen=True)
class _FrozenVariable:
    """A canonical-database value standing for a frozen query variable.

    Distinct from every real constant (by type) and hashable, so the
    canonical database can mix frozen variables with genuine constants.
    """

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


def _check_plain(query: ConjunctiveQuery, role: str) -> None:
    if query.inequalities or query.comparisons:
        raise QueryError(
            f"{role} must be a purely relational conjunctive query "
            "(Chandra–Merlin machinery does not cover built-in predicates)"
        )


def canonical_database(query: ConjunctiveQuery):
    """Q's canonical database and its head tuple under the freezing map.

    Returns ``(database, head_tuple)`` where the database holds one tuple
    per atom (variables frozen to :class:`_FrozenVariable` values) and
    *head_tuple* is the frozen image of the head terms.
    """
    from ..relational.database import Database
    from ..relational.relation import Relation
    from ..relational.schema import RelationSchema

    _check_plain(query, "the canonical query")

    def freeze(term: Term) -> Any:
        if isinstance(term, Variable):
            return _FrozenVariable(term.name)
        return term.value

    rows: Dict[str, list] = {}
    arities: Dict[str, int] = {}
    for atom in query.atoms:
        arities.setdefault(atom.relation, atom.arity)
        if arities[atom.relation] != atom.arity:
            raise QueryError(
                f"relation {atom.relation!r} used with two arities"
            )
        rows.setdefault(atom.relation, []).append(
            tuple(freeze(t) for t in atom.terms)
        )
    relations = {
        name: Relation.from_rows(RelationSchema(name, arities[name]).default_attributes(), rs)
        for name, rs in rows.items()
    }
    head = tuple(freeze(t) for t in query.head_terms)
    return Database(relations), head


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Dict[Variable, Term]]:
    """A homomorphism source → target preserving the head, or None.

    Uses the canonical-database trick: evaluate *source*'s decision problem
    for *target*'s frozen head tuple on *target*'s canonical database; a
    satisfying instantiation unfreezes into the homomorphism.
    """
    from ..evaluation.naive import NaiveEvaluator

    _check_plain(source, "the source query")
    _check_plain(target, "the target query")
    if len(source.head_terms) != len(target.head_terms):
        return None

    database, head = canonical_database(target)
    try:
        decided = source.decision_instance(head)
    except QueryError:
        return None  # head patterns are incompatible
    for atom in decided.atoms:
        if atom.relation not in database:
            return None  # source uses a relation target never mentions
        if database[atom.relation].arity != atom.arity:
            return None  # same name, different arity: no homomorphism

    engine = NaiveEvaluator()
    assignments = engine.satisfying_assignments(decided, database)
    if assignments.is_empty():
        return None

    row = next(iter(assignments.rows))
    names = assignments.attributes

    def unfreeze(value: Any) -> Term:
        if isinstance(value, _FrozenVariable):
            return Variable(value.name)
        return Constant(value)

    mapping: Dict[Variable, Term] = {
        Variable(name): unfreeze(value) for name, value in zip(names, row)
    }
    # Head variables were substituted away by decision_instance; restore
    # their images from the target head.
    for source_term, target_term in zip(source.head_terms, target.head_terms):
        if isinstance(source_term, Variable):
            mapping[source_term] = target_term
    return mapping


def is_homomorphism(
    mapping: Dict[Variable, Term],
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
) -> bool:
    """Check a candidate homomorphism explicitly (verification helper)."""
    target_atoms = set(target.atoms)
    for atom in source.atoms:
        image = atom.substitute(mapping)
        if image not in target_atoms:
            return False
    source_head = tuple(
        mapping.get(t, t) if isinstance(t, Variable) else t
        for t in source.head_terms
    )
    return source_head == target.head_terms


def is_contained_in(
    inner: ConjunctiveQuery, outer: ConjunctiveQuery
) -> bool:
    """Is inner ⊆ outer (on every database)?  Chandra–Merlin: hom outer → inner."""
    return find_homomorphism(outer, inner) is not None


def are_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Semantic equivalence: containment both ways."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of *query*: a minimal equivalent subquery.

    Greedily drops atoms whose removal preserves equivalence.  The result
    is unique up to variable renaming (the classical core theorem); tests
    assert equivalence with the input and minimality (no further atom can
    go).
    """
    _check_plain(query, "the query")
    current = query
    changed = True
    while changed:
        changed = False
        if len(current.atoms) == 1:
            break
        for index in range(len(current.atoms)):
            reduced_atoms = (
                current.atoms[:index] + current.atoms[index + 1:]
            )
            try:
                candidate = ConjunctiveQuery(
                    current.head_terms,
                    reduced_atoms,
                    head_name=current.head_name,
                )
            except QueryError:
                continue  # dropping this atom breaks safety
            if are_equivalent(candidate, current):
                current = candidate
                changed = True
                break
    return current
