"""Datalog programs: conjunctive rules with recursion.

A Datalog program is a set of rules ``H(t0) ← B1(t1), ..., Bs(ts)`` over
EDB relations (those of the database) and IDB relations (those defined by
rule heads), with one IDB relation distinguished as the *goal*.  §4 of the
paper shows that when all EDB and IDB arities are bounded by a constant,
Datalog evaluation is W[1]-complete, whereas with growing IDB arity the
query size is *provably* in the exponent (Vardi).

:meth:`DatalogProgram.max_arity` exposes the fixed-arity side condition;
the evaluation engines live in :mod:`repro.evaluation.datalog_eval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from ..errors import QueryError
from .atoms import Atom
from .terms import Variable


@dataclass(frozen=True)
class Rule:
    """A single Datalog rule ``head ← body``."""

    head: Atom
    body: Tuple[Atom, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise QueryError(f"rule for {self.head.relation} has an empty body")
        body_vars: set = set()
        for atom in self.body:
            body_vars |= atom.variable_set()
        for v in self.head.variables():
            if v not in body_vars:
                raise QueryError(
                    f"unsafe rule: head variable {v!r} not in body of "
                    f"{self.head.relation}"
                )

    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables of the rule, body-then-head occurrence order."""
        collected: Dict[Variable, None] = {}
        for atom in self.body:
            for v in atom.variables():
                collected.setdefault(v, None)
        for v in self.head.variables():
            collected.setdefault(v, None)
        return tuple(collected)

    def num_variables(self) -> int:
        return len(self.variables())

    def __repr__(self) -> str:
        return f"{self.head!r} :- " + ", ".join(repr(a) for a in self.body)


class DatalogProgram:
    """An immutable Datalog program with a designated goal relation."""

    __slots__ = ("rules", "goal")

    def __init__(self, rules: Iterable[Rule], goal: str) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.goal = goal
        if not self.rules:
            raise QueryError("Datalog program needs at least one rule")
        if goal not in self.idb_names():
            raise QueryError(f"goal {goal!r} is not defined by any rule")
        arities: Dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head,) + rule.body:
                declared = arities.setdefault(atom.relation, atom.arity)
                if declared != atom.arity:
                    raise QueryError(
                        f"relation {atom.relation!r} used with arities "
                        f"{declared} and {atom.arity}"
                    )

    # ------------------------------------------------------------------

    def idb_names(self) -> FrozenSet[str]:
        """Relations defined by some rule head."""
        return frozenset(rule.head.relation for rule in self.rules)

    def edb_names(self) -> FrozenSet[str]:
        """Relations used in bodies but never defined — the database inputs."""
        idb = self.idb_names()
        used: set = set()
        for rule in self.rules:
            for atom in rule.body:
                used.add(atom.relation)
        return frozenset(used - idb)

    def arity(self, relation: str) -> int:
        for rule in self.rules:
            for atom in (rule.head,) + rule.body:
                if atom.relation == relation:
                    return atom.arity
        raise QueryError(f"relation {relation!r} does not occur in the program")

    def max_arity(self) -> int:
        """Largest arity of any EDB or IDB relation — §4's side condition."""
        arities = set()
        for rule in self.rules:
            for atom in (rule.head,) + rule.body:
                arities.add(atom.arity)
        return max(arities)

    def max_rule_variables(self) -> int:
        """Largest per-rule variable count (the v of each CQ the engine solves)."""
        return max(rule.num_variables() for rule in self.rules)

    def query_size(self) -> int:
        """The parameter q for a Datalog program."""
        size = 0
        for rule in self.rules:
            size += 1 + rule.head.arity
            for atom in rule.body:
                size += 1 + atom.arity
        return size

    def rules_for(self, relation: str) -> Tuple[Rule, ...]:
        """The rules whose head defines *relation*."""
        return tuple(r for r in self.rules if r.head.relation == relation)

    def __repr__(self) -> str:
        lines = [repr(rule) + "." for rule in self.rules]
        return f"-- goal: {self.goal}\n" + "\n".join(lines)
