"""Textual parser for rule-notation queries and Datalog programs.

Grammar (whitespace-insensitive)::

    program  :=  rule ( rule )*
    rule     :=  atom ":-" literal ( "," literal )* "."
    literal  :=  atom | term "!=" term | term "<" term | term "<=" term
    atom     :=  RELNAME [ "(" term ( "," term )* ")" ]
    term     :=  VARNAME | NUMBER | STRING

Lexical conventions:

* relation names start with an uppercase letter: ``R``, ``Edge``;
* variables start with a lowercase letter or underscore: ``x``, ``dept``;
* constants are integers (``42``, ``-3``) or single-quoted strings
  (``'CS'``).

Examples::

    parse_query("G(e) :- EP(e, p), EP(e, q), p != q.")
    parse_program('''
        T(x, y) :- E(x, y).
        T(x, y) :- E(x, z), T(z, y).
    ''', goal="T")
"""

from __future__ import annotations

import re
from typing import Any, List, NamedTuple, Optional, Tuple

from ..errors import ParseError
from .atoms import Atom, Comparison, Inequality
from .conjunctive import ConjunctiveQuery
from .datalog import DatalogProgram, Rule
from .terms import Constant, Term, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<ARROW>:-)
  | (?P<NEQ>!=)
  | (?P<LE><=)
  | (?P<LT><)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.)
  | (?P<STRING>'[^']*')
  | (?P<NUMBER>-?\d+)
  | (?P<RELNAME>[A-Z][A-Za-z0-9_]*)
  | (?P<VARNAME>[a-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def locate(text: str, position: int) -> Tuple[int, int]:
    """1-based (line, column) of a character *position* in *text*.

    ``(-1, -1)`` when the position is unknown (negative or past the end) —
    the sentinel the wire codec forwards untouched.
    """
    if position < 0 or position > len(text):
        return (-1, -1)
    line = text.count("\n", 0, position) + 1
    column = position - text.rfind("\n", 0, position)
    return (line, column)


def _annotate(error: ParseError, text: str) -> ParseError:
    """Attach line/column coordinates to a :class:`ParseError` in place.

    The parser reports character offsets; remote clients of the query
    protocol see only the error payload, so the coordinates they need to
    point at the offending token travel on the exception itself.
    """
    error.line, error.column = locate(text, error.position)
    return error


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.text!r}", token.position
            )
        return token

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- grammar --------------------------------------------------------

    def term(self) -> Term:
        token = self._next()
        if token.kind == "VARNAME":
            return Variable(token.text)
        if token.kind == "NUMBER":
            return Constant(int(token.text))
        if token.kind == "STRING":
            return Constant(token.text[1:-1])
        raise ParseError(f"expected a term, found {token.text!r}", token.position)

    def atom(self) -> Atom:
        name = self._expect("RELNAME")
        nxt = self._peek()
        if nxt is None or nxt.kind != "LPAREN":
            return Atom(name.text, ())
        self._expect("LPAREN")
        terms_list: List[Term] = []
        nxt = self._peek()
        if nxt is not None and nxt.kind != "RPAREN":
            terms_list.append(self.term())
            while self._peek() is not None and self._peek().kind == "COMMA":
                self._next()
                terms_list.append(self.term())
        self._expect("RPAREN")
        return Atom(name.text, tuple(terms_list))

    def literal(self) -> Any:
        """An atom, inequality, or comparison."""
        nxt = self._peek()
        if nxt is None:
            raise ParseError("unexpected end of input")
        if nxt.kind == "RELNAME":
            return self.atom()
        left = self.term()
        op = self._next()
        if op.kind == "NEQ":
            return Inequality(left, self.term())
        if op.kind == "LT":
            return Comparison(left, self.term(), strict=True)
        if op.kind == "LE":
            return Comparison(left, self.term(), strict=False)
        raise ParseError(
            f"expected !=, < or <= after term, found {op.text!r}", op.position
        )

    def rule(self) -> Tuple[Atom, List[Any]]:
        head = self.atom()
        self._expect("ARROW")
        literals = [self.literal()]
        while self._peek() is not None and self._peek().kind == "COMMA":
            self._next()
            literals.append(self.literal())
        self._expect("DOT")
        return head, literals


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a single rule into a :class:`ConjunctiveQuery`.

    The trailing period is optional for single queries.
    """
    stripped = text.strip()
    if not stripped.endswith("."):
        stripped += "."
    # The parser sees the stripped text; error coordinates must point into
    # the text the *caller* sent (remote clients highlight their own
    # input), so positions shift back by the leading whitespace.
    offset = len(text) - len(text.lstrip())
    try:
        parser = _Parser(stripped)
        head, literals = parser.rule()
        if not parser.at_end():
            token = parser._peek()
            raise ParseError(
                f"trailing input after query: {token.text!r}",
                token.position if token else -1,
            )
    except ParseError as error:
        if error.position >= 0:
            error.position += offset
        raise _annotate(error, text) from None
    atoms = [lit for lit in literals if isinstance(lit, Atom)]
    inequalities = [lit for lit in literals if isinstance(lit, Inequality)]
    comparisons = [lit for lit in literals if isinstance(lit, Comparison)]
    return ConjunctiveQuery(
        head.terms, atoms, inequalities, comparisons, head_name=head.relation
    )


def parse_program(text: str, goal: Optional[str] = None) -> DatalogProgram:
    """Parse one or more rules into a :class:`DatalogProgram`.

    Inequalities and comparisons are not part of our Datalog fragment and
    raise :class:`ParseError`.  The goal defaults to the head relation of
    the first rule.
    """
    try:
        parser = _Parser(text)
        rules: List[Rule] = []
        while not parser.at_end():
            head, literals = parser.rule()
            for lit in literals:
                if not isinstance(lit, Atom):
                    raise ParseError(
                        f"Datalog rules admit only relational atoms: {lit!r}"
                    )
            rules.append(Rule(head, tuple(literals)))
        if not rules:
            raise ParseError("no rules found")
    except ParseError as error:
        raise _annotate(error, text) from None
    return DatalogProgram(rules, goal=goal or rules[0].head.relation)
