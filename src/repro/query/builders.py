"""Fluent construction helpers for queries and formulas.

These keep reduction code and tests close to the paper's notation::

    from repro.query.builders import atom, cq, exists_all, and_, or_

    clique_query = cq((), [atom("G", f"x{i}", f"x{j}")
                           for i in range(1, 4) for j in range(i + 1, 4)])
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Union

from .atoms import Atom, Comparison, Inequality
from .conjunctive import ConjunctiveQuery
from .first_order import (
    And,
    AtomFormula,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
)
from .positive import PositiveQuery
from .terms import C, V, Variable, term


def atom(relation: str, *values: Any) -> Atom:
    """A relational atom; strings become variables, other values constants."""
    return Atom.of(relation, *values)


def neq(left: Any, right: Any) -> Inequality:
    """An inequality atom ``left ≠ right``."""
    return Inequality(left, right)


def lt(left: Any, right: Any) -> Comparison:
    """A strict comparison atom ``left < right``."""
    return Comparison(left, right, strict=True)


def le(left: Any, right: Any) -> Comparison:
    """A weak comparison atom ``left ≤ right``."""
    return Comparison(left, right, strict=False)


def cq(
    head: Sequence[Any],
    atoms: Iterable[Atom],
    inequalities: Iterable[Inequality] = (),
    comparisons: Iterable[Comparison] = (),
    name: str = "ANS",
) -> ConjunctiveQuery:
    """A conjunctive query; see :class:`ConjunctiveQuery`."""
    return ConjunctiveQuery(head, atoms, inequalities, comparisons, head_name=name)


def lift(value: Union[Formula, Atom]) -> Formula:
    """Coerce a bare atom into an atomic formula."""
    if isinstance(value, Atom):
        return AtomFormula(value)
    return value


def and_(*children: Union[Formula, Atom]) -> Formula:
    """∧ of the children (a single child passes through)."""
    lifted = [lift(c) for c in children]
    if len(lifted) == 1:
        return lifted[0]
    return And(lifted)


def or_(*children: Union[Formula, Atom]) -> Formula:
    """∨ of the children (a single child passes through)."""
    lifted = [lift(c) for c in children]
    if len(lifted) == 1:
        return lifted[0]
    return Or(lifted)


def not_(child: Union[Formula, Atom]) -> Formula:
    """¬child."""
    return Not(lift(child))


def exists(variable: Union[str, Variable], child: Union[Formula, Atom]) -> Formula:
    """∃variable.child."""
    return Exists(variable, lift(child))


def forall(variable: Union[str, Variable], child: Union[Formula, Atom]) -> Formula:
    """∀variable.child."""
    return Forall(variable, lift(child))


def exists_all(
    variables: Iterable[Union[str, Variable]], child: Union[Formula, Atom]
) -> Formula:
    """∃v1.∃v2...∃vn.child, outermost-first."""
    result = lift(child)
    for variable in reversed(list(variables)):
        result = Exists(variable, result)
    return result


def forall_all(
    variables: Iterable[Union[str, Variable]], child: Union[Formula, Atom]
) -> Formula:
    """∀v1.∀v2...∀vn.child, outermost-first."""
    result = lift(child)
    for variable in reversed(list(variables)):
        result = Forall(variable, result)
    return result


def positive(
    head: Sequence[Any], formula: Union[Formula, Atom], name: str = "ANS"
) -> PositiveQuery:
    """A positive query; see :class:`PositiveQuery`."""
    return PositiveQuery(head, lift(formula), head_name=name)


__all__ = [
    "C",
    "V",
    "and_",
    "atom",
    "cq",
    "exists",
    "exists_all",
    "forall",
    "forall_all",
    "le",
    "lift",
    "lt",
    "neq",
    "not_",
    "or_",
    "positive",
    "term",
]
