"""Terms: variables and constants.

Queries are built from *terms* — variables (``Variable("x")``) and constants
(``Constant(3)``).  Both are immutable and hashable.  The helpers :func:`V`
and :func:`C` keep query construction terse; :func:`term` applies the
library-wide convention that bare strings denote variables and any other
Python value denotes a constant (string constants are made with ``C``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Tuple, Union

from ..errors import QueryError


@dataclass(frozen=True)
class Variable:
    """A query variable, identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise QueryError(f"invalid variable name: {self.name!r}")
        if self.name.startswith("#"):
            raise QueryError(
                f"variable names may not start with '#' (reserved): {self.name!r}"
            )

    def __repr__(self) -> str:
        return self.name

    def sort_key(self) -> Tuple[int, str]:
        return (0, self.name)


@dataclass(frozen=True)
class Constant:
    """A constant value (any hashable Python object)."""

    value: Any

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)

    def sort_key(self) -> Tuple[int, str]:
        return (1, repr(self.value))


Term = Union[Variable, Constant]


def V(name: str) -> Variable:
    """Shorthand variable constructor."""
    return Variable(name)


def C(value: Any) -> Constant:
    """Shorthand constant constructor."""
    return Constant(value)


def term(value: Any) -> Term:
    """Coerce *value* to a term: ``str`` → variable, anything else → constant.

    Already-constructed terms pass through unchanged.  To denote a *string
    constant*, construct it explicitly with :func:`C`.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        return Variable(value)
    return Constant(value)


def terms(values: Iterable[Any]) -> Tuple[Term, ...]:
    """Coerce each element with :func:`term`."""
    return tuple(term(v) for v in values)


def variables_in(items: Iterable[Term]) -> Tuple[Variable, ...]:
    """Distinct variables among *items*, in first-occurrence order."""
    seen: Dict[Variable, None] = {}
    for t in items:
        if isinstance(t, Variable):
            seen.setdefault(t, None)
    return tuple(seen)


def constants_in(items: Iterable[Term]) -> Tuple[Constant, ...]:
    """Distinct constants among *items*, in first-occurrence order."""
    seen: Dict[Constant, None] = {}
    for t in items:
        if isinstance(t, Constant):
            seen.setdefault(t, None)
    return tuple(seen)


def substitute_term(t: Term, mapping: Mapping[Variable, Term]) -> Term:
    """Apply a variable substitution to a single term."""
    if isinstance(t, Variable):
        return mapping.get(t, t)
    return t


def fresh_variable(base: str, taken: Iterable[Variable]) -> Variable:
    """A variable named like *base* that collides with nothing in *taken*."""
    taken_names = {v.name for v in taken}
    if base not in taken_names:
        return Variable(base)
    i = 1
    while f"{base}_{i}" in taken_names:
        i += 1
    return Variable(f"{base}_{i}")
