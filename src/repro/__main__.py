"""``python -m repro`` — a one-screen tour of the library.

Prints the Theorem 1 classification table, runs one reduction from each
row with live verification, and evaluates the paper's flagship ≠-query
with the Theorem 2 engine.
"""

from __future__ import annotations

from .benchlib import print_table
from .circuits import CircuitBuilder, fand, fnot, for_, var
from .evaluation import NaiveEvaluator
from .inequalities import AcyclicInequalityEvaluator
from .parametric import theorem1_table
from .parametric.problems import (
    CliqueInstance,
    WeightedCircuitInstance,
    WeightedFormulaInstance,
)
from .reductions import CIRCUIT_TO_FO_V, CLIQUE_TO_CQ_Q, WSAT_TO_POSITIVE
from .workloads import (
    employees_projects_database,
    employees_projects_query,
    random_graph,
)


def main() -> None:
    print(__doc__)
    print_table(
        ("problem", "parameter", "classification"),
        theorem1_table().rows(),
        title="Theorem 1 (Papadimitriou & Yannakakis 1997/1999):",
    )

    print("\nLive reductions (one per row, verified against ground truth):")
    graph = random_graph(8, 0.55, seed=1)
    record = CLIQUE_TO_CQ_Q.verify([CliqueInstance(graph, 3)])[0]
    print(f"  clique → conjunctive query      : {record.expected} == "
          f"{record.produced}  (q' = {record.parameter_out})")

    formula = for_(fand(var("x1"), var("x2")), fnot(var("x3")))
    record = WSAT_TO_POSITIVE.verify([WeightedFormulaInstance(formula, 2)])[0]
    print(f"  weighted formula SAT → positive : {record.expected} == "
          f"{record.produced}  (v' = {record.parameter_out})")

    builder = CircuitBuilder()
    xs = [builder.input(f"i{j}") for j in range(4)]
    circuit = builder.build(
        builder.or_(builder.and_(xs[0], xs[1]), builder.and_(xs[2], xs[3]))
    )
    record = CIRCUIT_TO_FO_V.verify([WeightedCircuitInstance(circuit, 2)])[0]
    print(f"  weighted circuit SAT → FO query : {record.expected} == "
          f"{record.produced}  (v' = k + 2 = {record.parameter_out})")

    print("\nTheorem 2 (acyclic query with !=), employees on >1 project:")
    query = employees_projects_query()
    db = employees_projects_database(employees=8, projects=4, seed=2)
    answers = AcyclicInequalityEvaluator().evaluate(query, db)
    assert answers == NaiveEvaluator().evaluate(query, db)
    print(f"  {query}")
    print(f"  -> {sorted(answers.rows)} (verified against the naive engine)")
    print("\nSee examples/ for more, and EXPERIMENTS.md for the full results.")


if __name__ == "__main__":
    main()
