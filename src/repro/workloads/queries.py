"""Query generators: paths, stars, cycles, and random acyclic ≠-queries.

The random acyclic generator grows a random join tree first and emits one
atom per tree node, guaranteeing acyclicity by construction; inequalities
are then sprinkled over non-co-occurring variable pairs, so the I1 part of
Theorem 2's partition is exercised.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List

from ..query.atoms import Atom, Inequality
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Variable


def path_query(length: int, relation: str = "E", head_arity: int = 1) -> ConjunctiveQuery:
    """E(x0,x1), E(x1,x2), ..., length atoms; head exports x0 (and x_length)."""
    variables = [Variable(f"x{i}") for i in range(length + 1)]
    atoms = [
        Atom(relation, (variables[i], variables[i + 1])) for i in range(length)
    ]
    head = tuple(variables[:head_arity])
    return ConjunctiveQuery(head, atoms, head_name="PATH")


def star_query(arms: int) -> ConjunctiveQuery:
    """A_1(hub,l1), ..., A_arms(hub,l_arms); head exports the hub."""
    hub = Variable("hub")
    atoms = [
        Atom(f"A{i}", (hub, Variable(f"l{i}"))) for i in range(1, arms + 1)
    ]
    return ConjunctiveQuery((hub,), atoms, head_name="STAR")


def cycle_query(length: int, relation: str = "E") -> ConjunctiveQuery:
    """The cyclic query E(x0,x1),...,E(x_{n-1},x0) — NOT acyclic (for contrast)."""
    variables = [Variable(f"x{i}") for i in range(length)]
    atoms = [
        Atom(relation, (variables[i], variables[(i + 1) % length]))
        for i in range(length)
    ]
    return ConjunctiveQuery((), atoms, head_name="CYC")


def path_neq_query(length: int, neq_pairs: int, seed: int = 0) -> ConjunctiveQuery:
    """A path query plus random ≠ atoms over non-adjacent variable pairs."""
    rng = random.Random(seed)
    base = path_query(length)
    variables = [Variable(f"x{i}") for i in range(length + 1)]
    non_adjacent = [
        (a, b)
        for i, a in enumerate(variables)
        for j, b in enumerate(variables)
        if j > i + 1
    ]
    rng.shuffle(non_adjacent)
    inequalities = [Inequality(a, b) for a, b in non_adjacent[:neq_pairs]]
    return ConjunctiveQuery(
        base.head_terms, base.atoms, inequalities, head_name="PNEQ"
    )


def random_acyclic_query(
    num_atoms: int,
    max_arity: int = 3,
    num_inequalities: int = 0,
    seed: int = 0,
    head_arity: int = 1,
) -> ConjunctiveQuery:
    """A random acyclic query built from a random join tree.

    Atom j > 0 attaches to a random earlier atom and shares a random
    nonempty subset of its variables (the join-tree edge), adding fresh
    variables up to its arity — the resulting hypergraph always has that
    tree as a join tree.  Inequalities are then drawn from variable pairs
    that do not co-occur in any atom (so they land in I1).
    """
    rng = random.Random(seed)
    fresh = [0]

    def new_variable() -> Variable:
        fresh[0] += 1
        return Variable(f"v{fresh[0]}")

    atom_vars: List[List[Variable]] = []
    for j in range(num_atoms):
        arity = rng.randint(1, max_arity)
        if j == 0:
            members = [new_variable() for _ in range(arity)]
        else:
            parent = rng.randrange(j)
            shared_count = rng.randint(1, min(arity, len(atom_vars[parent])))
            shared = rng.sample(atom_vars[parent], shared_count)
            members = list(shared)
            while len(members) < arity:
                members.append(new_variable())
            rng.shuffle(members)
        atom_vars.append(members)

    atoms = [
        Atom(f"R{j}", tuple(members)) for j, members in enumerate(atom_vars)
    ]

    cooccur = set()
    for members in atom_vars:
        for a, b in combinations(set(members), 2):
            cooccur.add(frozenset((a, b)))
    all_vars: List[Variable] = sorted(
        {v for members in atom_vars for v in members}, key=lambda v: v.name
    )
    candidates = [
        (a, b)
        for a, b in combinations(all_vars, 2)
        if frozenset((a, b)) not in cooccur
    ]
    rng.shuffle(candidates)
    inequalities = [
        Inequality(a, b) for a, b in candidates[:num_inequalities]
    ]

    head = tuple(rng.sample(all_vars, min(head_arity, len(all_vars))))
    return ConjunctiveQuery(head, atoms, inequalities, head_name="RND")
