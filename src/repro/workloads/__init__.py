"""Workload generators: graphs, databases, queries, paper examples."""

from .databases import (
    chain_database,
    random_database,
    random_relation,
    star_database,
)
from .graphs import (
    Graph,
    GraphError,
    complete_graph,
    cycle_graph,
    empty_graph,
    graph_suite,
    graph_with_hamiltonian_path,
    grid_graph,
    path_graph,
    planted_clique_graph,
    random_graph,
)
from .paper_examples import (
    all_examples,
    employees_projects_database,
    employees_projects_query,
    salary_database,
    salary_query,
    students_courses_database,
    students_courses_query,
)
from .queries import (
    cycle_query,
    path_neq_query,
    path_query,
    random_acyclic_query,
    star_query,
)

__all__ = [
    "Graph",
    "GraphError",
    "all_examples",
    "chain_database",
    "complete_graph",
    "cycle_graph",
    "cycle_query",
    "empty_graph",
    "employees_projects_database",
    "employees_projects_query",
    "graph_suite",
    "graph_with_hamiltonian_path",
    "grid_graph",
    "path_graph",
    "path_neq_query",
    "path_query",
    "planted_clique_graph",
    "random_acyclic_query",
    "random_database",
    "random_graph",
    "random_relation",
    "salary_database",
    "salary_query",
    "star_database",
    "star_query",
    "students_courses_database",
    "students_courses_query",
]
