"""The paper's §5 running examples, as ready-made (query, database) pairs.

* employees working on more than one project:
      G(e) ← EP(e, p), EP(e, p'), p ≠ p'
* students taking courses outside their department:
      G(s) ← SD(s, d), SC(s, c), CD(c, d'), d ≠ d'
* employees earning more than their manager (comparisons):
      G(e) ← EM(e, m), ES(e, s), ES(m, s'), s' < s
"""

from __future__ import annotations

import random
from typing import Tuple

from ..query.conjunctive import ConjunctiveQuery
from ..query.parser import parse_query
from ..relational.database import Database
from ..relational.relation import Relation


def employees_projects_query() -> ConjunctiveQuery:
    """G(e) ← EP(e, p), EP(e, p'), p ≠ p'."""
    return parse_query("G(e) :- EP(e, p), EP(e, q), p != q.")


def employees_projects_database(
    employees: int = 30, projects: int = 10, assignments: int = 60, seed: int = 0
) -> Database:
    """Random employee–project assignments."""
    rng = random.Random(seed)
    rows = {
        (f"e{rng.randrange(employees)}", f"p{rng.randrange(projects)}")
        for _ in range(assignments)
    }
    return Database({"EP": Relation.from_rows(("EP.0", "EP.1"), rows)})


def students_courses_query() -> ConjunctiveQuery:
    """G(s) ← SD(s, d), SC(s, c), CD(c, d'), d ≠ d'."""
    return parse_query("G(s) :- SD(s, d), SC(s, c), CD(c, e), d != e.")


def students_courses_database(
    students: int = 25, courses: int = 12, departments: int = 4, seed: int = 0
) -> Database:
    """Random student/course/department data."""
    rng = random.Random(seed)
    depts = [f"d{i}" for i in range(departments)]
    sd_rows = {(f"s{i}", rng.choice(depts)) for i in range(students)}
    cd_rows = {(f"c{i}", rng.choice(depts)) for i in range(courses)}
    sc_rows = {
        (f"s{rng.randrange(students)}", f"c{rng.randrange(courses)}")
        for _ in range(students * 3)
    }
    return Database(
        {
            "SD": Relation.from_rows(("SD.0", "SD.1"), sd_rows),
            "SC": Relation.from_rows(("SC.0", "SC.1"), sc_rows),
            "CD": Relation.from_rows(("CD.0", "CD.1"), cd_rows),
        }
    )


def salary_query() -> ConjunctiveQuery:
    """G(e) ← EM(e, m), ES(e, s), ES(m, s'), s' < s."""
    return parse_query("G(e) :- EM(e, m), ES(e, s), ES(m, t), t < s.")


def salary_database(employees: int = 20, seed: int = 0) -> Database:
    """A random management tree with integer salaries."""
    rng = random.Random(seed)
    em_rows = []
    for i in range(1, employees):
        em_rows.append((f"e{i}", f"e{rng.randrange(i)}"))  # manager is earlier
    es_rows = [(f"e{i}", rng.randrange(40_000, 160_000)) for i in range(employees)]
    return Database(
        {
            "EM": Relation.from_rows(("EM.0", "EM.1"), em_rows),
            "ES": Relation.from_rows(("ES.0", "ES.1"), es_rows),
        }
    )


def all_examples() -> Tuple[Tuple[str, ConjunctiveQuery, Database], ...]:
    """(name, query, database) triples for the three §5 examples."""
    return (
        (
            "employees-multi-project",
            employees_projects_query(),
            employees_projects_database(),
        ),
        (
            "students-outside-dept",
            students_courses_query(),
            students_courses_database(),
        ),
        ("salary-above-manager", salary_query(), salary_database()),
    )
