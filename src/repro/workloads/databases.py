"""Random database generators for tests and benchmarks."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import DatabaseSchema, RelationSchema


def random_relation(
    name: str,
    arity: int,
    domain_size: int,
    tuples: int,
    seed: int = 0,
) -> Relation:
    """A random relation over domain {0..domain_size-1} with ≤ *tuples* rows."""
    rng = random.Random(seed)
    schema = RelationSchema(name, arity)
    rows = {
        tuple(rng.randrange(domain_size) for _ in range(arity))
        for _ in range(tuples)
    }
    return Relation.from_rows(schema.default_attributes(), rows)


def random_database(
    schema: DatabaseSchema,
    domain_size: int,
    tuples_per_relation: int,
    seed: int = 0,
) -> Database:
    """A random database instance for *schema*."""
    rng = random.Random(seed)
    relations: Dict[str, Relation] = {}
    for relation_schema in schema:
        relations[relation_schema.name] = random_relation(
            relation_schema.name,
            relation_schema.arity,
            domain_size,
            tuples_per_relation,
            seed=rng.randrange(1 << 30),
        )
    return Database(relations, domain=range(domain_size))


def chain_database(
    layers: int, width: int, p: float, seed: int = 0, relation: str = "E"
) -> Database:
    """A layered digraph as a binary relation — the path-query workload.

    Nodes are (layer, index) encoded as layer·width + index; edges go from
    layer i to layer i+1 with probability p, so path queries of length
    *layers − 1* have plenty of matches without the relation exploding.
    """
    rng = random.Random(seed)
    rows: List[Tuple[int, int]] = []
    for layer in range(layers - 1):
        for a in range(width):
            for b in range(width):
                if rng.random() < p:
                    rows.append((layer * width + a, (layer + 1) * width + b))
    return Database(
        {relation: Relation.from_rows((f"{relation}.0", f"{relation}.1"), rows)},
        domain=range(layers * width),
    )


def star_database(
    arms: int, fanout: int, seed: int = 0
) -> Database:
    """Relations A_1..A_arms sharing a hub column — the star-query workload.

    Each A_i(hub, leaf) relates hub values to arm-specific leaves.
    """
    rng = random.Random(seed)
    relations: Dict[str, Relation] = {}
    hubs = list(range(fanout))
    for arm in range(1, arms + 1):
        rows = []
        for hub in hubs:
            for leaf in rng.sample(range(1000, 1000 + fanout * 4), k=max(1, fanout // 2)):
                rows.append((hub, leaf + arm * 10_000))
        name = f"A{arm}"
        relations[name] = Relation.from_rows((f"{name}.0", f"{name}.1"), rows)
    return Database(relations)
