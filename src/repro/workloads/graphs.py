"""Undirected graphs and graph workload generators.

:class:`Graph` is the instance type of the clique / independent-set /
dominating-set problems and the raw material of the paper's reductions
(clique → conjunctive query, Theorem 3's numeric encoding, Hamiltonian
path).  Generators cover the benchmark workloads: Erdős–Rényi G(n, p),
planted cliques, paths, cycles, grids and complete graphs.  All generators
take an explicit :class:`random.Random` seed for reproducibility.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from ..errors import ReproError


class GraphError(ReproError):
    """Structural problem in a graph definition."""


Edge = Tuple[int, int]


class Graph:
    """An immutable simple undirected graph on integer nodes."""

    __slots__ = ("_nodes", "_adjacency")

    def __init__(self, nodes: Iterable[int], edges: Iterable[Edge] = ()) -> None:
        self._nodes: Tuple[int, ...] = tuple(sorted(set(nodes)))
        node_set = set(self._nodes)
        adjacency: Dict[int, Set[int]] = {node: set() for node in self._nodes}
        for a, b in edges:
            if a == b:
                raise GraphError(f"self-loop on node {a}")
            if a not in node_set or b not in node_set:
                raise GraphError(f"edge ({a}, {b}) leaves the node set")
            adjacency[a].add(b)
            adjacency[b].add(a)
        self._adjacency = {n: frozenset(s) for n, s in adjacency.items()}

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._adjacency.values()) // 2

    def neighbours(self, node: int) -> FrozenSet[int]:
        try:
            return self._adjacency[node]
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def degree(self, node: int) -> int:
        return len(self.neighbours(node))

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, frozenset())

    def edges(self) -> Iterator[Edge]:
        """Each edge once, as (min, max)."""
        for node in self._nodes:
            for other in self._adjacency[node]:
                if node < other:
                    yield (node, other)

    def directed_edges(self) -> Iterator[Edge]:
        """Each edge twice, once per direction — the symmetric E relation."""
        for node in self._nodes:
            for other in self._adjacency[node]:
                yield (node, other)

    def size(self) -> int:
        """Encoding-size measure: nodes + edges."""
        return self.num_nodes + self.num_edges

    # ------------------------------------------------------------------

    def is_clique(self, nodes: Sequence[int]) -> bool:
        """Are the (distinct) nodes pairwise adjacent?"""
        distinct = set(nodes)
        if len(distinct) != len(tuple(nodes)):
            return False
        return all(
            self.has_edge(a, b) for a, b in combinations(sorted(distinct), 2)
        )

    def complement(self) -> "Graph":
        """The complement graph on the same nodes."""
        missing = [
            (a, b)
            for a, b in combinations(self._nodes, 2)
            if not self.has_edge(a, b)
        ]
        return Graph(self._nodes, missing)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._nodes == other._nodes and self._adjacency == other._adjacency

    def __hash__(self) -> int:
        return hash((self._nodes, tuple(sorted(self.edges()))))

    def __repr__(self) -> str:
        return f"Graph({self.num_nodes} nodes, {self.num_edges} edges)"


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def random_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Erdős–Rényi G(n, p) on nodes 0..n-1."""
    rng = random.Random(seed)
    edges = [
        (a, b) for a, b in combinations(range(n), 2) if rng.random() < p
    ]
    return Graph(range(n), edges)


def planted_clique_graph(n: int, k: int, p: float, seed: int = 0) -> Tuple[Graph, Tuple[int, ...]]:
    """G(n, p) with a planted k-clique; returns (graph, clique nodes)."""
    rng = random.Random(seed)
    base = random_graph(n, p, seed=rng.randrange(1 << 30))
    clique_nodes = tuple(sorted(rng.sample(range(n), k)))
    edges = set(base.edges())
    for a, b in combinations(clique_nodes, 2):
        edges.add((min(a, b), max(a, b)))
    return Graph(range(n), edges), clique_nodes


def path_graph(n: int) -> Graph:
    """The path 0 — 1 — ... — n-1."""
    return Graph(range(n), [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle on n ≥ 3 nodes."""
    if n < 3:
        raise GraphError("cycles need at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(range(n), [(min(a, b), max(a, b)) for a, b in edges])


def complete_graph(n: int) -> Graph:
    """K_n."""
    return Graph(range(n), combinations(range(n), 2))


def empty_graph(n: int) -> Graph:
    """n isolated nodes."""
    return Graph(range(n))


def grid_graph(rows: int, cols: int) -> Graph:
    """The rows × cols grid (treewidth min(rows, cols))."""
    def node(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
    return Graph(range(rows * cols), edges)


def graph_with_hamiltonian_path(n: int, extra_p: float, seed: int = 0) -> Graph:
    """A random graph guaranteed to contain a Hamiltonian path.

    Starts from a random permutation path and sprinkles extra edges with
    probability *extra_p* — the positive workload of the Hamiltonian-path
    benchmark.
    """
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    edges = {(min(a, b), max(a, b)) for a, b in zip(order, order[1:])}
    for a, b in combinations(range(n), 2):
        if rng.random() < extra_p:
            edges.add((a, b))
    return Graph(range(n), edges)


def graph_suite(max_n: int = 6, seed: int = 0) -> List[Graph]:
    """A diverse small-graph suite for exhaustive reduction verification."""
    rng = random.Random(seed)
    suite: List[Graph] = [
        empty_graph(1),
        empty_graph(3),
        path_graph(4),
        cycle_graph(4),
        cycle_graph(5),
        complete_graph(3),
        complete_graph(4),
        grid_graph(2, 3),
    ]
    for n in range(3, max_n + 1):
        for p in (0.2, 0.5, 0.8):
            suite.append(random_graph(n, p, seed=rng.randrange(1 << 30)))
    return suite
