"""Hash-partitioned relations: the :class:`ShardedRelation` value type.

A sharded relation is a :class:`~repro.relational.relation.Relation` split
into ``shard_count`` immutable shard relations by the pool code of its values on
chosen *key* attributes (the intended join keys).  Shards come out of the
kernel's lazy partition cache (``Relation._partition``), so they are built
once per (key, count) for a relation's lifetime, each shard carries its key
index preseeded, and re-sharding a relation you already sharded is a cache
lookup.

Co-partitioning contract
------------------------

Two sharded relations are **co-partitioned** when they have equal
``shard_count`` and equal key attribute *names*.  Rows that can join on the
key then meet in the shard of the same index (both sides route by
``key_code % shard_count``, where the code is the process-global dictionary
code of the key values — see ``relational.columns``), so a semijoin or
natural join between
them decomposes into ``shard_count`` independent shard-pair tasks with no
cross-shard traffic — and a shard pair with an empty partner is dropped
without scanning anything.  Against a non-co-partitioned operand, every
shard works against the full operand relation: still correct (a partition
of the left side induces a partition of the result), just without the
pairwise pruning.

Key preservation: operations whose result still contains every key
attribute (semijoin, natural join, key-preserving projections, union)
return a :class:`ShardedRelation` over the same key; a projection that
drops part of the key returns a plain merged :class:`Relation`, since rows
from different shards could collapse and the partition would no longer be
a function of the remaining columns.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from ..relational.attributes import positions_of
from ..relational.relation import Relation
from .ops import DEFAULT_SHARD_COUNT, bucket_semijoin, shared_attributes
from .pool import WorkerPool

Operand = Union["ShardedRelation", Relation]


class ShardedRelation:
    """An immutable hash-partitioned view of a relation.

    Parameters
    ----------
    relation:
        The source relation to shard.
    key:
        Nonempty subsequence of the relation's attributes to partition by
        (the intended join key).
    shard_count:
        Number of hash shards (≥ 1).
    """

    __slots__ = ("_attributes", "_key", "_key_positions", "_shards")

    def __init__(
        self,
        relation: Relation,
        key: Sequence[str],
        shard_count: int = DEFAULT_SHARD_COUNT,
    ) -> None:
        key_names = tuple(key)
        if not key_names:
            raise SchemaError("sharding key must name at least one attribute")
        positions = positions_of(relation.attributes, key_names)
        self._attributes = relation.attributes
        self._key = key_names
        self._key_positions = positions
        self._shards = relation._partition(positions, max(1, shard_count))

    @classmethod
    def _from_shards(
        cls,
        attributes: Tuple[str, ...],
        key: Tuple[str, ...],
        shards: Tuple[Relation, ...],
    ) -> "ShardedRelation":
        self = object.__new__(cls)
        self._attributes = attributes
        self._key = key
        self._key_positions = positions_of(attributes, key)
        self._shards = shards
        return self

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._attributes

    @property
    def key(self) -> Tuple[str, ...]:
        """The partitioning attributes, in relation column order."""
        return self._key

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> Tuple[Relation, ...]:
        return self._shards

    @property
    def cardinality(self) -> int:
        return sum(shard.cardinality for shard in self._shards)

    def is_empty(self) -> bool:
        return all(shard.is_empty() for shard in self._shards)

    def to_relation(self) -> Relation:
        """Merge the shards back into one relation (C-level union)."""
        return Relation._from_frozen(
            self._attributes,
            frozenset().union(*(shard.rows for shard in self._shards)),
        )

    def co_partitioned_with(self, other: "ShardedRelation") -> bool:
        """Same shard count and same key names — shard-pair tasks align."""
        return self.shard_count == other.shard_count and self._key == other._key

    def __repr__(self) -> str:
        sizes = tuple(shard.cardinality for shard in self._shards)
        return (
            f"ShardedRelation({self._attributes!r}, key={self._key!r}, "
            f"shards={sizes})"
        )

    # ------------------------------------------------------------------
    # Sharded algebra
    # ------------------------------------------------------------------

    def _partner_shards(self, other: Operand) -> Tuple[Relation, ...]:
        """Per-shard right operands: the aligned shards when co-partitioned
        (enabling empty-pair pruning), the full relation everywhere else."""
        if isinstance(other, ShardedRelation):
            if self.co_partitioned_with(other):
                return other._shards
            other = other.to_relation()
        return tuple(other for _ in self._shards)

    def semijoin(
        self, other: Operand, pool: Optional[WorkerPool] = None
    ) -> "ShardedRelation":
        """``self ⋉ other``, shard by shard; result keeps this sharding."""
        shared = shared_attributes(self._attributes, other.attributes)
        if not shared:
            if not other.is_empty():
                return self
            empty = tuple(
                Relation._from_frozen(self._attributes, frozenset())
                for _ in self._shards
            )
            return ShardedRelation._from_shards(self._attributes, self._key, empty)
        partners = self._partner_shards(other)
        left_positions = positions_of(self._attributes, shared)
        right_positions = positions_of(partners[0].attributes, shared)
        tasks = list(zip(self._shards, partners))

        def run(task: Tuple[Relation, Relation]) -> Relation:
            return bucket_semijoin(task[0], task[1], left_positions, right_positions)

        results = tuple(_pool_map(pool, run, tasks))
        if all(result is shard for result, shard in zip(results, self._shards)):
            return self
        return ShardedRelation._from_shards(self._attributes, self._key, results)

    def natural_join(
        self, other: Operand, pool: Optional[WorkerPool] = None
    ) -> Operand:
        """Natural join, shard by shard.

        The left shard determines the output shard (left columns survive
        the join), so the result is sharded on this relation's key — except
        for the degenerate no-shared-attribute cartesian case, which merges
        and delegates to the kernel.
        """
        if not shared_attributes(self._attributes, other.attributes):
            if isinstance(other, ShardedRelation):
                other = other.to_relation()
            return self.to_relation().natural_join(other)
        partners = self._partner_shards(other)

        def run(task: Tuple[Relation, Relation]) -> Relation:
            left_shard, right_shard = task
            return left_shard.natural_join(right_shard)

        tasks = list(zip(self._shards, partners))
        results = tuple(_pool_map(pool, run, tasks))
        attributes = results[0].attributes
        return ShardedRelation._from_shards(attributes, self._key, results)

    def select_eq(self, conditions: Mapping[str, Any]) -> "ShardedRelation":
        """Per-shard constant selection; the sharding key is preserved."""
        results = tuple(shard.select_eq(conditions) for shard in self._shards)
        return ShardedRelation._from_shards(self._attributes, self._key, results)

    def project(self, attributes: Sequence[str]) -> Operand:
        """Projection.  Key-preserving projections stay sharded; dropping
        any key attribute merges first (cross-shard duplicates collapse)."""
        names = tuple(attributes)
        if set(self._key) <= set(names):
            results = tuple(shard.project(names) for shard in self._shards)
            return ShardedRelation._from_shards(names, self._key, results)
        return self.to_relation().project(names)

    def union(self, other: Operand) -> Operand:
        """Set union; co-partitioned operands combine shard by shard."""
        if isinstance(other, ShardedRelation) and self.co_partitioned_with(other):
            results = tuple(
                left.union(right) for left, right in zip(self._shards, other._shards)
            )
            return ShardedRelation._from_shards(self._attributes, self._key, results)
        merged = other.to_relation() if isinstance(other, ShardedRelation) else other
        return self.to_relation().union(merged)


def _pool_map(pool: Optional[WorkerPool], fn, tasks):
    # Method-level tasks are closures; only closure-capable pools
    # (serial/threads) can fan them out — process pools run them inline.
    if pool is not None and pool.supports_closures:
        return pool.map(fn, tasks)
    return [fn(task) for task in tasks]


def shard_relation(
    relation: Relation,
    key: Sequence[str],
    shard_count: int = DEFAULT_SHARD_COUNT,
) -> ShardedRelation:
    """Convenience constructor mirroring the kernel's naming."""
    return ShardedRelation(relation, key, shard_count)
