"""Shard-parallel Yannakakis evaluation for acyclic queries.

Durand–Grandjean show acyclic conjunctive queries are evaluable in
essentially linear time; operationally that means the Yannakakis passes are
*data-parallel* — every per-edge semijoin of one join-tree level touches a
disjoint (parent, child) pair, and within one edge the co-partitioned
shards are independent.  :class:`ParallelYannakakisEvaluator` exploits both
axes:

* **level scheduling** — tree edges are grouped by child depth; within a
  level, edges are grouped by parent (a parent absorbs its children
  sequentially, which is the semijoin chain) and the per-parent groups fan
  out across the worker pool;
* **sharded semijoins** — each sufficiently large semijoin runs through
  :func:`repro.parallel.ops.parallel_semijoin`: co-partitioned hash shards,
  bucket-centric per-shard kernels, empty-partner pruning;
* **semijoin-shaped upward joins** — an upward join-project edge whose kept
  columns all exist in the parent (``keep ⊆ parent attributes``, the common
  case for small heads) *is* a semijoin, and runs sharded instead of
  through the row-materializing fused join;
* **head-aware rooting** — before the passes, the join tree is re-rooted at
  the node covering the most head variables (sound for any root: the join
  tree property is a property of the undirected tree).  With the head
  concentrated at the root, upward edges stop dragging head columns
  through every intermediate — they become semijoin-shaped, i.e. exactly
  the shard-parallel operations — instead of materializing
  cross-product-sized carriers.

Results are identical to :class:`~repro.evaluation.yannakakis.YannakakisEvaluator`
— the engine's property tests pin this — and the evaluator degrades to the
sequential kernels on small inputs (``min_shard_rows``) and on one-worker
pools, so there is no sharding tax on small queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..evaluation.instantiation import answers_relation
from ..evaluation.yannakakis import YannakakisEvaluator
from ..hypergraph.join_tree import JoinTree
from ..query.conjunctive import ConjunctiveQuery
from ..relational.database import Database
from ..relational.relation import Relation
from ..resilience.token import check_cancelled
from .ops import DEFAULT_SHARD_COUNT, parallel_semijoin
from .pool import WorkerPool

#: Below this cardinality the sequential kernel semijoin is used as-is —
#: sharding overhead would exceed the bucket-level savings.
DEFAULT_MIN_SHARD_ROWS = 512


class ParallelYannakakisEvaluator(YannakakisEvaluator):
    """Yannakakis with sharded semijoin passes and level-parallel fan-out.

    Parameters
    ----------
    pool:
        Worker pool for level fan-out (defaults to a serial pool; the
        sharded kernels carry the single-core win on their own).
    shard_count:
        Default hash-shard fan-in per semijoin; ``execute``-time callers
        (the engine) override it per plan.
    min_shard_rows:
        Probe-side cardinality under which semijoins stay sequential.
    """

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        shard_count: int = DEFAULT_SHARD_COUNT,
        min_shard_rows: int = DEFAULT_MIN_SHARD_ROWS,
    ) -> None:
        super().__init__()
        self._pool = pool or WorkerPool(max_workers=1)
        self._default_shard_count = shard_count
        self._min_shard_rows = min_shard_rows

    # ------------------------------------------------------------------
    # Public API (signature-compatible with the sequential evaluator)
    # ------------------------------------------------------------------

    def decide(
        self,
        query: ConjunctiveQuery,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        shard_count: Optional[int] = None,
    ) -> bool:
        """Is Q(d) nonempty?  One level-parallel bottom-up pass."""
        return (
            self.reduce_bottom_up(
                query, database, join_tree, shard_count=shard_count
            )
            is not None
        )

    def reduce_bottom_up(
        self,
        query: ConjunctiveQuery,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        root: Optional[int] = None,
        shard_count: Optional[int] = None,
    ) -> Optional[Relation]:
        """Reduced root relation after a level-parallel bottom-up pass.

        The sharded counterpart of
        :meth:`~repro.evaluation.yannakakis.YannakakisEvaluator.reduce_bottom_up`:
        same contract (re-root, one upward pass, survivors participate in a
        global match), with per-parent semijoin chains fanned across the
        pool and large semijoins sharded.
        """
        prepared = self._prepare(query, database, join_tree)
        if prepared is None:
            return None
        relations, tree = prepared
        if root is not None and root != tree.root:
            tree = tree.rooted_at(root)
        shards = shard_count or self._default_shard_count
        for level in _levels(tree):
            # Level boundaries are the natural cancellation check-points:
            # all of a level's tasks have been committed, none of the
            # next level's have started.
            check_cancelled()
            groups = _by_parent(tree, level)
            for (parent, _), result in zip(
                groups, self._reduce_level(relations, groups, shards)
            ):
                if result.is_empty():
                    return None
                relations[parent] = result
        reduced = relations[tree.root]
        return None if reduced.is_empty() else reduced

    def evaluate(
        self,
        query: ConjunctiveQuery,
        database: Database,
        join_tree: Optional[JoinTree] = None,
        shard_count: Optional[int] = None,
    ) -> Relation:
        """Q(d) — full reduction, then the upward join-project pass."""
        prepared = self._prepare(query, database, join_tree)
        head_names = tuple(v.name for v in query.head_variables())
        if prepared is None:
            return answers_relation(query.head_terms, Relation.from_rows(head_names))
        relations, tree = prepared
        tree = _reroot_for_head(tree, set(head_names))
        shards = shard_count or self._default_shard_count

        relations = self.full_reduction(relations, tree, shard_count=shards)
        if relations[tree.root].is_empty():
            return answers_relation(query.head_terms, Relation.from_rows(head_names))

        head_set = set(head_names)
        for level in _levels(tree):
            check_cancelled()
            for parent, children in _by_parent(tree, level):
                for node in children:
                    parent_rel = relations[parent]
                    child_rel = relations[node]
                    parent_vars = set(parent_rel.attributes)
                    keep = tuple(
                        a
                        for a in child_rel.attributes
                        if a in parent_vars or a in head_set
                    )
                    if all(a in parent_vars for a in keep):
                        # keep ⊆ parent: the join adds no columns — it *is*
                        # a semijoin, so the sharded kernel applies.
                        relations[parent] = self._semijoin(
                            parent_rel, child_rel, shards
                        )
                    else:
                        relations[parent] = parent_rel._join_keep(child_rel, keep)

        root = relations[tree.root]
        answer_vars = root.project(
            tuple(a for a in root.attributes if a in head_set)
        ).project(head_names)
        return answers_relation(query.head_terms, answer_vars)

    # ------------------------------------------------------------------

    def bottom_up_reduction(
        self,
        relations: Dict[int, Relation],
        tree: JoinTree,
        shard_count: Optional[int] = None,
    ) -> Dict[int, Relation]:
        """The upward half of the reducer, one level-parallel pass.

        Same contract as the sequential
        :meth:`~repro.evaluation.yannakakis.YannakakisEvaluator.bottom_up_reduction`
        (root globally consistent, subtrees reduced), with per-parent
        semijoin chains fanned across the pool.
        """
        shards = shard_count or self._default_shard_count
        reduced = dict(relations)
        for level in _levels(tree):
            check_cancelled()
            groups = _by_parent(tree, level)
            for (parent, _), result in zip(
                groups, self._reduce_level(reduced, groups, shards)
            ):
                reduced[parent] = result
        return reduced

    def full_reduction(
        self,
        relations: Dict[int, Relation],
        tree: JoinTree,
        shard_count: Optional[int] = None,
    ) -> Dict[int, Relation]:
        """Semijoin full reducer, one join-tree level at a time.

        Bottom-up, per-parent semijoin chains within a level run as
        independent pool tasks; the top-down pass fans per-edge tasks out
        the same way (every child is written exactly once).
        """
        shards = shard_count or self._default_shard_count
        reduced = self.bottom_up_reduction(relations, tree, shard_count=shards)

        for level in reversed(_levels(tree)):
            check_cancelled()
            edges = [(node, tree.parent(node)) for node in level]

            def reduce_child(edge: Tuple[int, int]) -> Relation:
                node, parent = edge
                return self._semijoin(reduced[node], reduced[parent], shards)

            for (node, _), result in zip(edges, self._fan_out(reduce_child, edges)):
                reduced[node] = result
        return reduced

    # ------------------------------------------------------------------

    def _reduce_level(
        self,
        relations: Dict[int, Relation],
        groups: List[Tuple[int, Tuple[int, ...]]],
        shards: int,
    ) -> List[Relation]:
        """One bottom-up level: each parent's semijoin chain over its
        children, the per-parent chains fanned across the pool.  Tasks only
        read *relations*; the caller commits the returned results."""

        def reduce_parent(group: Tuple[int, Tuple[int, ...]]) -> Relation:
            parent, children = group
            current = relations[parent]
            for node in children:
                current = self._semijoin(current, relations[node], shards)
            return current

        return self._fan_out(reduce_parent, groups)

    def _semijoin(self, left: Relation, right: Relation, shards: int) -> Relation:
        # Shard-map step check-point: per-edge granularity inside a
        # level's per-parent chain (tokens ride into thread workers).
        check_cancelled()
        if left.cardinality < self._min_shard_rows:
            return left.semijoin(right)
        return parallel_semijoin(left, right, shard_count=shards, pool=self._pool)

    def _fan_out(self, fn, tasks):
        if len(tasks) > 1 and self._pool.supports_closures:
            return self._pool.map(fn, tasks)
        return [fn(task) for task in tasks]


# ----------------------------------------------------------------------
# Head-aware rooting
# ----------------------------------------------------------------------


def _reroot_for_head(tree: JoinTree, head_names: set) -> JoinTree:
    """The same undirected join tree, rooted where the head lives.

    Picks the node whose variable set covers the most head variables
    (lowest index on ties) and re-roots there
    (:meth:`~repro.hypergraph.join_tree.JoinTree.rooted_at`).  This
    rooting makes the upward join-project pass reach the head with the
    fewest column-carrying (non-semijoin) edges.

    Deliberately recomputed per evaluation: the walk is O(query), noise
    next to the data passes, and caching it would need an identity-safe
    key on the (plan-owned) input tree.
    """
    if not head_names:
        return tree
    best = max(
        tree.nodes(),
        key=lambda i: (
            len(head_names & {v.name for v in tree.node_vars[i]}),
            -i,
        ),
    )
    return tree.rooted_at(best)


# ----------------------------------------------------------------------
# Tree level scheduling
# ----------------------------------------------------------------------


def _levels(tree: JoinTree) -> List[List[int]]:
    """Non-root nodes grouped by depth, deepest group first.

    Processing level ``d`` after level ``d+1`` preserves the bottom-up
    invariant: every node has already absorbed its own children when its
    edge to its parent runs.
    """
    depth: Dict[int, int] = {tree.root: 0}
    for node in tree.top_down_order():
        parent = tree.parent(node)
        if parent is not None:
            depth[node] = depth[parent] + 1
    if len(depth) <= 1:
        return []
    deepest = max(depth.values())
    levels: List[List[int]] = [[] for _ in range(deepest)]
    for node, d in depth.items():
        if d > 0:
            levels[deepest - d].append(node)
    return [sorted(level) for level in levels]


def _by_parent(tree: JoinTree, level: List[int]) -> List[Tuple[int, Tuple[int, ...]]]:
    """The level's edges grouped as (parent, its children in this level)."""
    grouped: Dict[int, List[int]] = {}
    for node in level:
        parent = tree.parent(node)
        assert parent is not None
        grouped.setdefault(parent, []).append(node)
    return [(parent, tuple(children)) for parent, children in sorted(grouped.items())]
