"""Worker pools for the sharded execution layer.

One small abstraction covers the three execution modes the parallel
operators need:

``serial``
    Run tasks inline in the calling thread.  This is what a 1-worker pool
    degrades to, and what single-core containers get by default — the
    sharded kernels still win there through bucket-level work and shard
    pruning, without paying any pool dispatch overhead.
``threads``
    A lazily created :class:`~concurrent.futures.ThreadPoolExecutor`.  The
    default.  Plans, shards, and the kernel's per-relation index caches are
    immutable once built, so shard tasks share them safely; CPython's
    per-opcode atomicity makes the lazy index/partition cache fills benign
    (worst case a bucket map is built twice, both results identical).
``processes``
    A :class:`~concurrent.futures.ProcessPoolExecutor` for opt-in
    multi-process execution.  Tasks submitted through :meth:`WorkerPool.map`
    must then be module-level functions with picklable arguments — every
    driver in :mod:`repro.parallel.ops` and the executor's pass tasks
    satisfy this.

The pool never spawns workers until a call actually fans out: tiny task
lists run inline regardless of mode, so sharded operators on small inputs
cost what their sequential counterparts do.

Two resilience duties live here as well:

* **Worker-crash recovery** — a process-pool worker that dies (OOM kill,
  segfault, injected ``pool.worker_crash`` fault) breaks the whole
  executor: every in-flight future raises
  :class:`~concurrent.futures.process.BrokenProcessPool`.  The pool
  catches :class:`~concurrent.futures.BrokenExecutor`, discards the
  poisoned executor (a fresh one respawns lazily on the next fan-out),
  and transparently retries the affected tasks **serially, once** — a
  crashed worker degrades throughput instead of failing requests.
  ``recoveries`` counts these events for stats.
* **Cancel-token propagation** — thread-mode tasks run under the
  submitting thread's active :class:`~repro.resilience.CancelToken`, so
  evaluator check-points fire inside pool workers too.  Process workers
  cannot share a token; the coordinating thread re-checks between
  shard-map steps instead.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..resilience.faults import FaultPlan
from ..resilience.token import current_token, swap_token

SERIAL = "serial"
THREADS = "threads"
PROCESSES = "processes"

POOL_MODES = (SERIAL, THREADS, PROCESSES)


def default_worker_count() -> int:
    """Workers matched to the hardware: ``os.cpu_count()`` (at least 1)."""
    return os.cpu_count() or 1


def _die() -> None:
    # Fault-injection payload: kill this process-pool worker the way a
    # segfault or the OOM killer would — no exception, no cleanup — so
    # recovery is exercised against a genuine BrokenProcessPool.
    os._exit(1)


def _completed_future(fn: Callable[..., Any], args: Tuple[Any, ...]) -> "Future[Any]":
    future: "Future[Any]" = Future()
    try:
        future.set_result(fn(*args))
    except BaseException as exc:  # noqa: BLE001 — future carries it
        future.set_exception(exc)
    return future


class WorkerPool:
    """A lazily started task pool with an inline fast path.

    Parameters
    ----------
    max_workers:
        Worker budget.  Defaults to :func:`default_worker_count`; a budget
        of 1 collapses the pool to ``serial`` mode.
    mode:
        One of :data:`POOL_MODES`.  ``threads`` by default.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` consulted at the
        ``pool.worker_crash`` site before each fan-out.  Defaults to the
        plan in ``$REPRO_FAULTS`` so subprocess servers crash on cue; an
        empty plan is stored as ``None`` and costs nothing.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mode: str = THREADS,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if mode not in POOL_MODES:
            raise ValueError(f"unknown pool mode {mode!r}; expected {POOL_MODES}")
        self._max_workers = max_workers if max_workers else default_worker_count()
        self._mode = SERIAL if self._max_workers <= 1 else mode
        self._executor: Optional[Executor] = None
        self._executor_lock = threading.Lock()
        self._local = threading.local()
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self._fault_plan = None if fault_plan.empty else fault_plan
        self._recoveries = 0

    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def recoveries(self) -> int:
        """How many broken executors this pool has recovered from."""
        return self._recoveries

    @property
    def supports_closures(self) -> bool:
        """True when tasks need not be picklable (serial and thread modes)."""
        return self._mode != PROCESSES

    # ------------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """``[fn(t) for t in tasks]``, fanned out when it can help.

        Order is preserved.  Task lists of length ≤ 1 — and everything in
        serial mode — run inline without touching an executor.

        The pool is **re-entrancy safe**: a ``map`` issued from inside one
        of its own tasks runs inline on the calling worker thread.  Nested
        fan-out on one bounded executor would otherwise deadlock — every
        worker blocking on inner tasks no free worker can ever pick up
        (e.g. the level scheduler's per-parent tasks each issuing sharded
        semijoins).
        """
        items = list(tasks)
        if (
            self._mode == SERIAL
            or len(items) <= 1
            or getattr(self._local, "in_task", False)
        ):
            return [fn(item) for item in items]
        try:
            self._inject_crash()
            return self._fan_out(fn, items)
        except BrokenExecutor:
            # A worker died and poisoned the executor.  Discard it (a
            # fresh pool respawns lazily on the next fan-out) and retry
            # this call's tasks serially, once: degraded throughput, not
            # a failed request.
            self._recover()
            return [fn(item) for item in items]

    def _fan_out(self, fn: Callable[[Any], Any], items: List[Any]) -> List[Any]:
        if self._mode == PROCESSES:
            # Process tasks are module-level, data-only functions (no
            # nested pool use), and the marker wrapper would not pickle.
            return list(self._ensure_executor().map(fn, items))

        token = current_token()

        def run(item: Any) -> Any:
            self._local.in_task = True
            previous = swap_token(token)
            try:
                return fn(item)
            finally:
                swap_token(previous)
                self._local.in_task = False

        return list(self._ensure_executor().map(run, items))

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Schedule one task, returning its :class:`concurrent.futures.Future`.

        The single-task counterpart of :meth:`map` — this is what the
        async service front-end (:mod:`repro.service`) feeds its request
        queue into.  Serial mode (and a submit issued from inside one of
        the pool's own tasks — the same re-entrancy hazard ``map`` guards
        against) runs the task inline and returns an already-completed
        future, so callers can treat every mode uniformly.
        """
        if self._mode == SERIAL or getattr(self._local, "in_task", False):
            return _completed_future(fn, args)
        try:
            self._inject_crash()
            inner = self._submit_to_executor(fn, args)
        except BrokenExecutor:
            self._recover()
            return _completed_future(fn, args)
        if self._mode != PROCESSES:
            # Thread futures fail synchronously above or carry the task's
            # own exception; no deferred executor breakage to intercept.
            return inner
        return self._recovering_future(inner, fn, args)

    def _submit_to_executor(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> "Future[Any]":
        if self._mode == PROCESSES:
            return self._ensure_executor().submit(fn, *args)

        token = current_token()

        def run() -> Any:
            self._local.in_task = True
            previous = swap_token(token)
            try:
                return fn(*args)
            finally:
                swap_token(previous)
                self._local.in_task = False

        return self._ensure_executor().submit(run)

    def _recovering_future(
        self, inner: "Future[Any]", fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> "Future[Any]":
        # A process worker can die *after* submit succeeded, surfacing
        # BrokenProcessPool on the future instead of at the call site.
        # Mirror map()'s recovery there: respawn lazily, retry inline
        # once (on the executor's callback thread — only ever taken on
        # the post-crash path).
        outer: "Future[Any]" = Future()

        def _settle(done: "Future[Any]") -> None:
            exc = done.exception()
            if isinstance(exc, BrokenExecutor):
                self._recover()
                try:
                    outer.set_result(fn(*args))
                except BaseException as retry_exc:  # noqa: BLE001
                    outer.set_exception(retry_exc)
            elif exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(done.result())

        inner.add_done_callback(_settle)
        return outer

    # ------------------------------------------------------------------

    def _inject_crash(self) -> None:
        """Honour a pending ``pool.worker_crash`` fault, if any."""
        if self._fault_plan is None:
            return
        fault = self._fault_plan.fire("pool.worker_crash")
        if fault is None:
            return
        if self._mode == PROCESSES:
            # Kill a real worker; the executor breaks and this call's
            # futures raise BrokenProcessPool once the death is noticed.
            self._ensure_executor().submit(_die)
        else:
            # Thread pools cannot lose a worker to a hard crash without
            # taking the whole process; simulate the executor-level
            # symptom the recovery path keys on.
            raise BrokenExecutor("injected worker crash (pool.worker_crash)")

    def _recover(self) -> None:
        with self._executor_lock:
            executor = self._executor
            self._executor = None
            self._recoveries += 1
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def _ensure_executor(self) -> Executor:
        # Double-checked under a lock: one pool is shared by every thread
        # of the service's shared engine, and an unsynchronized
        # check-then-create would let two cold callers build two
        # executors, leaking the loser's worker threads for the process
        # lifetime.
        executor = self._executor
        if executor is None:
            with self._executor_lock:
                executor = self._executor
                if executor is None:
                    workers = self._max_workers
                    if self._mode == PROCESSES:
                        executor = ProcessPoolExecutor(max_workers=workers)
                    else:
                        executor = ThreadPoolExecutor(
                            max_workers=workers, thread_name_prefix="repro-shard"
                        )
                    self._executor = executor
        return executor

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        with self._executor_lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        started = "started" if self._executor is not None else "idle"
        return (
            f"WorkerPool(mode={self._mode!r}, "
            f"max_workers={self._max_workers}, {started})"
        )
