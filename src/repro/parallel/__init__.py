"""Sharded, parallel execution layer for the relational engines.

The tractable classes the paper maps out (acyclic, bounded treewidth,
bounded variables) are exactly the queries whose evaluation cost is
dominated by data access rather than combinatorics — which makes them
partitionable.  This package provides:

* :class:`ShardedRelation` — hash-partitioned relations with a
  co-partitioning contract for traffic-free shard-by-shard joins;
* shard-parallel operator drivers (:func:`parallel_semijoin`,
  :func:`parallel_hash_join`, :func:`parallel_select_eq`) built on
  bucket-centric per-shard kernels;
* :class:`ParallelYannakakisEvaluator` — level-parallel, sharded
  Yannakakis passes for acyclic queries;
* batch lifting (:func:`lift_batch_group`) — N-wide execution of
  same-shape query batches through a parameter relation;
* :class:`WorkerPool` — serial / thread / process fan-out.

See ``docs/parallel.md`` for the sharding scheme, the co-partitioning
contract, and how the planner decides shard counts.
"""

from .batch import LiftedBatch, lift_batch_group
from .executor import ParallelYannakakisEvaluator
from .ops import (
    DEFAULT_SHARD_COUNT,
    bucket_semijoin,
    parallel_hash_join,
    parallel_select_eq,
    parallel_semijoin,
)
from .pool import POOL_MODES, WorkerPool, default_worker_count
from .sharding import ShardedRelation, shard_relation

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "LiftedBatch",
    "POOL_MODES",
    "ParallelYannakakisEvaluator",
    "ShardedRelation",
    "WorkerPool",
    "bucket_semijoin",
    "default_worker_count",
    "lift_batch_group",
    "parallel_hash_join",
    "parallel_select_eq",
    "parallel_semijoin",
    "shard_relation",
]
