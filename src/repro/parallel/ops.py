"""Shard-parallel relational operators: semijoin, hash join, point lookup.

These drivers are the data-parallel counterparts of the kernel operations
the evaluators lean on.  They share one structure:

1. partition both operands by the pool code of their shared join-key
   values (``Relation._partition`` — lazy, cached, shards born with the
   key index preseeded; codes are process-global, see
   ``relational.columns``), which *co-partitions* them: rows that can
   match meet in the shard of the same index, so every shard pair is an
   independent task with no cross-shard traffic;
2. run the per-shard kernel across a :class:`~repro.parallel.pool.WorkerPool`
   (inline on one core, threads/processes otherwise);
3. recombine — a C-level ``frozenset().union`` of shard row sets, or the
   operand itself when no shard changed (preserving its warm caches).

The per-shard semijoin kernel is *bucket-centric*: it walks the shard's
cached index buckets (one step per distinct key) instead of its rows (one
step per tuple) and keeps or drops whole buckets.  On single-core
containers this — plus dropping shard pairs whose partner is empty — is
where the measured speedup of the sharded layer comes from; worker fan-out
adds on top when cores exist.  Every task function is module-level with
picklable arguments, so the drivers also run under process pools.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Mapping, Optional, Tuple

from ..relational.attributes import positions_of
from ..relational.columns import KEYS, VALUES, key_code_of
from ..relational.relation import Relation
from ..resilience.token import check_cancelled
from .pool import WorkerPool

#: Shard counts default to a small multiple of the worker budget so the
#: level scheduler always has tasks to steal; see Planner for the
#: data-scale decision of whether to shard at all.
DEFAULT_SHARD_COUNT = 4


def shared_attributes(left: Tuple[str, ...], right: Tuple[str, ...]) -> Tuple[str, ...]:
    """Join attributes, in *left*'s column order.

    This ordering is load-bearing: both sides of a co-partitioned
    operation derive their key positions from it, so equal keys hash to
    the same shard on both sides.
    """
    right_set = set(right)
    return tuple(a for a in left if a in right_set)


# ----------------------------------------------------------------------
# Per-shard kernels (module-level: picklable for process pools)
# ----------------------------------------------------------------------


def bucket_semijoin(
    left: Relation,
    right: Relation,
    left_positions: Tuple[int, ...],
    right_positions: Tuple[int, ...],
) -> Relation:
    """``left ⋉ right`` on the given key positions, bucket by bucket.

    Walks *left*'s cached index on the key (one dict probe per distinct
    key, not per row) and keeps whole buckets whose key appears in
    *right*'s index.  Returns *left* itself when nothing is filtered, so
    warm index/partition caches survive the pass.
    """
    if not left._rows:
        return left
    if not right._rows:
        return Relation._from_frozen(left.attributes, frozenset())
    left_index = left._index(left_positions)
    right_index = right._index(right_positions)
    kept = [bucket for key, bucket in left_index.items() if key in right_index]
    if sum(map(len, kept)) == len(left._rows):
        return left
    return Relation._from_frozen(left.attributes, frozenset(chain.from_iterable(kept)))


def _semijoin_task(
    task: Tuple[Relation, Relation, Tuple[int, ...], Tuple[int, ...]],
) -> Relation:
    left_shard, right_shard, left_positions, right_positions = task
    return bucket_semijoin(left_shard, right_shard, left_positions, right_positions)


def _join_task(task: Tuple[Relation, Relation]) -> Optional[Relation]:
    left_shard, right_shard = task
    if not left_shard.rows or not right_shard.rows:
        return None
    return left_shard.natural_join(right_shard)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


def parallel_semijoin(
    left: Relation,
    right: Relation,
    shard_count: int = DEFAULT_SHARD_COUNT,
    pool: Optional[WorkerPool] = None,
) -> Relation:
    """Shard-parallel ``left ⋉ right`` (equal to ``Relation.semijoin``).

    Both operands are hash-partitioned on the shared attributes, each
    co-partitioned shard pair is semijoined bucket-by-bucket, and shard
    pairs with an empty partner are dropped without scanning.  With no
    shared attributes this degenerates to the kernel's nonempty test.

    The driver is *cache-adaptive*: sharding an operand costs one pass, so
    the sharded path runs when the probe side's partition is already cached
    (warm — e.g. a base relation semijoined every execution) or when the
    pool has real workers to amortize the split.  A cold operand on a
    serial pool uses the bucket kernel if its key index happens to be warm,
    and otherwise falls through to the kernel's row-scan semijoin — the
    layer never pays more than sequential execution would.
    """
    check_cancelled()
    shared = shared_attributes(left.attributes, right.attributes)
    if not shared:
        return left.semijoin(right)
    left_positions = positions_of(left.attributes, shared)
    right_positions = positions_of(right.attributes, shared)
    if shard_count <= 1 or not left.rows or not right.rows:
        return bucket_semijoin(left, right, left_positions, right_positions)
    workers = pool.max_workers if pool is not None else 1
    partition_warm = (left_positions, shard_count) in left._partitions
    if workers > 1 or partition_warm:
        left_shards = left._partition(left_positions, shard_count)
        right_shards = right._partition(right_positions, shard_count)
        tasks = [
            (ls, rs, left_positions, right_positions)
            for ls, rs in zip(left_shards, right_shards)
        ]
        parts = _map(pool, _semijoin_task, tasks)
        if all(part is shard for part, shard in zip(parts, left_shards)):
            return left
        return Relation._from_frozen(
            left.attributes, frozenset().union(*(part.rows for part in parts))
        )
    if left_positions in left._indexes:
        return bucket_semijoin(left, right, left_positions, right_positions)
    return left.semijoin(right)


def parallel_hash_join(
    left: Relation,
    right: Relation,
    shard_count: int = DEFAULT_SHARD_COUNT,
    pool: Optional[WorkerPool] = None,
) -> Relation:
    """Shard-parallel natural join (equal to ``Relation.natural_join``).

    Co-partitions on the shared attributes and joins shard-by-shard; a
    left row's key determines its shard, so shard outputs are disjoint and
    recombination is a plain union.  With no shared attributes the kernel's
    cartesian product runs unsharded.
    """
    shared = shared_attributes(left.attributes, right.attributes)
    if not shared or shard_count <= 1 or not left.rows or not right.rows:
        return left.natural_join(right)
    left_positions = positions_of(left.attributes, shared)
    right_positions = positions_of(right.attributes, shared)
    left_shards = left._partition(left_positions, shard_count)
    right_shards = right._partition(right_positions, shard_count)
    tasks = [
        (ls, rs)
        for ls, rs in zip(left_shards, right_shards)
        if ls.rows and rs.rows
    ]
    parts = [part for part in _map(pool, _join_task, tasks) if part is not None]
    if not parts:
        extra = tuple(a for a in right.attributes if a not in set(left.attributes))
        return Relation._from_frozen(left.attributes + extra, frozenset())
    return Relation._from_frozen(
        parts[0].attributes, frozenset().union(*(part.rows for part in parts))
    )


def parallel_select_eq(
    relation: Relation,
    conditions: Mapping[str, Any],
    shard_count: int = DEFAULT_SHARD_COUNT,
) -> Relation:
    """Sharded point selection (equal to ``Relation.select_eq``).

    The condition key's pool code names the one shard that can contain
    matches (``_partition`` routes buckets by ``key_code % shard_count``);
    only that shard is probed — partition pruning, so no worker pool is
    involved.  A key absent from the value pool provably matches nothing:
    partitioning interned every key the relation holds.  Unhashable
    condition values fall back to the kernel's linear scan.
    """
    if shard_count <= 1 or not relation.rows:
        return relation.select_eq(conditions)
    positions = positions_of(relation.attributes, tuple(conditions))
    if len(positions) == 1:
        key: Any = next(iter(conditions.values()))
    else:
        key = tuple(conditions.values())
    # Resolve the probe's pool code *before* partitioning: an unhashable
    # probe (TypeError) routes to the kernel's linear-scan fallback and a
    # never-interned probe (None) proves emptiness — neither should pay
    # for building the shards it will not probe.
    try:
        key_code = key_code_of(VALUES, KEYS, key, len(positions))
    except TypeError:
        return relation.select_eq(conditions)
    if key_code is None:
        return Relation._from_frozen(relation.attributes, frozenset())
    shards = relation._partition(positions, shard_count)
    shard = shards[key_code % shard_count]
    bucket = shard._index(positions).get(key, ())
    return Relation._from_frozen(relation.attributes, frozenset(bucket))


def _map(pool: Optional[WorkerPool], fn, tasks):
    if pool is None:
        return [fn(task) for task in tasks]
    return pool.map(fn, tasks)
