"""N-wide execution of same-shape query batches (batch *lifting*).

``QueryEngine.run_batch`` groups operations by their binding-independent
shape.  A group of same-shape members — typically the decision instances
``Q[t/head]`` of one parameterized query — differs only in constant
values.  Executing the members one by one repeats the whole evaluation N
times; *lifting* executes the group once:

1. **generalize** — every constant position becomes a fresh *parameter
   variable*; positions whose constant values agree across *all* members
   collapse to one parameter (so the decision instances of one head
   variable reconstruct that variable, and the lifted query keeps the
   member shape's structure);
2. **restrict** — a parameter relation holding the members' value vectors
   joins in as one extra atom, so the lifted query computes exactly the
   union of the members' sub-results (the classic parameter-table /
   sideways-information-passing trick), never the unrestricted query;
3. **distribute** — the lifted answer relation is indexed on the parameter
   columns (one cached kernel index) and each member's result is read off
   with a single probe.

Soundness: selecting the lifted answers at one member's parameter vector
re-imposes precisely that member's constants, so distribution returns the
exact relation the member's own execution would (the engine's tests pin
this equivalence).  Lifting declines (returns ``None``) whenever the
group's members are not literal constant-variants of one template — or
carry inequality/comparison atoms — and the engine falls back to
per-member execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..evaluation.instantiation import answers_relation
from ..query.atoms import Atom
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Term, Variable
from ..relational.database import Database
from ..relational.relation import Relation

#: Relation name of the injected parameter table (made collision-free).
PARAM_RELATION = "__batch_params"


@dataclass(frozen=True)
class LiftedBatch:
    """One lifted group: the query to run once and how to split the result.

    Attributes
    ----------
    query:
        The generalized query (parameter variables in the head, parameter
        atom in the body).
    database:
        The input database extended with the parameter relation.
    members:
        The original member queries, in group order.
    member_keys:
        Per member, its parameter-value key in the lifted answer's index
        convention (raw value for one parameter, tuple otherwise).
    param_positions:
        Column positions of the parameters inside the lifted answer.
    head_variable_names:
        The template's distinct head variable names, in head order.
    head_variable_positions:
        Their column positions inside the lifted answer.
    """

    query: ConjunctiveQuery
    database: Database
    members: Tuple[ConjunctiveQuery, ...]
    member_keys: Tuple[Any, ...]
    param_positions: Tuple[int, ...]
    head_variable_names: Tuple[str, ...]
    head_variable_positions: Tuple[int, ...]

    def distribute(self, lifted_answers: Relation) -> List[Relation]:
        """Member results, in order, from one lifted answer relation.

        Each member's satisfying assignments are one probe of the lifted
        answer's cached parameter index, projected to the head variables;
        rendering onto the member's head terms is delegated to
        :func:`~repro.evaluation.instantiation.answers_relation`, the same
        routine per-member execution bottoms out in.  A member head
        constant is rendered from the head term itself — sound because the
        parameter selection already pinned every bucket row to exactly
        that member's constants.
        """
        index = lifted_answers._index(self.param_positions)
        positions = self.head_variable_positions
        results: List[Relation] = []
        for member, key in zip(self.members, self.member_keys):
            bucket = index.get(key, ())
            if positions:
                rows = frozenset(tuple(row[p] for p in positions) for row in bucket)
            else:
                rows = frozenset([()]) if bucket else frozenset()
            assignments = Relation._from_frozen(self.head_variable_names, rows)
            results.append(answers_relation(member.head_terms, assignments))
        return results

    def decide_members(self, reduced_root: Optional[Relation]) -> List[bool]:
        """Member decisions, in order, from the reduced parameter relation.

        *reduced_root* is the parameter atom's candidate relation after a
        bottom-up semijoin pass rooted there (``None`` when the lifted
        query is globally empty): every surviving parameter vector
        participates in a global match, so a member's query is nonempty
        iff its vector survived.
        """
        if reduced_root is None or reduced_root.is_empty():
            return [False] * len(self.members)
        param_names = tuple(term.name for term in self.query.atoms[-1].terms)
        aligned = reduced_root.project(param_names)
        if len(param_names) == 1:
            surviving = {row[0] for row in aligned.rows}
        else:
            surviving = set(aligned.rows)
        return [key in surviving for key in self.member_keys]


def lift_batch_group(
    members: Sequence[ConjunctiveQuery], database: Database
) -> Optional[LiftedBatch]:
    """Build the lifted execution for a same-template group, or ``None``.

    Members must be constant-variants of one template: identical atoms and
    head up to constant *values* (relation names, arities, and variables
    equal position by position), with no inequality or comparison atoms.
    """
    template = members[0]
    if template.inequalities or template.comparisons:
        return None
    for member in members[1:]:
        if not _same_template(template, member):
            return None

    # Constant positions and their value vectors across members.
    constant_slots: List[Tuple[int, int]] = []  # (atom index, term position)
    for atom_index, atom in enumerate(template.atoms):
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                constant_slots.append((atom_index, position))

    vectors: Dict[Tuple[int, int], Tuple[Any, ...]] = {
        slot: tuple(member.atoms[slot[0]].terms[slot[1]].value for member in members)
        for slot in constant_slots
    }
    # Merge slots with identical value vectors into one parameter class.
    classes: Dict[Tuple[Any, ...], Variable] = {}
    taken = {v.name for v in template.variables()}

    def parameter_for(vector: Tuple[Any, ...]) -> Variable:
        found = classes.get(vector)
        if found is None:
            name = f"p{len(classes)}"
            while name in taken:
                name = "_" + name
            found = Variable(name)
            classes[vector] = found
        return found

    lifted_atoms: List[Atom] = []
    for atom_index, atom in enumerate(template.atoms):
        terms: List[Term] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                terms.append(parameter_for(vectors[(atom_index, position)]))
            else:
                terms.append(term)
        lifted_atoms.append(Atom(atom.relation, tuple(terms)))

    if not classes:
        return None  # all members identical — the engine shares one result

    param_variables = tuple(classes.values())
    param_vectors = tuple(classes.keys())
    param_name = PARAM_RELATION
    while param_name in database:
        param_name = "_" + param_name
    param_atom = Atom(param_name, param_variables)
    key_rows = _member_key_rows(param_vectors, members)
    param_relation = Relation.from_rows(
        tuple(v.name for v in param_variables), set(key_rows)
    )

    head_variables = tuple(
        dict.fromkeys(
            term
            for term in template.head_terms
            if isinstance(term, Variable)
        )
    )
    lifted_head = head_variables + param_variables
    lifted_query = ConjunctiveQuery(
        lifted_head,
        lifted_atoms + [param_atom],
        head_name=f"{template.head_name}__wide",
    )

    # Compile the distribution layout against the lifted answer columns.
    column_of = {
        term: position for position, term in enumerate(lifted_head)
    }
    param_positions = tuple(column_of[v] for v in param_variables)
    if len(param_variables) == 1:
        member_keys = tuple(key_row[0] for key_row in key_rows)
    else:
        member_keys = tuple(key_rows)

    return LiftedBatch(
        query=lifted_query,
        # extend_domain: member constants may probe values the database
        # has never seen (a legitimate "is t in Q(d)?" with answer no).
        database=database.with_relation(param_name, param_relation, extend_domain=True),
        members=tuple(members),
        member_keys=member_keys,
        param_positions=param_positions,
        head_variable_names=tuple(v.name for v in head_variables),
        head_variable_positions=tuple(column_of[v] for v in head_variables),
    )


def _member_key_rows(
    param_vectors: Tuple[Tuple[Any, ...], ...],
    members: Sequence[ConjunctiveQuery],
) -> List[Tuple[Any, ...]]:
    """Per member, its value for each parameter class, in class order."""
    return [
        tuple(vector[i] for vector in param_vectors) for i in range(len(members))
    ]


def _same_template(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Equal up to constant values: same relations, arities, variables and
    constant positions, atom by atom and in the head."""
    if len(left.atoms) != len(right.atoms):
        return False
    if len(left.head_terms) != len(right.head_terms):
        return False
    if right.inequalities or right.comparisons:
        return False
    for left_atom, right_atom in zip(left.atoms, right.atoms):
        if left_atom.relation != right_atom.relation:
            return False
        if len(left_atom.terms) != len(right_atom.terms):
            return False
        if not _same_term_pattern(left_atom.terms, right_atom.terms):
            return False
    return _same_term_pattern(left.head_terms, right.head_terms)


def _same_term_pattern(left_terms: Sequence[Term], right_terms: Sequence[Term]) -> bool:
    for left_term, right_term in zip(left_terms, right_terms):
        if isinstance(left_term, Variable):
            if left_term != right_term:
                return False
        elif not isinstance(right_term, Constant):
            return False
    return True
