"""Adaptive query engine: structural analysis → plan → cache → execute.

The paper proves *which* query classes are tractable; this package turns
that map into a dispatcher.  ``QueryEngine.execute`` analyzes a conjunctive
query's structure (GYO acyclicity, treewidth, variable-set grouping),
plans an evaluation strategy with a cardinality-based cost model, caches
the plan under a binding-independent shape key, and runs the evaluator
whose tractability guarantee applies.  See ``docs/engine.md``.
"""

from .analysis import (
    ACYCLIC,
    ACYCLIC_NEQ,
    BOUNDED_TREEWIDTH,
    BOUNDED_VARIABLES,
    COUNT_BOOLEAN,
    COUNT_COVERED,
    COUNT_FULL,
    COUNT_GENERAL,
    COUNT_HARD,
    COUNTING_MODES,
    DEFAULT_TREEWIDTH_THRESHOLD,
    FAST_COUNTING_MODES,
    GENERAL,
    STRUCTURAL_CLASSES,
    StructuralAnalysis,
    analyze,
    counting_mode,
    covering_atom,
    plan_cache_key,
    schema_signature,
    shape_signature,
)
from .cache import CacheStats, PlanCache
from .engine import (
    DEFAULT_BATCH_WIDE_THRESHOLD,
    DEFAULT_REPLAN_DRIFT,
    DEFAULT_REPLAN_LIMIT,
    QueryEngine,
)
from .plan import (
    BOUNDED_VARIABLE,
    EVALUATORS,
    INEQUALITY,
    NAIVE,
    PlanRuntime,
    QueryPlan,
    TREEWIDTH,
    YANNAKAKIS,
)
from .planner import DEFAULT_SHARD_THRESHOLD_ROWS, Planner, default_shard_count
from .stats import EngineStats, ShapeStats

__all__ = [
    "ACYCLIC",
    "ACYCLIC_NEQ",
    "BOUNDED_TREEWIDTH",
    "BOUNDED_VARIABLE",
    "BOUNDED_VARIABLES",
    "COUNTING_MODES",
    "COUNT_BOOLEAN",
    "COUNT_COVERED",
    "COUNT_FULL",
    "COUNT_GENERAL",
    "COUNT_HARD",
    "CacheStats",
    "DEFAULT_BATCH_WIDE_THRESHOLD",
    "DEFAULT_REPLAN_DRIFT",
    "DEFAULT_REPLAN_LIMIT",
    "DEFAULT_SHARD_THRESHOLD_ROWS",
    "DEFAULT_TREEWIDTH_THRESHOLD",
    "EVALUATORS",
    "EngineStats",
    "FAST_COUNTING_MODES",
    "GENERAL",
    "INEQUALITY",
    "NAIVE",
    "PlanCache",
    "PlanRuntime",
    "Planner",
    "QueryEngine",
    "QueryPlan",
    "STRUCTURAL_CLASSES",
    "ShapeStats",
    "StructuralAnalysis",
    "TREEWIDTH",
    "YANNAKAKIS",
    "analyze",
    "counting_mode",
    "covering_atom",
    "default_shard_count",
    "plan_cache_key",
    "schema_signature",
    "shape_signature",
]
