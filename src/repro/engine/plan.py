"""The :class:`QueryPlan` value object and its ``explain`` rendering.

A plan is everything the executor needs that does *not* depend on the
constant bindings of the query: the structural analysis, the chosen
evaluator, the join order for the backtracking engine, the semijoin program
read off the join tree for the acyclic engines, the sharding decision for
the parallel execution layer, and the cost model's per-candidate estimates
(kept for transparency — ``explain`` shows why the planner chose what it
chose).

A plan also carries one deliberately *mutable* attachment: a
:class:`PlanRuntime` that accumulates actual result cardinalities and
execution counts after each run.  The estimates above are what the planner
believed; the runtime is what the data said — ``explain`` shows both side
by side, and when they drift far enough apart the engine *re-plans* the
shape with the observed cardinality as corrected statistics (the second
half of the ROADMAP's cost-model feedback loop).  A re-planned plan
records its provenance in ``replans`` / ``corrected_rows``, which
``explain`` renders.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .analysis import StructuralAnalysis


class PlanRuntime:
    """Mutable post-execution feedback attached to an immutable plan.

    Records how many times the plan ran and the last result cardinality it
    produced, so estimate-vs-actual drift is visible in ``explain`` and
    feeds the engine's adaptive re-planning.  Updates are locked: cached
    plans are shared by every thread the service front-end fans out.
    """

    __slots__ = ("executions", "last_rows", "_lock")

    def __init__(self) -> None:
        self.executions = 0
        self.last_rows: Optional[int] = None
        self._lock = threading.Lock()

    def record(self, rows: Optional[int]) -> None:
        """Note one execution; *rows* is None for decision-only runs."""
        with self._lock:
            self.executions += 1
            if rows is not None:
                self.last_rows = rows

    def __repr__(self) -> str:
        return (
            f"PlanRuntime(executions={self.executions}, "
            f"last_rows={self.last_rows})"
        )


#: Evaluator identifiers the engine can dispatch to.
NAIVE = "naive"
YANNAKAKIS = "yannakakis"
TREEWIDTH = "treewidth"
INEQUALITY = "inequality"
BOUNDED_VARIABLE = "bounded-variable"

EVALUATORS = (NAIVE, YANNAKAKIS, TREEWIDTH, INEQUALITY, BOUNDED_VARIABLE)

#: Why each evaluator is sound for the class it serves (shown by explain).
_RATIONALE = {
    YANNAKAKIS: (
        "acyclic CQs evaluate in time polynomial in |d| + |Q(d)| "
        "(combined complexity; paper §5, Yannakakis [18])"
    ),
    INEQUALITY: (
        "acyclic CQs with k inequality atoms are FPT in k via hashed "
        "colorings (paper Theorem 2)"
    ),
    TREEWIDTH: (
        "width-w tree decompositions give n^O(w) bag joins feeding an "
        "acyclic instance (bounded-treewidth extension; cf. Mengel's "
        "survey on CQ lower bounds)"
    ),
    BOUNDED_VARIABLE: (
        "grouping atoms by variable set bounds the atom count by 2^v "
        "before the generic algorithm runs (paper Theorem 1, parameter v)"
    ),
    NAIVE: (
        "generic backtracking baseline, n^O(q) combined complexity "
        "(paper §4; data complexity stays polynomial)"
    ),
}


@dataclass(frozen=True)
class QueryPlan:
    """An immutable, binding-independent execution plan for one query shape.

    Attributes
    ----------
    evaluator:
        One of :data:`EVALUATORS` — which engine executes the query.
    analysis:
        The structural analysis that justified the choice.
    join_order:
        Atom indices in probe order for the backtracking engine (present
        for every plan; the naive fallback and forced-naive execution use
        it, cost estimation derives from it).
    semijoin_program:
        Human-readable full-reducer steps from the join tree (acyclic
        plans) or bag construction steps (bounded-treewidth plans).
    cost_estimates:
        Abstract row-operation counts per candidate evaluator, from the
        planner's cost model.
    shard_count:
        Hash-shard fan-in for the parallel execution layer; 1 means the
        inputs are below the sharding threshold and execution stays on the
        sequential kernels.
    estimated_rows:
        The cost model's satisfying-assignment estimate, compared against
        actual cardinalities in ``explain``.
    count_mode:
        The Chen–Mengel counting classification of the shape (one of
        :data:`repro.engine.analysis.COUNTING_MODES`) — which counting
        strategy a ``count`` operation on this plan uses.  Empty for
        plans from planners predating the counting subsystem; the engine
        then classifies on the fly.
    replans:
        How many times this shape has been adaptively re-planned (0 for a
        first plan); the engine bumps it when estimate-vs-actual drift
        crosses its threshold and the shape is planned again.
    corrected_rows:
        The observed cardinality the last re-plan used as corrected
        statistics (None for a first plan).
    runtime:
        Mutable :class:`PlanRuntime` accumulating actual execution
        feedback (excluded from plan equality).
    """

    evaluator: str
    analysis: StructuralAnalysis
    join_order: Tuple[int, ...]
    semijoin_program: Tuple[str, ...] = ()
    cost_estimates: Dict[str, float] = field(default_factory=dict)
    shard_count: int = 1
    estimated_rows: float = 0.0
    count_mode: str = ""
    replans: int = 0
    corrected_rows: Optional[float] = None
    runtime: PlanRuntime = field(default_factory=PlanRuntime, compare=False, repr=False)

    @property
    def structural_class(self) -> str:
        return self.analysis.structural_class

    def rationale(self) -> str:
        return _RATIONALE.get(self.evaluator, "")

    def explain(self, cache_status: Optional[str] = None) -> str:
        """Multi-line description: analysis, dispatch, costs, program."""
        lines = [f"QueryPlan  [class: {self.structural_class}]"]
        if cache_status:
            lines[0] += f"  (plan cache: {cache_status})"
        lines.append(f"  analysis : {self.analysis.summary()}")
        lines.append(f"  evaluator: {self.evaluator} — {self.rationale()}")
        if self.cost_estimates:
            costs = ", ".join(
                f"{name}≈{estimate:.3g} row ops"
                for name, estimate in sorted(self.cost_estimates.items())
            )
            lines.append(f"  costs    : {costs}")
        if self.shard_count > 1:
            lines.append(
                f"  sharding : {self.shard_count}-way hash partitions "
                "(parallel semijoin passes)"
            )
        else:
            # Off either because the inputs are small or because the chosen
            # evaluator has no sharded executor — don't claim a reason.
            lines.append("  sharding : off")
        if self.count_mode:
            lines.append(f"  counting : {self.count_mode}")
        if self.replans:
            lines.append(
                f"  re-plan  : #{self.replans}, statistics corrected to "
                f"observed |Q(d)|≈{self.corrected_rows:.3g} after "
                "estimate-vs-actual drift"
            )
        if self.runtime.executions:
            actual = (
                f"last |Q(d)|={self.runtime.last_rows}"
                if self.runtime.last_rows is not None
                else "decision-only runs"
            )
            lines.append(
                f"  actuals  : {actual} vs est≈{self.estimated_rows:.3g} "
                f"({self.runtime.executions} execution(s) recorded)"
            )
        lines.append("  join ord.: " + " -> ".join(f"a{i}" for i in self.join_order))
        if self.semijoin_program:
            lines.append("  program  :")
            for step, text in enumerate(self.semijoin_program, start=1):
                lines.append(f"    {step}. {text}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryPlan(evaluator={self.evaluator!r}, "
            f"class={self.structural_class!r}, join_order={self.join_order!r})"
        )
