"""The :class:`QueryPlan` value object and its ``explain`` rendering.

A plan is everything the executor needs that does *not* depend on the
constant bindings of the query: the structural analysis, the chosen
evaluator, the join order for the backtracking engine, the semijoin program
read off the join tree for the acyclic engines, and the cost model's
per-candidate estimates (kept for transparency — ``explain`` shows why the
planner chose what it chose).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .analysis import StructuralAnalysis

#: Evaluator identifiers the engine can dispatch to.
NAIVE = "naive"
YANNAKAKIS = "yannakakis"
TREEWIDTH = "treewidth"
INEQUALITY = "inequality"
BOUNDED_VARIABLE = "bounded-variable"

EVALUATORS = (NAIVE, YANNAKAKIS, TREEWIDTH, INEQUALITY, BOUNDED_VARIABLE)

#: Why each evaluator is sound for the class it serves (shown by explain).
_RATIONALE = {
    YANNAKAKIS: (
        "acyclic CQs evaluate in time polynomial in |d| + |Q(d)| "
        "(combined complexity; paper §5, Yannakakis [18])"
    ),
    INEQUALITY: (
        "acyclic CQs with k inequality atoms are FPT in k via hashed "
        "colorings (paper Theorem 2)"
    ),
    TREEWIDTH: (
        "width-w tree decompositions give n^O(w) bag joins feeding an "
        "acyclic instance (bounded-treewidth extension; cf. Mengel's "
        "survey on CQ lower bounds)"
    ),
    BOUNDED_VARIABLE: (
        "grouping atoms by variable set bounds the atom count by 2^v "
        "before the generic algorithm runs (paper Theorem 1, parameter v)"
    ),
    NAIVE: (
        "generic backtracking baseline, n^O(q) combined complexity "
        "(paper §4; data complexity stays polynomial)"
    ),
}


@dataclass(frozen=True)
class QueryPlan:
    """An immutable, binding-independent execution plan for one query shape.

    Attributes
    ----------
    evaluator:
        One of :data:`EVALUATORS` — which engine executes the query.
    analysis:
        The structural analysis that justified the choice.
    join_order:
        Atom indices in probe order for the backtracking engine (present
        for every plan; the naive fallback and forced-naive execution use
        it, cost estimation derives from it).
    semijoin_program:
        Human-readable full-reducer steps from the join tree (acyclic
        plans) or bag construction steps (bounded-treewidth plans).
    cost_estimates:
        Abstract row-operation counts per candidate evaluator, from the
        planner's cost model.
    """

    evaluator: str
    analysis: StructuralAnalysis
    join_order: Tuple[int, ...]
    semijoin_program: Tuple[str, ...] = ()
    cost_estimates: Dict[str, float] = field(default_factory=dict)

    @property
    def structural_class(self) -> str:
        return self.analysis.structural_class

    def rationale(self) -> str:
        return _RATIONALE.get(self.evaluator, "")

    def explain(self, cache_status: Optional[str] = None) -> str:
        """Multi-line description: analysis, dispatch, costs, program."""
        lines = [f"QueryPlan  [class: {self.structural_class}]"]
        if cache_status:
            lines[0] += f"  (plan cache: {cache_status})"
        lines.append(f"  analysis : {self.analysis.summary()}")
        lines.append(f"  evaluator: {self.evaluator} — {self.rationale()}")
        if self.cost_estimates:
            costs = ", ".join(
                f"{name}≈{estimate:.3g} row ops"
                for name, estimate in sorted(self.cost_estimates.items())
            )
            lines.append(f"  costs    : {costs}")
        lines.append("  join ord.: " + " -> ".join(f"a{i}" for i in self.join_order))
        if self.semijoin_program:
            lines.append("  program  :")
            for step, text in enumerate(self.semijoin_program, start=1):
                lines.append(f"    {step}. {text}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryPlan(evaluator={self.evaluator!r}, "
            f"class={self.structural_class!r}, join_order={self.join_order!r})"
        )
