"""Per-shape execution counters: the engine's observability facade.

Production monitoring of a query service wants three things the plan cache
alone cannot answer: which query *shapes* are hot, what they cost
cumulatively, and whether the cache is actually absorbing the planning
work.  ``QueryEngine.stats()`` returns an :class:`EngineStats` snapshot
combining the plan cache's hit/miss/eviction counters with a per-shape
ledger: executions, cumulative and last wall-clock latency, and the last
observed result cardinality next to the planner's estimate (the
estimate-vs-actual drift that feeds the cost-model feedback loop).

The ledger is bounded (LRU on shapes, like the plan cache) so a service
executing unboundedly many distinct shapes cannot grow it without limit,
and locked: the async service front-end (:mod:`repro.service`) records
executions from many worker threads into one shared ledger, so every
mutation and every snapshot runs under one internal lock.  ``snapshot``
therefore returns a *consistent* view — shape totals summed from it equal
the number of recorded executions at the moment it was taken.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from statistics import median
from typing import Deque, Dict, Hashable, Iterable, List, Optional, Tuple

from .cache import CacheStats
from .plan import QueryPlan


def quantile(samples: Iterable[float], q: float) -> float:
    """The *q*-quantile of *samples* by linear interpolation (0 if empty).

    Shared by the ledger's per-shape tail latencies and the service
    front-end's per-client rollup — one definition, so a p95 printed by
    ``stats()`` means the same thing at every layer.
    """
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    q = min(1.0, max(0.0, q))
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class LatencyReservoir:
    """A bounded, locked ring of recent latency samples.

    Keeps the last *capacity* observations (old ones fall off), so the
    quantiles it reports track the *current* behavior of a shape or a
    client rather than averaging over the process lifetime.  Mutations and
    snapshots are locked — recorders run on worker threads while
    ``stats()`` snapshots from wherever the caller lives.
    """

    __slots__ = ("_samples", "_lock")

    def __init__(self, capacity: int = 128) -> None:
        self._samples: Deque[float] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()

    def add(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def quantile(self, q: float) -> float:
        with self._lock:
            return quantile(self._samples, q)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


@dataclass(frozen=True)
class ShapeStats:
    """Counters for one plan-cache shape (one prepared query)."""

    shape: str
    evaluator: str
    structural_class: str
    shard_count: int
    executions: int
    total_seconds: float
    last_seconds: float
    estimated_rows: float
    last_rows: Optional[int]
    replans: int = 0
    p95_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.executions if self.executions else 0.0


@dataclass(frozen=True)
class EngineStats:
    """One consistent snapshot of cache counters and the shape ledger."""

    cache: CacheStats
    shapes: Tuple[ShapeStats, ...]

    @property
    def executions(self) -> int:
        return sum(shape.executions for shape in self.shapes)

    @property
    def total_seconds(self) -> float:
        return sum(shape.total_seconds for shape in self.shapes)

    @property
    def replans(self) -> int:
        return sum(shape.replans for shape in self.shapes)

    def summary(self) -> str:
        """Multi-line rendering for logs and the examples."""
        cache = self.cache
        head = (
            f"EngineStats: {self.executions} execution(s), "
            f"{self.total_seconds * 1e3:.2f} ms total; plan cache "
            f"hits={cache.hits} misses={cache.misses} "
            f"evictions={cache.evictions} size={cache.size}/{cache.capacity}"
        )
        if self.replans:
            head += f"; {self.replans} adaptive re-plan(s)"
        lines = [head]
        for shape in sorted(self.shapes, key=lambda s: s.total_seconds, reverse=True):
            actual = "-" if shape.last_rows is None else str(shape.last_rows)
            replans = f" replans={shape.replans}" if shape.replans else ""
            lines.append(
                f"  {shape.shape}: n={shape.executions} "
                f"total={shape.total_seconds * 1e3:.2f}ms "
                f"mean={shape.mean_seconds * 1e3:.3f}ms "
                f"p95={shape.p95_seconds * 1e3:.3f}ms "
                f"last|Q(d)|={actual} est≈{shape.estimated_rows:.3g}{replans}"
            )
        return "\n".join(lines)


class ShapeLedger:
    """Bounded, locked per-shape accumulator keyed on plan-cache keys."""

    def __init__(self, capacity: int = 512) -> None:
        self._capacity = max(1, capacity)
        self._entries: "OrderedDict[Hashable, _ShapeRecord]" = OrderedDict()
        self._lock = threading.Lock()

    def _entry_for(self, key: Hashable, plan: QueryPlan) -> "_ShapeRecord":
        """Get-or-create *key*'s record (LRU refresh, eviction when full).

        Caller holds the lock.  One code path for every mutation, so the
        eviction and recency policy cannot drift between them.
        """
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) >= self._capacity:
                self._entries.popitem(last=False)
            entry = _ShapeRecord(plan)
            self._entries[key] = entry
        else:
            self._entries.move_to_end(key)
            entry.plan = plan
        return entry

    def record(
        self,
        key: Hashable,
        plan: QueryPlan,
        seconds: float,
        rows: Optional[int],
    ) -> None:
        with self._lock:
            entry = self._entry_for(key, plan)
            entry.executions += 1
            entry.total_seconds += seconds
            entry.last_seconds = seconds
            entry.latencies.append(seconds)
            if rows is not None:
                entry.last_rows = rows

    def note_replan(self, key: Hashable, plan: QueryPlan) -> None:
        """Count one adaptive re-plan of *key* (and adopt the new plan)."""
        with self._lock:
            self._entry_for(key, plan).replans += 1

    def snapshot(self) -> Tuple[ShapeStats, ...]:
        with self._lock:
            out = []
            for entry in self._entries.values():
                plan = entry.plan
                out.append(
                    ShapeStats(
                        shape=entry.label(),
                        evaluator=plan.evaluator,
                        structural_class=plan.structural_class,
                        shard_count=plan.shard_count,
                        executions=entry.executions,
                        total_seconds=entry.total_seconds,
                        last_seconds=entry.last_seconds,
                        estimated_rows=plan.estimated_rows,
                        last_rows=entry.last_rows,
                        replans=entry.replans,
                        p95_seconds=quantile(entry.latencies, 0.95),
                    )
                )
            return tuple(out)

    def observed_unit_costs(self, min_samples: int = 3) -> Dict[str, float]:
        """Observed seconds-per-modelled-row-op, per evaluator.

        For every shape with at least *min_samples* recorded latencies, the
        ratio ``p95(latencies) / cost_estimates[evaluator]`` says what one
        abstract row operation of that evaluator *actually* costs here; the
        per-evaluator median across shapes smooths out shape-specific
        noise.  This is the planner's calibration feed (its static pass
        weights are priors; these are the posteriors): an empty dict — a
        fresh engine, or one whose shapes are all cold — means "no
        evidence", and the planner falls back to the static constants.
        """
        ratios: Dict[str, List[float]] = {}
        with self._lock:
            for entry in self._entries.values():
                if len(entry.latencies) < max(1, min_samples):
                    continue
                plan = entry.plan
                modelled = plan.cost_estimates.get(plan.evaluator, 0.0)
                if modelled <= 0.0:
                    continue
                p95 = quantile(entry.latencies, 0.95)
                if p95 <= 0.0:
                    continue
                ratios.setdefault(plan.evaluator, []).append(p95 / modelled)
        return {evaluator: median(values) for evaluator, values in ratios.items()}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class _ShapeRecord:
    __slots__ = (
        "plan",
        "executions",
        "total_seconds",
        "last_seconds",
        "last_rows",
        "replans",
        "latencies",
    )

    def __init__(self, plan: QueryPlan) -> None:
        self.plan = plan
        self.executions = 0
        self.total_seconds = 0.0
        self.last_seconds = 0.0
        self.last_rows: Optional[int] = None
        self.replans = 0
        # Bounded ring under the ledger's own lock — a plain deque, not a
        # LatencyReservoir, so one lock acquisition covers the whole record.
        self.latencies: Deque[float] = deque(maxlen=64)

    def label(self) -> str:
        plan = self.plan
        return (
            f"{plan.structural_class}/{plan.evaluator}"
            f"[{len(plan.join_order)} atom(s)]"
        )
