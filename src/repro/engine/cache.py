"""An LRU cache for query plans.

Parameterized workloads — the same query shape executed under many constant
bindings, the bread and butter of a production query service — pay the
analyzer and cost model once: the cache key (:func:`plan_cache_key`)
canonicalizes variable names and erases constant values, so every binding
of one prepared statement maps to the same entry.  Eviction is
least-recently-used with a fixed capacity; hit / miss / eviction counters
are exposed for tests and for ``QueryEngine.explain``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional


@dataclass(frozen=True)
class CacheStats:
    """Counters since construction (or the last ``clear``)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A bounded mapping from plan-cache keys to plans, LRU eviction."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached plan for *key*, refreshing its recency; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: Hashable, plan: Any) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = plan
            return
        if len(self._entries) >= self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
        self._entries[key] = plan

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self._capacity,
        )
