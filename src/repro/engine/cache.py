"""An LRU cache for query plans.

Parameterized workloads — the same query shape executed under many constant
bindings, the bread and butter of a production query service — pay the
analyzer and cost model once: the cache key (:func:`plan_cache_key`)
canonicalizes variable names and erases constant values, so every binding
of one prepared statement maps to the same entry.  Eviction is
least-recently-used with a fixed capacity; hit / miss / eviction counters
are exposed for tests and for ``QueryEngine.explain``.

Thread safety: one ``QueryEngine`` (and hence one plan cache) is shared by
every concurrent caller of the async service front-end
(:mod:`repro.service`), so all structural mutation — the recency reordering
inside ``get``, insertion/eviction inside ``put``, counter updates — runs
under one internal lock.  The lock is never held while planning: two
threads missing the same shape may both plan it.  Cold misses publish
through ``put_if_absent`` (first plan wins, both threads adopt it), while
adaptive re-planning publishes through ``put`` (the corrected plan must
replace the drifted one).  First-wins matters since plans started carrying
correction state: a stale cold plan racing a corrected one must never
clobber it, or the re-plan budget would silently reset.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional


@dataclass(frozen=True)
class CacheStats:
    """Counters since construction (or the last ``clear``)."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A bounded, thread-safe mapping from plan-cache keys to plans (LRU)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached plan for *key*, refreshing its recency; None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, plan: Any) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = plan
                return
            if len(self._entries) >= self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = plan

    def put_if_absent(self, key: Hashable, plan: Any) -> Any:
        """Insert *key* unless present; return the winning (cached) plan.

        The cold-miss publication path: when two threads planned one
        shape concurrently, the first insert wins and both adopt it — and
        a plan already in the cache (possibly carrying re-plan
        corrections) is never overwritten by a late stale one.
        """
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            if len(self._entries) >= self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = plan
            return plan

    def peek(self, key: Hashable) -> Optional[Any]:
        """The cached plan for *key* without touching recency or counters.

        Internal bookkeeping reads (drift checks before a re-plan) use this
        so observability counters keep meaning "caller lookups".
        """
        with self._lock:
            return self._entries.get(key)

    def invalidate(self, key: Hashable) -> bool:
        """Drop *key*'s entry (re-planning); True when something was removed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )
