"""The :class:`QueryEngine` facade: plan, cache, dispatch, batch, parallel.

The engine is the production entry point the ROADMAP asks for on top of the
PR 1 kernel: callers stop hand-picking among ``NaiveEvaluator``,
``YannakakisEvaluator``, ``TreewidthEvaluator`` and the Theorem 2 machinery
and instead say ``engine.execute(query, database)``.  Internally:

1. the *analyzer* classifies the query's structure (acyclic / bounded
   treewidth / bounded variables / general — the paper's tractability map);
2. the *planner* turns the analysis plus kernel statistics into an
   explainable :class:`QueryPlan`, including the sharding decision for the
   parallel execution layer;
3. the *plan cache* (LRU, keyed on query shape + schema) lets repeated and
   parameterized queries skip both steps — every constant binding of one
   prepared shape reuses the same plan;
4. the *executor* dispatches to the chosen evaluator.  Sharded acyclic
   plans run through the parallel Yannakakis executor
   (``repro.parallel``): co-partitioned hash shards, bucket-centric
   semijoin kernels, and a worker pool (threads by default, processes
   optionally, inline on one core);
5. ``run_batch`` groups same-shape operations under one plan and — for
   large constant-variant groups — *lifts* the group into a single N-wide
   execution through a parameter relation, falling back to per-member
   execution fanned across the pool.

After every planned execution the engine records the actual result
cardinality on the plan (``QueryPlan.runtime``) and feeds a bounded
per-shape ledger; ``stats()`` exposes both together with the plan cache's
hit/miss counters.  When the observed cardinality drifts ≥
``replan_drift_threshold``× from the plan's estimate, the engine
*re-plans* the shape with the observation as corrected statistics
(adaptive re-planning — the second half of the cost-model feedback loop);
re-plan events surface in ``explain`` and ``stats()``.  ``explain``
returns the plan rendering (with cache status, sharding decision, and
estimate-vs-actual feedback) without executing anything; passing
``evaluator=...`` to ``execute``/``decide`` forces a specific engine,
which keeps the benchmark suite on a single code path even where a fixed
evaluator is the point of the measurement.

The engine is safe to share across threads — the async service front-end
(:mod:`repro.service`) multiplexes every concurrent caller onto one
engine: plan cache, ledger and plan runtimes are locked, kernel cache
fills are convergent, and the evaluators themselves are stateless across
calls.

Constructing with ``parallel=False`` reproduces the sequential PR 2
behavior exactly: no pool, no sharded dispatch, no batch lifting.
"""

from __future__ import annotations

import inspect
from dataclasses import replace
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backends.base import SqlBackend
from ..backends.dispatch import BACKEND, NATIVE, PushdownArbiter
from ..errors import BackendError, QueryError
from ..evaluation.bounded_variable import parameter_v_transform
from ..evaluation.counting import (
    CountingYannakakisEvaluator,
    grouped_count_reference,
    head_domain_size,
)
from ..evaluation.naive import NaiveEvaluator
from ..evaluation.treewidth_eval import TreewidthEvaluator
from ..evaluation.yannakakis import YannakakisEvaluator
from ..inequalities.evaluator import AcyclicInequalityEvaluator
from ..operations import (
    AGG_COUNT,
    AGG_EXISTS,
    AGG_FORALL,
    AGG_GROUP,
    Operation,
    operations_of,
)
from ..operations import (
    AGGREGATE as OP_AGGREGATE,
    COUNT as OP_COUNT,
    DECIDE as OP_DECIDE,
    EXECUTE as OP_EXECUTE,
    EXPLAIN as OP_EXPLAIN,
)
from ..parallel.batch import LiftedBatch, lift_batch_group
from ..parallel.executor import ParallelYannakakisEvaluator
from ..parallel.pool import THREADS, WorkerPool
from ..query.conjunctive import ConjunctiveQuery
from ..relational.database import Database
from ..relational.relation import Relation
from ..resilience.token import check_cancelled
from .analysis import (
    ACYCLIC,
    COUNT_BOOLEAN,
    DEFAULT_TREEWIDTH_THRESHOLD,
    FAST_COUNTING_MODES,
    counting_mode,
    plan_cache_key,
    variable_layout,
)
from .cache import CacheStats, PlanCache
from .plan import (
    BOUNDED_VARIABLE,
    EVALUATORS,
    INEQUALITY,
    NAIVE,
    QueryPlan,
    TREEWIDTH,
    YANNAKAKIS,
)
from .planner import Planner
from .stats import EngineStats, ShapeLedger

#: Same-shape groups at least this large are executed N-wide (lifted).
DEFAULT_BATCH_WIDE_THRESHOLD = 8

#: Estimate-vs-actual cardinality ratio at which a cached plan is dropped
#: and the shape is re-planned with observed statistics.
DEFAULT_REPLAN_DRIFT = 10.0

#: Most re-plans one cached shape entry may accumulate.  A stable workload
#: corrects once and settles; a workload whose parameterizations genuinely
#: oscillate ≥ drift× (hub vs leaf constants under one shape) would
#: otherwise re-plan on *every* execution, turning the plan cache into a
#: per-request planner on exactly the parameterized hot path it exists
#: for.  The cap bounds that waste; a data-scale change re-keys the shape
#: (schema signature) and starts a fresh entry with a fresh budget.
DEFAULT_REPLAN_LIMIT = 5


class QueryEngine:
    """Adaptive evaluation of conjunctive queries with plan caching.

    Parameters
    ----------
    plan_cache_size:
        Capacity of the LRU plan cache (number of distinct shapes).
    treewidth_threshold:
        Maximum heuristic decomposition width for which a cyclic query is
        still routed through the bounded-treewidth evaluator.
    planner:
        Optional custom planner (tests inject instrumented ones).
    parallel:
        Enable the sharded execution layer.  ``False`` restores purely
        sequential execution (no pool, no sharding, no batch lifting).
    max_workers:
        Worker budget for the pool (defaults to the CPU count; 1 runs
        every task inline).
    pool_mode:
        ``"threads"`` (default), ``"processes"``, or ``"serial"``.
    batch_wide_threshold:
        Minimum same-shape group size for N-wide batch lifting.
    replan_drift_threshold:
        Estimate-vs-actual cardinality ratio at which the cached plan is
        invalidated and the shape re-planned with observed statistics
        (``None`` disables adaptive re-planning).
    backend:
        Optional SQL pushdown backend
        (e.g. :class:`~repro.backends.SqliteBackend`).  When wired, the
        engine arbitrates native-vs-pushdown per shape and operation
        channel from observed latencies (explore both arms once, then
        take the lower median, re-probing the loser periodically — see
        :class:`~repro.backends.dispatch.PushdownArbiter`); ``explain``
        shows the decision and the generated SQL.  Backend latencies
        never feed the shape ledger or plan runtimes, so planner
        calibration stays a pure native signal.  The backend's lifecycle
        belongs to the caller (``close()`` does not close it).
    """

    def __init__(
        self,
        plan_cache_size: int = 128,
        treewidth_threshold: int = DEFAULT_TREEWIDTH_THRESHOLD,
        planner: Optional[Planner] = None,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        pool_mode: str = THREADS,
        batch_wide_threshold: int = DEFAULT_BATCH_WIDE_THRESHOLD,
        replan_drift_threshold: Optional[float] = DEFAULT_REPLAN_DRIFT,
        backend: Optional[SqlBackend] = None,
    ) -> None:
        self._cache = PlanCache(plan_cache_size)
        self._ledger = ShapeLedger()
        # The default planner is calibrated from this engine's own ledger:
        # observed per-evaluator unit costs replace the static pass-weight
        # prior once shapes warm up.  An injected planner keeps whatever
        # calibration (usually none) it was built with.
        self._planner = planner or Planner(
            treewidth_threshold, calibration=self._ledger.observed_unit_costs
        )
        self._replan_drift = replan_drift_threshold
        # Checked once, precisely: a legacy planner subclass without the
        # corrected-statistics parameter re-plans without it, while a
        # genuine TypeError raised *inside* planning still propagates.
        self._planner_takes_observed = (
            "observed_rows" in inspect.signature(self._planner.plan).parameters
        )
        self._naive = NaiveEvaluator()
        self._yannakakis = YannakakisEvaluator()
        self._treewidth = TreewidthEvaluator()
        self._inequality = AcyclicInequalityEvaluator()
        self._parallel = parallel
        self._batch_wide_threshold = batch_wide_threshold
        if parallel:
            self._pool: Optional[WorkerPool] = WorkerPool(max_workers, pool_mode)
            self._parallel_yannakakis: Optional[ParallelYannakakisEvaluator] = (
                ParallelYannakakisEvaluator(pool=self._pool)
            )
        else:
            self._pool = None
            self._parallel_yannakakis = None
        self._backend = backend
        self._arbiter = PushdownArbiter(backend) if backend is not None else None
        self._counting = CountingYannakakisEvaluator(reducer=self._yannakakis)
        self._parallel_counting = (
            CountingYannakakisEvaluator(reducer=self._parallel_yannakakis)
            if self._parallel_yannakakis is not None
            else None
        )
        # The per-layer dispatch table the Operation API rides on: adding
        # an operation kind means one entry here (plus its thin facade),
        # not a parallel copy of the plan/record/batch plumbing.
        self._op_runners = {
            OP_EXECUTE: self._op_execute,
            OP_DECIDE: self._op_decide,
            OP_EXPLAIN: self._op_explain,
            OP_COUNT: self._op_count,
            OP_AGGREGATE: self._op_aggregate,
        }

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan_for(self, query: ConjunctiveQuery, database: Database) -> QueryPlan:
        """The (possibly cached) plan the engine would execute."""
        plan, _, _ = self._plan_entry(query, database)
        return plan

    def _plan_entry(
        self,
        query: ConjunctiveQuery,
        database: Database,
        key: Optional[Tuple] = None,
    ) -> Tuple[QueryPlan, str, Tuple]:
        if key is None:
            key = plan_cache_key(query, database)
        cached = self._cache.get(key)
        if cached is not None:
            return cached, "hit", key
        plan = self._planner.plan(query, database)
        # First-wins publication: a concurrent planner of the same shape
        # (or a re-plan that corrected it meanwhile) keeps its entry.
        plan = self._cache.put_if_absent(key, plan)
        return plan, "miss", key

    # ------------------------------------------------------------------
    # The generic Operation path (facades below are one-line wrappers)
    # ------------------------------------------------------------------

    def run(self, operation: Operation, database: Database) -> Any:
        """Run one :class:`~repro.operations.Operation` — the single entry
        point every facade method routes through.  Dispatches on the
        operation kind via the engine's runner table."""
        runner = self._op_runners.get(operation.kind)
        if runner is None:
            raise QueryError(
                f"engine has no runner for operation kind {operation.kind!r}"
            )
        return runner(operation, database)

    def run_batch(
        self, operations: Sequence[Operation], database: Database
    ) -> List[Any]:
        """Run many operations, planning once per distinct (kind, options,
        shape) group.

        ``execute``/``decide`` groups keep the full batching machinery —
        duplicate sharing, N-wide lifting, pool fan-out; other kinds share
        duplicates and fan members across the pool.  Results come back in
        input order, equal to running each operation on its own.
        """
        groups: Dict[Tuple, List[int]] = {}
        for position, operation in enumerate(operations):
            key = (
                operation.kind,
                operation.options,
                plan_cache_key(operation.query, database),
            )
            groups.setdefault(key, []).append(position)
        results: List[Any] = [None] * len(operations)
        for (kind, options, plan_key), positions in groups.items():
            members = [operations[position] for position in positions]
            first = members[0]
            if len(members) == 1:
                # Singleton groups gain nothing from the batch machinery;
                # ``run`` keeps them on the adaptive path (including SQL
                # pushdown arbitration, which the lifted batch paths
                # deliberately bypass — lifting is the native strength).
                group_results = [self.run(first, database)]
            elif (
                kind in (OP_EXECUTE, OP_DECIDE)
                and first.option("evaluator") is None
            ):
                queries = [member.query for member in members]
                plan, _, _ = self._plan_entry(queries[0], database, key=plan_key)
                group_results = self._run_group(
                    plan_key, plan, queries, database, decide=(kind == OP_DECIDE)
                )
            else:
                group_results = self._run_generic_group(members, database)
            for position, result in zip(positions, group_results):
                results[position] = result
        return results

    def _run_generic_group(
        self, members: List[Operation], database: Database
    ) -> List[Any]:
        """Same-kind/options/shape operations without a specialized batch
        path: identical duplicates run once, the rest fan across the pool
        (``run`` itself records per-member observability)."""
        first = members[0]
        if len(members) > 1 and all(member == first for member in members[1:]):
            return [self.run(first, database)] * len(members)

        def run_member(member: Operation) -> Any:
            return self.run(member, database)

        pool = self._pool
        if pool is not None and pool.supports_closures and len(members) > 1:
            return pool.map(run_member, members)
        return [run_member(member) for member in members]

    # ------------------------------------------------------------------
    # Per-kind runners (the dispatch table's targets)
    # ------------------------------------------------------------------

    def _op_execute(self, operation: Operation, database: Database) -> Relation:
        query = operation.query
        forced = operation.option("evaluator")
        if forced is not None:
            return self._dispatch(forced, None, query, database, decide=False)
        plan, _, key = self._plan_entry(query, database)
        served, pushed = self._maybe_pushdown(OP_EXECUTE, query, key, database)
        if served:
            return pushed
        start = perf_counter()
        result = self._dispatch(plan.evaluator, plan, query, database, decide=False)
        elapsed = perf_counter() - start
        self._note_native(key, OP_EXECUTE, elapsed)
        self._record(key, plan, elapsed, result.cardinality, query, database)
        return result

    def _op_decide(self, operation: Operation, database: Database) -> bool:
        query = operation.query
        forced = operation.option("evaluator")
        if forced is not None:
            return self._dispatch(forced, None, query, database, decide=True)
        plan, _, key = self._plan_entry(query, database)
        served, pushed = self._maybe_pushdown(OP_DECIDE, query, key, database)
        if served:
            return pushed
        start = perf_counter()
        result = self._dispatch(plan.evaluator, plan, query, database, decide=True)
        elapsed = perf_counter() - start
        self._note_native(key, OP_DECIDE, elapsed)
        self._record(key, plan, elapsed, None, query, database)
        return result

    def _op_explain(self, operation: Operation, database: Database) -> str:
        plan, status, key = self._plan_entry(operation.query, database)
        stats = self._cache.stats
        footer = (
            f"  cache    : {status} "
            f"(hits={stats.hits}, misses={stats.misses}, "
            f"evictions={stats.evictions}, size={stats.size}/{stats.capacity})"
        )
        rendering = plan.explain(cache_status=status) + "\n" + footer
        if self._arbiter is not None:
            rendering += "\n" + self._arbiter.describe(key, operation.query)
        return rendering

    def _op_count(self, operation: Operation, database: Database) -> int:
        query = operation.query
        plan, _, key = self._plan_entry(query, database)
        served, pushed = self._maybe_pushdown(OP_COUNT, query, key, database)
        if served:
            return pushed
        start = perf_counter()
        total = self._count_with_plan(plan, query, database)
        elapsed = perf_counter() - start
        self._note_native(key, OP_COUNT, elapsed)
        # count *is* |Q(d)|, so it feeds estimate-vs-actual drift exactly
        # like an execute's cardinality does.
        self._record(key, plan, elapsed, total, query, database)
        return total

    # ------------------------------------------------------------------
    # SQL pushdown (the backend side of dispatch)
    # ------------------------------------------------------------------

    def _maybe_pushdown(
        self, channel: str, query: ConjunctiveQuery, key: Tuple, database: Database
    ) -> Tuple[bool, Any]:
        """(served, result) — whether the SQL backend answered this call.

        The arbiter picks the arm per (shape, channel) from observed
        latencies; a :class:`~repro.errors.BackendError` mid-pushdown
        marks the shape backend-unservable and falls back to native
        transparently.  Pushdown-served calls feed only the arbiter's
        reservoirs — never the shape ledger or the plan's runtime — so
        planner calibration stays a pure native signal.
        """
        arbiter = self._arbiter
        if arbiter is None or not arbiter.supports(key, query):
            return False, None
        if arbiter.choose(key, channel) != BACKEND:
            return False, None
        backend = self._backend
        start = perf_counter()
        try:
            if channel == OP_EXECUTE:
                result: Any = backend.execute(query, database)
            elif channel == OP_DECIDE:
                result = backend.decide(query, database)
            else:
                result = backend.count(query, database)
        except BackendError as exc:
            arbiter.mark_failed(key, str(exc))
            return False, None
        arbiter.record(key, channel, BACKEND, perf_counter() - start)
        return True, result

    def _note_native(self, key: Tuple, channel: str, seconds: float) -> None:
        if self._arbiter is not None:
            self._arbiter.record(key, channel, NATIVE, seconds)

    def _op_aggregate(self, operation: Operation, database: Database) -> Any:
        mode = operation.option("mode")
        query = operation.query
        if mode == AGG_COUNT:
            return self._op_count(operation, database)
        if mode == AGG_EXISTS:
            return self._op_decide(Operation(OP_DECIDE, query), database)
        plan, _, key = self._plan_entry(query, database)
        start = perf_counter()
        if mode == AGG_FORALL:
            # ∀-check: the count reaches the product of the head variables'
            # candidate domains iff every candidate head tuple is an answer
            # (vacuously true when a domain is empty).
            total = self._count_with_plan(plan, query, database)
            result: Any = total == head_domain_size(query, database)
            rows: Optional[int] = total
        else:  # AGG_GROUP — operation validation admits nothing else
            group_by = operation.option("group_by")
            result = self._grouped_count_with_plan(plan, query, database, group_by)
            rows = result.cardinality
        self._record(key, plan, perf_counter() - start, rows, query, database)
        return result

    # ------------------------------------------------------------------
    # Counting strategies (trichotomy-aware)
    # ------------------------------------------------------------------

    def _count_mode(self, plan: QueryPlan, query: ConjunctiveQuery) -> str:
        """The plan's counting classification (computed on the fly for
        plans from planners predating ``count_mode``)."""
        return plan.count_mode or counting_mode(query, plan.structural_class)

    def _counting_evaluator(self, plan: QueryPlan) -> CountingYannakakisEvaluator:
        if plan.shard_count > 1 and self._parallel_counting is not None:
            return self._parallel_counting
        return self._counting

    def _count_with_plan(
        self, plan: QueryPlan, query: ConjunctiveQuery, database: Database
    ) -> int:
        mode = self._count_mode(plan, query)
        if mode == COUNT_BOOLEAN:
            # Counting IS deciding here, and the plan's decide path works
            # on every structural class (the annotated pass would not —
            # a boolean head can sit on a cyclic body).
            return int(
                self._dispatch(plan.evaluator, plan, query, database, decide=True)
            )
        if mode in FAST_COUNTING_MODES:
            reusable = plan.analysis.variable_layout == variable_layout(query)
            tree = plan.analysis.join_tree if reusable else None
            return self._counting_evaluator(plan).count(
                query,
                database,
                join_tree=tree,
                mode=mode,
                shard_count=plan.shard_count,
            ).total
        # Hard modes (uncovered projection, cyclic core, constraints):
        # evaluate through the plan's evaluator and read the cardinality.
        return self._dispatch(
            plan.evaluator, plan, query, database, decide=False
        ).cardinality

    def _grouped_count_with_plan(
        self,
        plan: QueryPlan,
        query: ConjunctiveQuery,
        database: Database,
        group_by: Tuple[str, ...],
    ) -> Relation:
        mode = self._count_mode(plan, query)
        if mode in FAST_COUNTING_MODES:
            reusable = plan.analysis.variable_layout == variable_layout(query)
            tree = plan.analysis.join_tree if reusable else None
            fast = self._counting_evaluator(plan).grouped_count(
                query, database, group_by, join_tree=tree, mode=mode
            )
            if fast is not None:
                return fast
        answers = self._dispatch(plan.evaluator, plan, query, database, decide=False)
        return grouped_count_reference(query, answers, group_by)

    # ------------------------------------------------------------------
    # Facades (thin typed wrappers over the Operation path)
    # ------------------------------------------------------------------

    def explain(self, query: ConjunctiveQuery, database: Database) -> str:
        """The plan rendering for (query, database), without executing."""
        return self.run(Operation.explain(query), database)

    def execute(
        self,
        query: ConjunctiveQuery,
        database: Database,
        evaluator: Optional[str] = None,
    ) -> Relation:
        """Q(d) through the adaptive pipeline (or a forced *evaluator*)."""
        return self.run(Operation.execute(query, evaluator), database)

    def decide(
        self,
        query: ConjunctiveQuery,
        database: Database,
        evaluator: Optional[str] = None,
    ) -> bool:
        """Is Q(d) nonempty?"""
        return self.run(Operation.decide(query, evaluator), database)

    def count(self, query: ConjunctiveQuery, database: Database) -> int:
        """|Q(d)| — equal to ``len(execute(query, database).rows)``, but on
        the tractable counting modes computed from the reducer passes plus
        a linear fold, never the materialized join."""
        return self.run(Operation.count(query), database)

    def grouped_count(
        self,
        query: ConjunctiveQuery,
        database: Database,
        group_by: Sequence[str],
    ) -> Relation:
        """Per-group answer counts over the *group_by* head variables."""
        return self.run(Operation.grouped_count(query, group_by), database)

    def exists(self, query: ConjunctiveQuery, database: Database) -> bool:
        """Is Q(d) nonempty?  (The quantified-star ∃ aggregate.)"""
        return self.run(Operation.exists(query), database)

    def forall(self, query: ConjunctiveQuery, database: Database) -> bool:
        """Does every candidate head tuple belong to Q(d)?"""
        return self.run(Operation.forall(query), database)

    def contains(
        self,
        query: ConjunctiveQuery,
        database: Database,
        candidate: Sequence[Any],
    ) -> bool:
        """The paper's decision problem: is *candidate* ∈ Q(d)?

        Substitutes the candidate's constants (the decision instance) and
        decides emptiness adaptively.  All decision instances of one query
        share a plan-cache entry — this is the parameterized-query fast
        path the cache exists for.
        """
        try:
            decided = query.decision_instance(candidate)
        except QueryError:
            return False
        return self.decide(decided, database)

    def count_batch(
        self,
        queries: Sequence[ConjunctiveQuery],
        database: Database,
    ) -> List[int]:
        """|Q(d)| for many queries — duplicates share one count, distinct
        members fan across the pool under one plan per shape."""
        return self.run_batch(operations_of(OP_COUNT, queries), database)

    def _run_group(
        self,
        key: Tuple,
        plan: QueryPlan,
        members: List[ConjunctiveQuery],
        database: Database,
        decide: bool,
    ) -> List[Any]:
        """One shape group: shared, lifted, pooled, or plain execution.

        One driver for both batch flavors, so the grouping policy
        (duplicate sharing, lift gate, pool fan-out, share-of-wall-clock
        recording) cannot drift between them.  Each path records its own
        observability: the shared path ran the plan once (one
        ledger/runtime entry, however many members it served); the lifted
        path records only the *lifted* query under its own shape;
        per-member execution records every member with its share of the
        wall clock.
        """

        def rows_of(result: Any) -> Optional[int]:
            return None if decide else result.cardinality

        first = members[0]
        if len(members) > 1 and all(member == first for member in members[1:]):
            start = perf_counter()
            shared = self._dispatch(plan.evaluator, plan, first, database, decide)
            self._record(
                key, plan, perf_counter() - start, rows_of(shared), first, database
            )
            return [shared] * len(members)
        if (
            self._parallel
            and len(members) >= self._batch_wide_threshold
            and plan.structural_class == ACYCLIC
        ):
            lifted = lift_batch_group(members, database)
            if lifted is not None:
                if decide:
                    decisions = self._decide_lifted(lifted)
                    if decisions is not None:
                        return decisions
                else:
                    return lifted.distribute(
                        self.execute(lifted.query, lifted.database)
                    )

        def run_member(member: ConjunctiveQuery) -> Any:
            return self._dispatch(plan.evaluator, plan, member, database, decide)

        start = perf_counter()
        pool = self._pool
        if pool is not None and pool.supports_closures and len(members) > 1:
            group_results = pool.map(run_member, members)
        else:
            group_results = [run_member(member) for member in members]
        share = (perf_counter() - start) / len(members)
        for member, result in zip(members, group_results):
            self._record(key, plan, share, rows_of(result), member, database)
        return group_results

    def _decide_lifted(self, lifted: LiftedBatch) -> Optional[List[bool]]:
        """All members' decisions from one bottom-up pass, or ``None``.

        Declines (falling back to per-member decision) when the lifted
        query — the member template plus the parameter atom — is not
        itself acyclic, since the pass walks a join tree.
        """
        plan, _, key = self._plan_entry(lifted.query, lifted.database)
        if plan.structural_class != ACYCLIC or plan.analysis.join_tree is None:
            return None
        reusable = plan.analysis.variable_layout == variable_layout(lifted.query)
        tree = plan.analysis.join_tree if reusable else None
        root = len(lifted.query.atoms) - 1  # the parameter atom
        start = perf_counter()
        if plan.shard_count > 1 and self._parallel_yannakakis is not None:
            reduced = self._parallel_yannakakis.reduce_bottom_up(
                lifted.query,
                lifted.database,
                join_tree=tree,
                root=root,
                shard_count=plan.shard_count,
            )
        else:
            reduced = self._yannakakis.reduce_bottom_up(
                lifted.query, lifted.database, join_tree=tree, root=root
            )
        decisions = lifted.decide_members(reduced)
        self._record(
            key, plan, perf_counter() - start, None, lifted.query, lifted.database
        )
        return decisions

    # ------------------------------------------------------------------
    # Dispatch table
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        evaluator: str,
        plan: Optional[QueryPlan],
        query: ConjunctiveQuery,
        database: Database,
        decide: bool,
    ):
        # Cancellation check-point at dispatch: an expired deadline or an
        # already-abandoned request aborts before planning or evaluation
        # spends anything.
        check_cancelled()
        # A cached plan's join tree / decomposition name the variables of
        # the query it was planned from; they are reusable for this query
        # only when the variable layout matches (true for the parameterized
        # decision instances the cache targets, false for α-renamed shape
        # twins, which just rebuild the structure).
        reusable = plan is not None and plan.analysis.variable_layout == (
            variable_layout(query)
        )
        if evaluator == YANNAKAKIS:
            # Reuse the plan's join tree: a cache hit must not pay for the
            # GYO reduction again.
            tree = plan.analysis.join_tree if reusable else None
            if (
                plan is not None
                and plan.shard_count > 1
                and self._parallel_yannakakis is not None
            ):
                engine = self._parallel_yannakakis
                return (
                    engine.decide(
                        query, database, join_tree=tree, shard_count=plan.shard_count
                    )
                    if decide
                    else engine.evaluate(
                        query, database, join_tree=tree, shard_count=plan.shard_count
                    )
                )
            engine = self._yannakakis
            return (
                engine.decide(query, database, join_tree=tree)
                if decide
                else engine.evaluate(query, database, join_tree=tree)
            )
        if evaluator == TREEWIDTH:
            decomposition = plan.analysis.decomposition if reusable else None
            engine = self._treewidth
            return (
                engine.decide(query, database, decomposition=decomposition)
                if decide
                else engine.evaluate(query, database, decomposition=decomposition)
            )
        if evaluator == INEQUALITY:
            engine = self._inequality
            return (
                engine.decide(query, database)
                if decide
                else engine.evaluate(query, database)
            )
        if evaluator == BOUNDED_VARIABLE:
            grouped_query, grouped_database = parameter_v_transform(query, database)
            return (
                self._naive.decide(grouped_query, grouped_database)
                if decide
                else self._naive.evaluate(grouped_query, grouped_database)
            )
        if evaluator == NAIVE:
            order = plan.join_order if plan is not None else None
            return (
                self._naive.decide(query, database, atom_order=order)
                if decide
                else self._naive.evaluate(query, database, atom_order=order)
            )
        raise QueryError(
            f"unknown evaluator {evaluator!r}; expected one of {EVALUATORS}"
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _record(
        self,
        key: Tuple,
        plan: QueryPlan,
        seconds: float,
        rows: Optional[int],
        query: Optional[ConjunctiveQuery] = None,
        database: Optional[Database] = None,
    ) -> None:
        plan.runtime.record(rows)
        self._ledger.record(key, plan, seconds, rows)
        if query is not None and database is not None:
            self._maybe_replan(key, rows, query, database)

    def _maybe_replan(
        self,
        key: Tuple,
        rows: Optional[int],
        query: ConjunctiveQuery,
        database: Database,
    ) -> None:
        """Adaptive re-planning: drop a drifted plan, re-plan with actuals.

        When the observed cardinality is ≥ ``replan_drift_threshold``× off
        the cached plan's estimate (in either direction), the cache entry
        is invalidated and the shape planned again with the observation as
        corrected statistics.  The new plan's estimate equals the
        observation, so a stable workload re-plans once and settles; only
        a workload that genuinely oscillates beyond the threshold keeps
        re-planning, which is then the right call.  Drift is always
        measured against the *currently cached* plan, so concurrent
        recordings of one shape do not cascade into repeated re-plans, and
        each shape entry holds at most :data:`DEFAULT_REPLAN_LIMIT`
        corrections — parameterizations that genuinely oscillate beyond
        the threshold (hub vs leaf constants under one shape) stop
        burning planner work once the budget is spent, instead of turning
        the plan cache into a per-request planner.
        """
        threshold = self._replan_drift
        if threshold is None or rows is None:
            return
        plan = self._cache.peek(key)
        if plan is None or plan.replans >= DEFAULT_REPLAN_LIMIT:
            return
        actual = max(float(rows), 1.0)
        expected = max(plan.estimated_rows, 1.0)
        drift = actual / expected if actual >= expected else expected / actual
        if drift < threshold:
            return
        corrected = float(rows)
        if self._planner_takes_observed:
            new_plan = self._planner.plan(query, database, observed_rows=corrected)
        else:
            new_plan = self._planner.plan(query, database)
        new_plan = replace(new_plan, replans=plan.replans + 1, corrected_rows=corrected)
        # Seed the fresh runtime with the observation that triggered the
        # re-plan, so explain's estimate-vs-actual line survives the swap.
        new_plan.runtime.record(rows)
        # Plain put — the corrected plan must *replace* the drifted entry
        # (there is no invalidate-then-put window: a concurrent cold miss
        # cannot slip a stale plan in between, because cold misses publish
        # first-wins through put_if_absent against this entry).
        self._cache.put(key, new_plan)
        self._ledger.note_replan(key, new_plan)

    def stats(self) -> EngineStats:
        """Cache counters plus the per-shape execution ledger."""
        return EngineStats(cache=self._cache.stats, shapes=self._ledger.snapshot())

    @property
    def backend(self) -> Optional[SqlBackend]:
        """The wired SQL pushdown backend (``None`` for native-only)."""
        return self._backend

    def pushdown_stats(self) -> Dict[Tuple, Dict[str, Any]]:
        """Per-(shape, channel) native/backend latency observations.

        Empty without a wired backend.  Keys are ``(plan-cache key,
        channel)`` pairs; values carry call counts, per-arm medians and
        sample counts, and whether the shape is still pushdown-eligible.
        """
        if self._arbiter is None:
            return {}
        return self._arbiter.snapshot()

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The engine's worker pool (``None`` when ``parallel=False``).

        The async service front-end (:mod:`repro.service`) feeds its
        request queue into this pool so service dispatch and sharded
        execution share one worker budget.
        """
        return self._pool

    def clear_cache(self) -> None:
        self._cache.clear()
        self._ledger.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the engine stays usable —
        a closed pool restarts lazily on the next sharded execution)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
