"""The :class:`QueryEngine` facade: plan, cache, dispatch, batch.

The engine is the production entry point the ROADMAP asks for on top of the
PR 1 kernel: callers stop hand-picking among ``NaiveEvaluator``,
``YannakakisEvaluator``, ``TreewidthEvaluator`` and the Theorem 2 machinery
and instead say ``engine.execute(query, database)``.  Internally:

1. the *analyzer* classifies the query's structure (acyclic / bounded
   treewidth / bounded variables / general — the paper's tractability map);
2. the *planner* turns the analysis plus kernel statistics into an
   explainable :class:`QueryPlan`;
3. the *plan cache* (LRU, keyed on query shape + schema) lets repeated and
   parameterized queries skip both steps — every constant binding of one
   prepared shape reuses the same plan;
4. the *executor* dispatches to the chosen evaluator; ``execute_batch``
   additionally groups same-shape queries so a whole batch plans once and
   the kernel's per-relation index caches stay hot across members.

``explain`` returns the plan rendering (with cache status) without
executing anything; passing ``evaluator=...`` to ``execute``/``decide``
forces a specific engine, which keeps the benchmark suite on a single code
path even where a fixed evaluator is the point of the measurement.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..evaluation.bounded_variable import parameter_v_transform
from ..evaluation.naive import NaiveEvaluator
from ..evaluation.treewidth_eval import TreewidthEvaluator
from ..evaluation.yannakakis import YannakakisEvaluator
from ..inequalities.evaluator import AcyclicInequalityEvaluator
from ..query.conjunctive import ConjunctiveQuery
from ..relational.database import Database
from ..relational.relation import Relation
from .analysis import (
    DEFAULT_TREEWIDTH_THRESHOLD,
    plan_cache_key,
    variable_layout,
)
from .cache import CacheStats, PlanCache
from .plan import (
    BOUNDED_VARIABLE,
    EVALUATORS,
    INEQUALITY,
    NAIVE,
    QueryPlan,
    TREEWIDTH,
    YANNAKAKIS,
)
from .planner import Planner


class QueryEngine:
    """Adaptive evaluation of conjunctive queries with plan caching.

    Parameters
    ----------
    plan_cache_size:
        Capacity of the LRU plan cache (number of distinct shapes).
    treewidth_threshold:
        Maximum heuristic decomposition width for which a cyclic query is
        still routed through the bounded-treewidth evaluator.
    planner:
        Optional custom planner (tests inject instrumented ones).
    """

    def __init__(
        self,
        plan_cache_size: int = 128,
        treewidth_threshold: int = DEFAULT_TREEWIDTH_THRESHOLD,
        planner: Optional[Planner] = None,
    ) -> None:
        self._planner = planner or Planner(treewidth_threshold)
        self._cache = PlanCache(plan_cache_size)
        self._naive = NaiveEvaluator()
        self._yannakakis = YannakakisEvaluator()
        self._treewidth = TreewidthEvaluator()
        self._inequality = AcyclicInequalityEvaluator()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan_for(self, query: ConjunctiveQuery, database: Database) -> QueryPlan:
        """The (possibly cached) plan the engine would execute."""
        plan, _ = self._plan_with_status(query, database)
        return plan

    def _plan_with_status(
        self, query: ConjunctiveQuery, database: Database
    ) -> Tuple[QueryPlan, str]:
        key = plan_cache_key(query, database)
        cached = self._cache.get(key)
        if cached is not None:
            return cached, "hit"
        plan = self._planner.plan(query, database)
        self._cache.put(key, plan)
        return plan, "miss"

    def explain(self, query: ConjunctiveQuery, database: Database) -> str:
        """The plan rendering for (query, database), without executing."""
        plan, status = self._plan_with_status(query, database)
        stats = self._cache.stats
        footer = (
            f"  cache    : {status} "
            f"(hits={stats.hits}, misses={stats.misses}, "
            f"evictions={stats.evictions}, size={stats.size}/{stats.capacity})"
        )
        return plan.explain(cache_status=status) + "\n" + footer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        query: ConjunctiveQuery,
        database: Database,
        evaluator: Optional[str] = None,
    ) -> Relation:
        """Q(d) through the adaptive pipeline (or a forced *evaluator*)."""
        if evaluator is not None:
            return self._dispatch(evaluator, None, query, database, decide=False)
        plan, _ = self._plan_with_status(query, database)
        return self._dispatch(plan.evaluator, plan, query, database, decide=False)

    def decide(
        self,
        query: ConjunctiveQuery,
        database: Database,
        evaluator: Optional[str] = None,
    ) -> bool:
        """Is Q(d) nonempty?"""
        if evaluator is not None:
            return self._dispatch(evaluator, None, query, database, decide=True)
        plan, _ = self._plan_with_status(query, database)
        return self._dispatch(plan.evaluator, plan, query, database, decide=True)

    def contains(
        self,
        query: ConjunctiveQuery,
        database: Database,
        candidate: Sequence[Any],
    ) -> bool:
        """The paper's decision problem: is *candidate* ∈ Q(d)?

        Substitutes the candidate's constants (the decision instance) and
        decides emptiness adaptively.  All decision instances of one query
        share a plan-cache entry — this is the parameterized-query fast
        path the cache exists for.
        """
        try:
            decided = query.decision_instance(candidate)
        except QueryError:
            return False
        return self.decide(decided, database)

    def execute_batch(
        self,
        queries: Sequence[ConjunctiveQuery],
        database: Database,
    ) -> List[Relation]:
        """Evaluate many queries, planning once per distinct shape.

        Queries are grouped by plan-cache key; each group is planned a
        single time (one analyzer + cost-model run) and executed member by
        member, so same-shape batches amortize planning and keep probing
        the same kernel index caches.  Results come back in input order.
        """
        groups: Dict[Tuple, List[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault(plan_cache_key(query, database), []).append(position)
        results: List[Optional[Relation]] = [None] * len(queries)
        for positions in groups.values():
            plan, _ = self._plan_with_status(queries[positions[0]], database)
            for position in positions:
                results[position] = self._dispatch(
                    plan.evaluator, plan, queries[position], database, decide=False
                )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Dispatch table
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        evaluator: str,
        plan: Optional[QueryPlan],
        query: ConjunctiveQuery,
        database: Database,
        decide: bool,
    ):
        # A cached plan's join tree / decomposition name the variables of
        # the query it was planned from; they are reusable for this query
        # only when the variable layout matches (true for the parameterized
        # decision instances the cache targets, false for α-renamed shape
        # twins, which just rebuild the structure).
        reusable = plan is not None and plan.analysis.variable_layout == (
            variable_layout(query)
        )
        if evaluator == YANNAKAKIS:
            # Reuse the plan's join tree: a cache hit must not pay for the
            # GYO reduction again.
            tree = plan.analysis.join_tree if reusable else None
            engine = self._yannakakis
            return (
                engine.decide(query, database, join_tree=tree)
                if decide
                else engine.evaluate(query, database, join_tree=tree)
            )
        if evaluator == TREEWIDTH:
            decomposition = plan.analysis.decomposition if reusable else None
            engine = self._treewidth
            return (
                engine.decide(query, database, decomposition=decomposition)
                if decide
                else engine.evaluate(query, database, decomposition=decomposition)
            )
        if evaluator == INEQUALITY:
            engine = self._inequality
            return (
                engine.decide(query, database)
                if decide
                else engine.evaluate(query, database)
            )
        if evaluator == BOUNDED_VARIABLE:
            grouped_query, grouped_database = parameter_v_transform(query, database)
            return (
                self._naive.decide(grouped_query, grouped_database)
                if decide
                else self._naive.evaluate(grouped_query, grouped_database)
            )
        if evaluator == NAIVE:
            order = plan.join_order if plan is not None else None
            return (
                self._naive.decide(query, database, atom_order=order)
                if decide
                else self._naive.evaluate(query, database, atom_order=order)
            )
        raise QueryError(
            f"unknown evaluator {evaluator!r}; expected one of {EVALUATORS}"
        )

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    def clear_cache(self) -> None:
        self._cache.clear()
