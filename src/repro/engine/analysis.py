"""Structural analysis of conjunctive queries for the adaptive planner.

The paper's dichotomy — evaluation is intractable in combined complexity in
general (Theorem 1: W[1]-complete for parameters q and v) but polynomial for
acyclic queries (§5) — is a *planning* decision: detect the structure, then
dispatch to the engine whose tractability guarantee applies.  This module is
the detection half.  It classifies a :class:`ConjunctiveQuery` into one of
the engine's structural classes:

``acyclic``
    GYO-reducible hypergraph, no constraint atoms — Yannakakis territory.
``acyclic-inequalities``
    Acyclic relational core plus ≠ atoms — the paper's Theorem 2 island
    (FPT in the number of inequalities).
``bounded-treewidth``
    Cyclic, but a heuristic tree decomposition of the primal graph has
    width ≤ the planner's threshold — the bounded-treewidth generalization
    of acyclicity from the literature that followed the paper.
``bounded-variables``
    Cyclic and wide, but with fewer distinct atom variable sets than atoms,
    so Theorem 1's parameter-v grouping shrinks the query before the
    generic algorithm runs.
``general``
    Everything else (including any query with < / ≤ atoms) — the n^O(q)
    backtracking baseline.

The module also defines the two cache-key signatures: a *shape* signature
that canonicalizes variable names and erases constant values (so a
parameterized query hits the same plan for every constant binding), and a
*schema* signature summarizing the relations the query touches (so a plan
is re-derived when the data changes scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import NotAcyclicError
from ..hypergraph.join_tree import JoinTree
from ..hypergraph.treewidth import TreeDecomposition, tree_decomposition
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Variable
from ..relational.database import Database

ACYCLIC = "acyclic"
ACYCLIC_NEQ = "acyclic-inequalities"
BOUNDED_TREEWIDTH = "bounded-treewidth"
BOUNDED_VARIABLES = "bounded-variables"
GENERAL = "general"

STRUCTURAL_CLASSES = (
    ACYCLIC,
    ACYCLIC_NEQ,
    BOUNDED_TREEWIDTH,
    BOUNDED_VARIABLES,
    GENERAL,
)

#: Default width bound under which a cyclic query is still treated as
#: tractable via its tree decomposition (bag materialization is n^(w+1)).
DEFAULT_TREEWIDTH_THRESHOLD = 3

# ----------------------------------------------------------------------
# Counting modes (Chen–Mengel trichotomy, operationalized)
# ----------------------------------------------------------------------
#
# Counting the answers |Q(d)| is strictly harder than deciding emptiness:
# with existential (projected-away) variables it is #P-hard even on
# acyclic queries (high quantified star size).  The tractable islands the
# engine serves without materializing the join:

COUNT_BOOLEAN = "count-boolean"      #: no head variables — count is decide (0/1)
COUNT_COVERED = "count-covered"      #: head vars inside one atom — |π_H| of its reduced relation
COUNT_FULL = "count-full"            #: no existential vars — annotated multiplicity pass
COUNT_HARD = "count-hard"            #: acyclic but projection uncovered — evaluate-then-count
COUNT_GENERAL = "count-general"      #: cyclic / constraint-bearing — evaluate-then-count

COUNTING_MODES = (
    COUNT_BOOLEAN,
    COUNT_COVERED,
    COUNT_FULL,
    COUNT_HARD,
    COUNT_GENERAL,
)

#: Modes the annotated counting evaluator serves directly (decide-like
#: cost); the rest fall back to full evaluation plus a cardinality read.
FAST_COUNTING_MODES = (COUNT_BOOLEAN, COUNT_COVERED, COUNT_FULL)


@dataclass(frozen=True)
class StructuralAnalysis:
    """Everything the planner needs to know about a query's structure."""

    structural_class: str
    acyclic: bool
    join_tree: Optional[JoinTree]
    decomposition: Optional[TreeDecomposition]
    width: Optional[int]
    num_atoms: int
    num_variables: int
    query_size: int
    num_inequalities: int
    num_comparisons: int
    distinct_variable_sets: int
    #: Per-atom variable names (position order) of the analyzed query.  The
    #: join tree and decomposition above name these variables; an α-renamed
    #: shape twin served by the same cached plan must not reuse them (see
    #: :func:`variable_layout`), since bags/edges are matched by name.
    variable_layout: Tuple[Tuple[str, ...], ...] = ()

    def summary(self) -> str:
        """One line for ``explain`` output."""
        shape = "acyclic (GYO)" if self.acyclic else (
            f"cyclic, decomposition width {self.width}"
        )
        constraints = ""
        if self.num_inequalities:
            constraints += f", {self.num_inequalities} inequality atom(s)"
        if self.num_comparisons:
            constraints += f", {self.num_comparisons} comparison atom(s)"
        return (
            f"{self.num_atoms} atom(s), {self.num_variables} variable(s), "
            f"q={self.query_size}; {shape}{constraints}"
        )


def variable_layout(query: ConjunctiveQuery) -> Tuple[Tuple[str, ...], ...]:
    """Per-atom variable names — the identity under which a cached plan's
    join tree / decomposition remain directly reusable.

    Two same-shape queries that differ only in their *constants* (the
    decision instances of one parameterized query) have equal layouts; an
    α-renamed twin does not, and must rebuild the named structures."""
    return tuple(tuple(v.name for v in atom.variables()) for atom in query.atoms)


def analyze(
    query: ConjunctiveQuery,
    treewidth_threshold: int = DEFAULT_TREEWIDTH_THRESHOLD,
) -> StructuralAnalysis:
    """Classify *query* into the engine's structural classes.

    Pure function of the query (no database): the same analysis is valid
    for every constant binding of the same shape, which is what makes the
    plan cache sound.
    """
    hypergraph = query.hypergraph()
    join_tree: Optional[JoinTree] = None
    decomposition: Optional[TreeDecomposition] = None
    width: Optional[int] = None
    try:
        join_tree = JoinTree.from_hypergraph(hypergraph)
        acyclic = True
    except NotAcyclicError:
        acyclic = False
        decomposition = tree_decomposition(hypergraph, heuristic="min_fill")
        width = decomposition.width

    distinct_variable_sets = len({a.variable_set() for a in query.atoms})

    if query.comparisons:
        structural_class = GENERAL
    elif query.inequalities:
        structural_class = ACYCLIC_NEQ if acyclic else GENERAL
    elif acyclic:
        structural_class = ACYCLIC
    elif width is not None and width <= treewidth_threshold:
        structural_class = BOUNDED_TREEWIDTH
    elif distinct_variable_sets < len(query.atoms):
        structural_class = BOUNDED_VARIABLES
    else:
        structural_class = GENERAL

    return StructuralAnalysis(
        structural_class=structural_class,
        acyclic=acyclic,
        join_tree=join_tree,
        decomposition=decomposition,
        width=width,
        num_atoms=query.num_atoms(),
        num_variables=query.num_variables(),
        query_size=query.query_size(),
        num_inequalities=len(query.inequalities),
        num_comparisons=len(query.comparisons),
        distinct_variable_sets=distinct_variable_sets,
        variable_layout=variable_layout(query),
    )


# ----------------------------------------------------------------------
# Counting classification
# ----------------------------------------------------------------------


def covering_atom(query: ConjunctiveQuery) -> Optional[int]:
    """Index of the first atom whose variables cover the head, or None.

    When such an atom exists the query is *head-covered*: after a full
    reduction every surviving tuple of that atom's candidate relation
    participates in a global match, so the distinct head assignments are
    exactly ``π_H`` of that one relation — counting costs a key count, not
    a join.
    """
    head = {v for v in query.head_variables()}
    if not head:
        return None
    for index, atom in enumerate(query.atoms):
        if head <= atom.variable_set():
            return index
    return None


def counting_mode(query: ConjunctiveQuery, structural_class: str) -> str:
    """Classify *query* for counting, per the Chen–Mengel trichotomy.

    Pure function of the query shape (like :func:`analyze`), so the mode
    is computed once per plan and cached with it.  Order matters: a
    boolean head is cheapest, a covered head beats the annotated pass,
    and only acyclic constraint-free queries reach the fast modes at all.
    """
    if not query.head_variables():
        return COUNT_BOOLEAN
    if structural_class != ACYCLIC:
        return COUNT_GENERAL
    if covering_atom(query) is not None:
        return COUNT_COVERED
    if not query.existential_variables():
        return COUNT_FULL
    return COUNT_HARD


# ----------------------------------------------------------------------
# Cache-key signatures
# ----------------------------------------------------------------------

_CONST = ("c",)


def shape_signature(query: ConjunctiveQuery) -> Tuple:
    """A canonical, binding-independent key for the query's shape.

    Variables are renamed to their first-occurrence index (head first, then
    body atoms in order) and constants collapse to a positional marker, so
    the decision instances ``Q[t/head]`` of one parameterized query share a
    single signature for every candidate tuple t.  Relation names are kept:
    they determine which cardinalities the cost model reads.
    """
    numbering: Dict[Variable, int] = {}

    def term_key(term) -> Tuple:
        if isinstance(term, Constant):
            return _CONST
        index = numbering.get(term)
        if index is None:
            index = len(numbering)
            numbering[term] = index
        return ("v", index)

    head = tuple(term_key(t) for t in query.head_terms)
    atoms = tuple(
        (atom.relation,) + tuple(term_key(t) for t in atom.terms)
        for atom in query.atoms
    )
    inequalities = frozenset(
        frozenset((term_key(i.left), term_key(i.right)))
        for i in query.inequalities
    )
    comparisons = frozenset(
        (term_key(c.left), term_key(c.right), c.strict)
        for c in query.comparisons
    )
    return (head, atoms, inequalities, comparisons)


def schema_signature(query: ConjunctiveQuery, database: Database) -> Tuple:
    """Summary of the relations the query reads, at order-of-magnitude grain.

    Includes each referenced relation's arity and the bit length of its
    cardinality: a cached plan survives small data changes but is re-derived
    when a relation roughly doubles or halves, which is when the cost
    model's verdict could flip.
    """
    names = sorted({atom.relation for atom in query.atoms})
    parts = []
    for name in names:
        relation = database[name]
        parts.append((name, relation.arity, relation.cardinality.bit_length()))
    return tuple(parts)


def plan_cache_key(query: ConjunctiveQuery, database: Database) -> Tuple:
    """The full plan-cache key: query shape + schema summary."""
    return (shape_signature(query), schema_signature(query, database))
