"""Structural analysis of conjunctive queries for the adaptive planner.

The paper's dichotomy — evaluation is intractable in combined complexity in
general (Theorem 1: W[1]-complete for parameters q and v) but polynomial for
acyclic queries (§5) — is a *planning* decision: detect the structure, then
dispatch to the engine whose tractability guarantee applies.  This module is
the detection half.  It classifies a :class:`ConjunctiveQuery` into one of
the engine's structural classes:

``acyclic``
    GYO-reducible hypergraph, no constraint atoms — Yannakakis territory.
``acyclic-inequalities``
    Acyclic relational core plus ≠ atoms — the paper's Theorem 2 island
    (FPT in the number of inequalities).
``bounded-treewidth``
    Cyclic, but a heuristic tree decomposition of the primal graph has
    width ≤ the planner's threshold — the bounded-treewidth generalization
    of acyclicity from the literature that followed the paper.
``bounded-variables``
    Cyclic and wide, but with fewer distinct atom variable sets than atoms,
    so Theorem 1's parameter-v grouping shrinks the query before the
    generic algorithm runs.
``general``
    Everything else (including any query with < / ≤ atoms) — the n^O(q)
    backtracking baseline.

The module also defines the two cache-key signatures: a *shape* signature
that canonicalizes variable names and erases constant values (so a
parameterized query hits the same plan for every constant binding), and a
*schema* signature summarizing the relations the query touches (so a plan
is re-derived when the data changes scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import NotAcyclicError
from ..hypergraph.join_tree import JoinTree
from ..hypergraph.treewidth import TreeDecomposition, tree_decomposition
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Variable
from ..relational.database import Database

ACYCLIC = "acyclic"
ACYCLIC_NEQ = "acyclic-inequalities"
BOUNDED_TREEWIDTH = "bounded-treewidth"
BOUNDED_VARIABLES = "bounded-variables"
GENERAL = "general"

STRUCTURAL_CLASSES = (
    ACYCLIC,
    ACYCLIC_NEQ,
    BOUNDED_TREEWIDTH,
    BOUNDED_VARIABLES,
    GENERAL,
)

#: Default width bound under which a cyclic query is still treated as
#: tractable via its tree decomposition (bag materialization is n^(w+1)).
DEFAULT_TREEWIDTH_THRESHOLD = 3


@dataclass(frozen=True)
class StructuralAnalysis:
    """Everything the planner needs to know about a query's structure."""

    structural_class: str
    acyclic: bool
    join_tree: Optional[JoinTree]
    decomposition: Optional[TreeDecomposition]
    width: Optional[int]
    num_atoms: int
    num_variables: int
    query_size: int
    num_inequalities: int
    num_comparisons: int
    distinct_variable_sets: int
    #: Per-atom variable names (position order) of the analyzed query.  The
    #: join tree and decomposition above name these variables; an α-renamed
    #: shape twin served by the same cached plan must not reuse them (see
    #: :func:`variable_layout`), since bags/edges are matched by name.
    variable_layout: Tuple[Tuple[str, ...], ...] = ()

    def summary(self) -> str:
        """One line for ``explain`` output."""
        shape = "acyclic (GYO)" if self.acyclic else (
            f"cyclic, decomposition width {self.width}"
        )
        constraints = ""
        if self.num_inequalities:
            constraints += f", {self.num_inequalities} inequality atom(s)"
        if self.num_comparisons:
            constraints += f", {self.num_comparisons} comparison atom(s)"
        return (
            f"{self.num_atoms} atom(s), {self.num_variables} variable(s), "
            f"q={self.query_size}; {shape}{constraints}"
        )


def variable_layout(query: ConjunctiveQuery) -> Tuple[Tuple[str, ...], ...]:
    """Per-atom variable names — the identity under which a cached plan's
    join tree / decomposition remain directly reusable.

    Two same-shape queries that differ only in their *constants* (the
    decision instances of one parameterized query) have equal layouts; an
    α-renamed twin does not, and must rebuild the named structures."""
    return tuple(tuple(v.name for v in atom.variables()) for atom in query.atoms)


def analyze(
    query: ConjunctiveQuery,
    treewidth_threshold: int = DEFAULT_TREEWIDTH_THRESHOLD,
) -> StructuralAnalysis:
    """Classify *query* into the engine's structural classes.

    Pure function of the query (no database): the same analysis is valid
    for every constant binding of the same shape, which is what makes the
    plan cache sound.
    """
    hypergraph = query.hypergraph()
    join_tree: Optional[JoinTree] = None
    decomposition: Optional[TreeDecomposition] = None
    width: Optional[int] = None
    try:
        join_tree = JoinTree.from_hypergraph(hypergraph)
        acyclic = True
    except NotAcyclicError:
        acyclic = False
        decomposition = tree_decomposition(hypergraph, heuristic="min_fill")
        width = decomposition.width

    distinct_variable_sets = len({a.variable_set() for a in query.atoms})

    if query.comparisons:
        structural_class = GENERAL
    elif query.inequalities:
        structural_class = ACYCLIC_NEQ if acyclic else GENERAL
    elif acyclic:
        structural_class = ACYCLIC
    elif width is not None and width <= treewidth_threshold:
        structural_class = BOUNDED_TREEWIDTH
    elif distinct_variable_sets < len(query.atoms):
        structural_class = BOUNDED_VARIABLES
    else:
        structural_class = GENERAL

    return StructuralAnalysis(
        structural_class=structural_class,
        acyclic=acyclic,
        join_tree=join_tree,
        decomposition=decomposition,
        width=width,
        num_atoms=query.num_atoms(),
        num_variables=query.num_variables(),
        query_size=query.query_size(),
        num_inequalities=len(query.inequalities),
        num_comparisons=len(query.comparisons),
        distinct_variable_sets=distinct_variable_sets,
        variable_layout=variable_layout(query),
    )


# ----------------------------------------------------------------------
# Cache-key signatures
# ----------------------------------------------------------------------

_CONST = ("c",)


def shape_signature(query: ConjunctiveQuery) -> Tuple:
    """A canonical, binding-independent key for the query's shape.

    Variables are renamed to their first-occurrence index (head first, then
    body atoms in order) and constants collapse to a positional marker, so
    the decision instances ``Q[t/head]`` of one parameterized query share a
    single signature for every candidate tuple t.  Relation names are kept:
    they determine which cardinalities the cost model reads.
    """
    numbering: Dict[Variable, int] = {}

    def term_key(term) -> Tuple:
        if isinstance(term, Constant):
            return _CONST
        index = numbering.get(term)
        if index is None:
            index = len(numbering)
            numbering[term] = index
        return ("v", index)

    head = tuple(term_key(t) for t in query.head_terms)
    atoms = tuple(
        (atom.relation,) + tuple(term_key(t) for t in atom.terms)
        for atom in query.atoms
    )
    inequalities = frozenset(
        frozenset((term_key(i.left), term_key(i.right)))
        for i in query.inequalities
    )
    comparisons = frozenset(
        (term_key(c.left), term_key(c.right), c.strict)
        for c in query.comparisons
    )
    return (head, atoms, inequalities, comparisons)


def schema_signature(query: ConjunctiveQuery, database: Database) -> Tuple:
    """Summary of the relations the query reads, at order-of-magnitude grain.

    Includes each referenced relation's arity and the bit length of its
    cardinality: a cached plan survives small data changes but is re-derived
    when a relation roughly doubles or halves, which is when the cost
    model's verdict could flip.
    """
    names = sorted({atom.relation for atom in query.atoms})
    parts = []
    for name in names:
        relation = database[name]
        parts.append((name, relation.arity, relation.cardinality.bit_length()))
    return tuple(parts)


def plan_cache_key(query: ConjunctiveQuery, database: Database) -> Tuple:
    """The full plan-cache key: query shape + schema summary."""
    return (shape_signature(query), schema_signature(query, database))
