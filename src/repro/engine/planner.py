"""The structural planner: analysis + cost model → :class:`QueryPlan`.

Dispatch is *structure first, cost second*: the analyzer decides which
tractable class the query falls into (hence which evaluators are sound and
carry a complexity guarantee), and a cardinality-based cost model arbitrates
between the class evaluator and the generic baseline — the baseline's lower
constant factors win on tiny inputs, the guaranteed engine wins as data
grows.

The cost model measures everything in abstract *row operations* and reads
its statistics straight from the PR 1 kernel: relation cardinalities, and
per-column distinct counts taken from the relations' cached single-position
hash indexes (``Relation._index``), so statistics gathered at plan time are
the very indexes the backtracking executor probes later — planning warms
the caches it plans for.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..query.atoms import Atom
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Variable
from ..relational.database import Database
from ..relational.relation import Relation
from .analysis import (
    ACYCLIC,
    ACYCLIC_NEQ,
    BOUNDED_TREEWIDTH,
    BOUNDED_VARIABLES,
    DEFAULT_TREEWIDTH_THRESHOLD,
    StructuralAnalysis,
    analyze,
    counting_mode,
)
from .plan import (
    BOUNDED_VARIABLE,
    INEQUALITY,
    NAIVE,
    QueryPlan,
    TREEWIDTH,
    YANNAKAKIS,
)

#: Per-row constant factor of the semijoin/join passes relative to one
#: backtracking probe (hash build + probe + row assembly vs a dict lookup).
#: A static prior: planners constructed with a *calibration* feed replace
#: it with the ledger's observed per-evaluator unit costs once enough
#: executions have been recorded (see :meth:`Planner._pass_weight`).
_PASS_WEIGHT = 1.5

#: Observed-over-static correction is clamped to this band: calibration
#: tilts arbitration, it must not let one noisy burst of samples swing the
#: model by orders of magnitude.
_CALIBRATION_CLAMP = (0.25, 4.0)

#: Semijoin passes of the acyclic pipeline (bottom-up, top-down, join-up).
_NUM_PASSES = 3

#: The class evaluator is preferred unless the baseline's estimate is this
#: many times cheaper — structural guarantees beat small modelled margins.
_BASELINE_MARGIN = 4.0

#: Largest-input cardinality from which acyclic plans are sharded for the
#: parallel execution layer; below it, sharding overhead beats the win.
DEFAULT_SHARD_THRESHOLD_ROWS = 1024


def default_shard_count() -> int:
    """Shard fan-in matched to the machine: a couple of shards per worker
    (so the pool always has tasks to steal), at least 4 so the
    bucket-centric kernels and empty-partner pruning engage even on
    single-core containers."""
    return max(4, min(16, 2 * (os.cpu_count() or 1)))


class Planner:
    """Turns (query, database) into an explainable :class:`QueryPlan`."""

    def __init__(
        self,
        treewidth_threshold: int = DEFAULT_TREEWIDTH_THRESHOLD,
        shard_threshold_rows: int = DEFAULT_SHARD_THRESHOLD_ROWS,
        shard_count: Optional[int] = None,
        calibration: Optional[Callable[[], Dict[str, float]]] = None,
    ) -> None:
        self.treewidth_threshold = treewidth_threshold
        self.shard_threshold_rows = shard_threshold_rows
        self.shard_count = shard_count or default_shard_count()
        # Zero-argument feed of observed per-evaluator unit costs (the
        # engine wires its ledger's ``observed_unit_costs`` here).  Pulled
        # fresh on every plan, so the model tracks the workload.
        self._calibration = calibration

    def _pass_weight(self) -> float:
        """The semijoin pass weight: calibrated when evidence exists.

        The static :data:`_PASS_WEIGHT` says how expensive the planner
        *assumes* one acyclic-pass row operation is relative to one
        backtracking probe.  When the calibration feed has observed unit
        costs for both sides (p95 latency per modelled row op, from the
        ledger), their ratio replaces the assumption — clamped, so the
        correction tilts arbitration rather than dominating it.  Without
        evidence (fresh engine, injected planner, cold shapes) the static
        prior applies unchanged.
        """
        if self._calibration is None:
            return _PASS_WEIGHT
        units = self._calibration()
        yannakakis_unit = units.get(YANNAKAKIS)
        naive_unit = units.get(NAIVE)
        if not yannakakis_unit or not naive_unit:
            return _PASS_WEIGHT
        low, high = _CALIBRATION_CLAMP
        ratio = min(high, max(low, yannakakis_unit / naive_unit))
        return _PASS_WEIGHT * ratio

    # ------------------------------------------------------------------

    def plan(
        self,
        query: ConjunctiveQuery,
        database: Database,
        observed_rows: Optional[float] = None,
    ) -> QueryPlan:
        """The plan for (query, database).

        *observed_rows*, when given, is an actually observed result
        cardinality for this shape (adaptive re-planning, the second half
        of the cost-model feedback loop): it replaces the simulated
        satisfying-assignment estimate everywhere the cost model consumes
        one, so evaluator arbitration re-runs against what the data said
        rather than what the histogram-free model guessed.
        """
        analysis = analyze(query, self.treewidth_threshold)
        join_order = self.naive_order(query, database)
        naive_cost, answer_estimate = self._simulate_backtracking(
            query, database, join_order
        )
        if observed_rows is not None:
            # Backtracking enumerates at least one search node per result,
            # so an exploded observed cardinality scales the baseline's
            # cost estimate up along with the output term.  The correction
            # is asymmetric: a *collapsed* cardinality does not scale the
            # baseline down — few results still mean exploring the dead
            # branches — while the output-sensitive evaluators (whose cost
            # genuinely is input + output) pick the saving up through the
            # corrected answer estimate.
            ratio = max(observed_rows, 1.0) / max(answer_estimate, 1.0)
            if ratio > 1.0:
                naive_cost *= ratio
            answer_estimate = observed_rows
        costs: Dict[str, float] = {NAIVE: naive_cost}

        structural_class = analysis.structural_class
        evaluator = NAIVE
        program: Tuple[str, ...] = ()

        if structural_class == ACYCLIC:
            costs[YANNAKAKIS] = self._acyclic_cost(query, database, answer_estimate)
            evaluator = self._arbitrate(YANNAKAKIS, costs)
            program = self._semijoin_program(query, analysis)
        elif structural_class == ACYCLIC_NEQ:
            costs[INEQUALITY] = self._inequality_cost(query, database, answer_estimate)
            # No structural preference here: Theorem 2's hash-family factor
            # is exponential in the number of inequalities, so the model
            # picks the cheaper side directly.
            if costs[INEQUALITY] < costs[NAIVE]:
                evaluator = INEQUALITY
            program = self._semijoin_program(query, analysis)
        elif structural_class == BOUNDED_TREEWIDTH:
            treewidth_cost, bag_program = self._treewidth_cost(
                query, database, analysis
            )
            costs[TREEWIDTH] = treewidth_cost
            # Unlike the acyclic case there is no combined-complexity
            # guarantee to defer to — bag materialization is n^O(w) just as
            # backtracking is n^O(q) — so the cheaper estimate wins outright.
            if costs[TREEWIDTH] < costs[NAIVE]:
                evaluator = TREEWIDTH
            program = bag_program
        elif structural_class == BOUNDED_VARIABLES:
            costs[BOUNDED_VARIABLE] = self._grouped_cost(query, database)
            evaluator = self._arbitrate(BOUNDED_VARIABLE, costs)

        return QueryPlan(
            evaluator=evaluator,
            analysis=analysis,
            join_order=join_order,
            semijoin_program=program,
            cost_estimates=costs,
            shard_count=self._shard_decision(evaluator, query, database),
            estimated_rows=answer_estimate,
            count_mode=counting_mode(query, structural_class),
        )

    def _shard_decision(
        self, evaluator: str, query: ConjunctiveQuery, database: Database
    ) -> int:
        """Shard fan-in for the parallel layer, from the data scale.

        The schema signature already tracks each relation's cardinality at
        bit-length grain — the same scale measure decides here: acyclic
        plans whose largest input meets the threshold are sharded
        ``shard_count`` ways (the parallel Yannakakis executor consumes
        this); everything else stays sequential.
        """
        if evaluator != YANNAKAKIS:
            return 1
        largest = max(database[atom.relation].cardinality for atom in query.atoms)
        if largest < self.shard_threshold_rows:
            return 1
        return self.shard_count

    # ------------------------------------------------------------------
    # Statistics (from the kernel's cached indexes)
    # ------------------------------------------------------------------

    @staticmethod
    def _distinct(relation: Relation, position: int) -> int:
        """Distinct values in one column — the bucket count of the cached
        single-position index (built here if absent, reused by execution)."""
        if relation.cardinality == 0:
            return 1
        return max(1, len(relation._index((position,))))

    def _candidate_cardinality(self, atom: Atom, relation: Relation) -> float:
        """Estimated |S_j| = |π_U σ_F (R)| after constant/equality selection."""
        estimate = float(relation.cardinality)
        seen: Dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                estimate /= self._distinct(relation, position)
            elif term in seen:
                estimate /= self._distinct(relation, position)
            else:
                seen[term] = position
        return max(estimate, 1e-3)

    # ------------------------------------------------------------------
    # Backtracking simulation (join order + cost + output estimate)
    # ------------------------------------------------------------------

    def naive_order(
        self, query: ConjunctiveQuery, database: Database
    ) -> Tuple[int, ...]:
        """Greedy cost-based join order: repeatedly take the atom with the
        fewest expected matches per probe given the variables bound so far.

        Connectivity falls out of the estimate — an atom sharing bound
        variables probes a keyed index (few matches), a disconnected atom
        scans its whole candidate set — so cartesian blowups are picked
        last, constants and selective columns first.
        """
        remaining = set(range(len(query.atoms)))
        bound: Set[Variable] = set()
        order: List[int] = []
        while remaining:
            best = min(
                sorted(remaining),
                key=lambda i: (
                    self._expected_matches(
                        query.atoms[i], database[query.atoms[i].relation], bound
                    ),
                    i,
                ),
            )
            remaining.remove(best)
            order.append(best)
            bound |= set(query.atoms[best].variables())
        return tuple(order)

    def _expected_matches(
        self, atom: Atom, relation: Relation, bound: Set[Variable]
    ) -> float:
        """Expected rows per index probe of *atom* given *bound* variables."""
        keyed = 1.0
        seen: Dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                keyed *= self._distinct(relation, position)
            elif term in bound or term in seen:
                keyed *= self._distinct(relation, position)
            else:
                seen[term] = position
        cardinality = max(float(relation.cardinality), 1e-3)
        keyed = min(keyed, cardinality)
        return cardinality / keyed

    def _simulate_backtracking(
        self,
        query: ConjunctiveQuery,
        database: Database,
        order: Sequence[int],
    ) -> Tuple[float, float]:
        """(cost in row ops, estimated satisfying-assignment count)."""
        bound: Set[Variable] = set()
        frontier = 1.0
        cost = 0.0
        for index in order:
            atom = query.atoms[index]
            relation = database[atom.relation]
            matches = self._expected_matches(atom, relation, bound)
            cost += frontier * (1.0 + matches)
            frontier *= matches
            frontier = max(frontier, 1e-3)
            bound |= set(atom.variables())
        return cost, frontier

    # ------------------------------------------------------------------
    # Per-evaluator cost estimates
    # ------------------------------------------------------------------

    def _acyclic_cost(
        self,
        query: ConjunctiveQuery,
        database: Database,
        answer_estimate: float,
    ) -> float:
        total = sum(
            self._candidate_cardinality(atom, database[atom.relation])
            for atom in query.atoms
        )
        return self._pass_weight() * _NUM_PASSES * total + answer_estimate

    def _inequality_cost(
        self,
        query: ConjunctiveQuery,
        database: Database,
        answer_estimate: float,
    ) -> float:
        trials = float(2 ** min(len(query.inequalities), 16))
        return trials * self._acyclic_cost(query, database, answer_estimate)

    def _treewidth_cost(
        self,
        query: ConjunctiveQuery,
        database: Database,
        analysis: StructuralAnalysis,
    ) -> Tuple[float, Tuple[str, ...]]:
        """Bag-materialization + acyclic-pipeline estimate, and the bag
        program for ``explain`` (mirrors TreewidthEvaluator's assignment)."""
        decomposition = analysis.decomposition
        assert decomposition is not None
        assigned: Dict[int, List[int]] = {
            i: [] for i in range(len(decomposition.bags))
        }
        for atom_index, atom in enumerate(query.atoms):
            names = frozenset(v.name for v in atom.variables())
            for i, bag in enumerate(decomposition.bags):
                if names <= {v.name for v in bag}:
                    assigned[i].append(atom_index)
                    break

        cost = 0.0
        bag_sizes: List[float] = []
        program: List[str] = []
        for i, bag in enumerate(decomposition.bags):
            members = assigned[i]
            if not members:
                bag_sizes.append(1.0)
                continue
            sub_order = self.naive_order(
                ConjunctiveQuery(
                    (),
                    [query.atoms[j] for j in members],
                    head_name=query.head_name,
                ),
                database,
            )
            bound: Set[Variable] = set()
            frontier = 1.0
            for local in sub_order:
                atom = query.atoms[members[local]]
                relation = database[atom.relation]
                matches = self._expected_matches(atom, relation, bound)
                cost += frontier * (1.0 + matches)
                frontier *= matches
                frontier = max(frontier, 1e-3)
                bound |= set(atom.variables())
            bag_sizes.append(frontier)
            atoms_text = ", ".join(
                f"a{members[local]}({query.atoms[members[local]].relation})"
                for local in sub_order
            )
            bag_vars = ",".join(sorted(v.name for v in bag))
            program.append(f"materialize BAG_{i}[{bag_vars}] = ⋈ {atoms_text}")
        program.append("run Yannakakis full reducer + join-project over the bag tree")
        cost += self._pass_weight() * _NUM_PASSES * sum(bag_sizes)
        return cost, tuple(program)

    def _grouped_cost(self, query: ConjunctiveQuery, database: Database) -> float:
        """Theorem 1 parameter-v grouping: intersection build + search over
        one representative atom per distinct variable set."""
        groups: Dict[frozenset, List[Atom]] = {}
        for atom in query.atoms:
            groups.setdefault(atom.variable_set(), []).append(atom)
        build = sum(
            self._candidate_cardinality(atom, database[atom.relation])
            for atoms in groups.values()
            for atom in atoms
        )
        representatives = [
            min(
                atoms,
                key=lambda a: database[a.relation].cardinality,
            )
            for atoms in groups.values()
        ]
        grouped = ConjunctiveQuery((), representatives, head_name=query.head_name)
        order = self.naive_order(grouped, database)
        search, _ = self._simulate_backtracking(grouped, database, order)
        return build + search

    # ------------------------------------------------------------------

    @staticmethod
    def _arbitrate(preferred: str, costs: Dict[str, float]) -> str:
        """The class evaluator, unless the baseline is ≥ margin× cheaper."""
        if costs[NAIVE] * _BASELINE_MARGIN < costs[preferred]:
            return NAIVE
        return preferred

    @staticmethod
    def _semijoin_program(
        query: ConjunctiveQuery, analysis: StructuralAnalysis
    ) -> Tuple[str, ...]:
        """The full-reducer schedule read off the join tree."""
        tree = analysis.join_tree
        if tree is None:
            return ()
        steps: List[str] = []
        for node in tree.bottom_up_order():
            parent = tree.parent(node)
            if parent is None:
                continue
            steps.append(
                f"a{parent}({query.atoms[parent].relation}) ⋉ "
                f"a{node}({query.atoms[node].relation})"
            )
        steps.append("top-down pass (reversed), then join-project onto head")
        return tuple(steps)
