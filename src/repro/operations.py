"""The :class:`Operation` request abstraction shared by every facade layer.

Before this module, each new engine capability meant four near-duplicate
method pipelines hand-threaded through :class:`~repro.engine.QueryEngine`,
:class:`~repro.service.QueryService`, the wire protocol, and both protocol
clients.  An :class:`Operation` names the *what* once — an operation kind,
the query it applies to, and an options mapping — so each layer keeps a
single generic ``run()`` / ``run_batch()`` path plus one dispatch table,
and the familiar ``execute`` / ``decide`` / ``explain`` / ``count`` /
``aggregate`` methods become one-line typed wrappers.

Operations are *values*: frozen, hashable, and comparable.  That is
load-bearing — the service keys its single-flight map and micro-batch
collectors on ``(kind, options, database, query)``, and the engine groups
batch members by ``(kind, options, plan-cache key)``, so two requests that
would produce the same answer must compare (and hash) equal.  Options are
therefore stored canonically as a sorted tuple of ``(name, value)`` pairs
with any list values frozen to tuples.

Operation kinds
---------------

``execute``
    Q(d) as a :class:`~repro.relational.relation.Relation`.
``decide``
    Is Q(d) nonempty?  (bool)
``explain``
    The plan rendering, without executing.  (str)
``count``
    \\|Q(d)\\| — the number of distinct answers — without materializing the
    join on the tractable counting classes (see ``docs/aggregation.md``).
    (int)
``aggregate``
    Counting-powered aggregates, selected by the ``mode`` option:
    ``group`` (grouped counts over the ``group_by`` head variables, as a
    relation with a trailing ``count`` column), ``exists`` (bool:
    \\|Q(d)\\| > 0), ``forall`` (bool: every tuple over the head variables'
    candidate domains is an answer), or ``count`` (alias of the ``count``
    kind).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .errors import InvalidOperationError

# Operation kinds (the facade vocabulary, shared by every layer).
EXECUTE = "execute"
DECIDE = "decide"
EXPLAIN = "explain"
COUNT = "count"
AGGREGATE = "aggregate"

OP_KINDS = (EXECUTE, DECIDE, EXPLAIN, COUNT, AGGREGATE)

# Aggregate modes (the ``mode`` option of ``aggregate`` operations).
AGG_COUNT = "count"
AGG_GROUP = "group"
AGG_EXISTS = "exists"
AGG_FORALL = "forall"

AGGREGATE_MODES = (AGG_COUNT, AGG_GROUP, AGG_EXISTS, AGG_FORALL)

#: Option names each kind understands; anything else is rejected loudly.
_ALLOWED_OPTIONS: Dict[str, Tuple[str, ...]] = {
    EXECUTE: ("evaluator",),
    DECIDE: ("evaluator",),
    EXPLAIN: (),
    COUNT: (),
    AGGREGATE: ("mode", "group_by"),
}


def _freeze(value: Any) -> Any:
    """Lists become tuples so option values stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def canonical_options(
    options: Optional[Mapping[str, Any]],
) -> Tuple[Tuple[str, Any], ...]:
    """The canonical (sorted, frozen) option tuple for *options*."""
    if not options:
        return ()
    return tuple(sorted((str(name), _freeze(value)) for name, value in options.items()))


@dataclass(frozen=True)
class Operation:
    """One request: an operation kind, its query, and its options.

    ``query`` is either a :class:`~repro.query.conjunctive.ConjunctiveQuery`
    or rule-notation text — each layer coerces at its own boundary (the
    engine requires objects, the service parses text, the wire carries
    text).  ``options`` is canonicalized through
    :func:`canonical_options`; construct with the helper classmethods or
    pass a plain mapping to :meth:`make`.
    """

    kind: str
    query: Any
    options: Tuple[Tuple[str, Any], ...] = field(default=())

    # -- construction ---------------------------------------------------

    @classmethod
    def make(
        cls, kind: str, query: Any, options: Optional[Mapping[str, Any]] = None
    ) -> "Operation":
        operation = cls(kind, query, canonical_options(options))
        operation.validate()
        return operation

    @classmethod
    def execute(cls, query: Any, evaluator: Optional[str] = None) -> "Operation":
        options = {"evaluator": evaluator} if evaluator is not None else None
        return cls.make(EXECUTE, query, options)

    @classmethod
    def decide(cls, query: Any, evaluator: Optional[str] = None) -> "Operation":
        options = {"evaluator": evaluator} if evaluator is not None else None
        return cls.make(DECIDE, query, options)

    @classmethod
    def explain(cls, query: Any) -> "Operation":
        return cls.make(EXPLAIN, query)

    @classmethod
    def count(cls, query: Any) -> "Operation":
        return cls.make(COUNT, query)

    @classmethod
    def grouped_count(cls, query: Any, group_by: Sequence[str]) -> "Operation":
        return cls.make(
            AGGREGATE, query, {"mode": AGG_GROUP, "group_by": tuple(group_by)}
        )

    @classmethod
    def exists(cls, query: Any) -> "Operation":
        return cls.make(AGGREGATE, query, {"mode": AGG_EXISTS})

    @classmethod
    def forall(cls, query: Any) -> "Operation":
        return cls.make(AGGREGATE, query, {"mode": AGG_FORALL})

    # -- access ---------------------------------------------------------

    def option(self, name: str, default: Any = None) -> Any:
        for key, value in self.options:
            if key == name:
                return value
        return default

    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def with_query(self, query: Any) -> "Operation":
        """The same operation applied to a different query."""
        return Operation(self.kind, query, self.options)

    @property
    def group_key(self) -> Tuple[str, Tuple[Tuple[str, Any], ...]]:
        """What makes two operations batchable together: kind + options."""
        return (self.kind, self.options)

    # -- validation -----------------------------------------------------

    def validate(self) -> None:
        """Reject malformed operations with one typed error.

        Every rejection is an :class:`~repro.errors.InvalidOperationError`
        — a :class:`~repro.errors.QueryError` locally and the stable
        ``invalid_operation`` code on the wire — so engine-local and
        protocol-surfaced callers see the same failure.
        """
        if self.kind not in OP_KINDS:
            raise InvalidOperationError(
                f"unknown operation kind {self.kind!r}; expected one of {OP_KINDS}"
            )
        allowed = _ALLOWED_OPTIONS[self.kind]
        unknown = [name for name, _ in self.options if name not in allowed]
        if unknown:
            raise InvalidOperationError(
                f"{self.kind} operation takes no option(s) {sorted(unknown)}; "
                f"allowed: {sorted(allowed) or 'none'}"
            )
        if self.kind == AGGREGATE:
            mode = self.option("mode")
            if mode not in AGGREGATE_MODES:
                raise InvalidOperationError(
                    f"aggregate needs a 'mode' option in {AGGREGATE_MODES}, "
                    f"got {mode!r}"
                )
            group_by = self.option("group_by")
            if mode == AGG_GROUP:
                if (
                    not isinstance(group_by, tuple)
                    or not group_by
                    or not all(isinstance(name, str) for name in group_by)
                ):
                    raise InvalidOperationError(
                        "aggregate mode 'group' needs a non-empty 'group_by' "
                        "tuple of head variable names"
                    )
                if len(set(group_by)) != len(group_by):
                    raise InvalidOperationError("'group_by' names must be distinct")
            elif group_by is not None:
                raise InvalidOperationError(
                    f"aggregate mode {mode!r} takes no 'group_by'"
                )

    def __repr__(self) -> str:
        options = f", options={dict(self.options)!r}" if self.options else ""
        return f"Operation({self.kind!r}, {self.query!r}{options})"


def operations_of(
    kind: str, queries: Iterable[Any], options: Optional[Mapping[str, Any]] = None
) -> Tuple[Operation, ...]:
    """One *kind* operation per query — the shape the ``*_batch`` shims use."""
    frozen = canonical_options(options)
    out = []
    for query in queries:
        operation = Operation(kind, query, frozen)
        operation.validate()
        out.append(operation)
    return tuple(out)


__all__ = [
    "AGG_COUNT",
    "AGG_EXISTS",
    "AGG_FORALL",
    "AGG_GROUP",
    "AGGREGATE",
    "AGGREGATE_MODES",
    "COUNT",
    "DECIDE",
    "EXECUTE",
    "EXPLAIN",
    "OP_KINDS",
    "Operation",
    "canonical_options",
    "operations_of",
]
