"""Service-side counters: what the front-end adds on top of engine stats.

The engine's ledger (:mod:`repro.engine.stats`) answers "which shapes are
hot and what do they cost"; the service counters answer the questions that
only exist once concurrent callers share one engine: how many requests
were *coalesced* onto an identical in-flight execution, how many rode a
micro-batch instead of executing alone, how deep the admission queue got,
and how wide the widest batch was.  ``QueryService.stats()`` returns both
in one :class:`ServiceStats` snapshot.

All counter mutations happen on the service's event-loop thread (request
admission, batching, and completion bookkeeping are coroutine code), so
the mutable accumulator needs no lock; the engine ledger it is paired
with locks itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.stats import EngineStats


@dataclass(frozen=True)
class ServiceCounters:
    """One consistent snapshot of the front-end's own counters."""

    #: Requests admitted for execution (coalesced requests not included).
    submitted: int
    #: Requests answered by an identical in-flight request (single-flight).
    coalesced: int
    #: Requests that joined a same-shape micro-batch instead of opening one.
    batched: int
    #: Queue items (groups of ≥ 1 request) handed to the worker pool.
    groups: int
    #: Requests completed successfully.
    completed: int
    #: Requests completed with an exception.
    failed: int
    #: High-water mark of the bounded request queue.
    max_queue_depth: int
    #: Widest group dispatched (1 = no batching happened).
    max_group: int

    @property
    def requests(self) -> int:
        """Everything that entered the service, coalesced or not."""
        return self.submitted + self.coalesced


@dataclass(frozen=True)
class ServiceStats:
    """Front-end counters next to the shared engine's snapshot."""

    service: ServiceCounters
    engine: EngineStats

    def summary(self) -> str:
        """Multi-line rendering for logs and the examples."""
        counters = self.service
        head = (
            f"ServiceStats: {counters.requests} request(s) "
            f"({counters.coalesced} coalesced, {counters.batched} batched), "
            f"{counters.groups} group(s) dispatched "
            f"(widest {counters.max_group}), queue depth ≤ "
            f"{counters.max_queue_depth}; {counters.completed} ok, "
            f"{counters.failed} failed"
        )
        return head + "\n" + self.engine.summary()


class MutableCounters:
    """Loop-thread accumulator behind :class:`ServiceCounters`."""

    __slots__ = (
        "submitted",
        "coalesced",
        "batched",
        "groups",
        "completed",
        "failed",
        "max_queue_depth",
        "max_group",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.coalesced = 0
        self.batched = 0
        self.groups = 0
        self.completed = 0
        self.failed = 0
        self.max_queue_depth = 0
        self.max_group = 0

    def snapshot(self) -> ServiceCounters:
        return ServiceCounters(
            submitted=self.submitted,
            coalesced=self.coalesced,
            batched=self.batched,
            groups=self.groups,
            completed=self.completed,
            failed=self.failed,
            max_queue_depth=self.max_queue_depth,
            max_group=self.max_group,
        )
