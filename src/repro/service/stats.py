"""Service-side counters: what the front-end adds on top of engine stats.

The engine's ledger (:mod:`repro.engine.stats`) answers "which shapes are
hot and what do they cost"; the service counters answer the questions that
only exist once concurrent callers share one engine: how many requests
were *coalesced* onto an identical in-flight execution, how many rode a
micro-batch instead of executing alone, how deep the admission queue got,
and how wide the widest batch was.  With the network front-end
(:mod:`repro.protocol`) the service also answers them *per client*: each
connection gets its own :class:`ClientStats` rollup — request counts,
backpressure rejections, and admission-to-completion latency quantiles
from a bounded :class:`~repro.engine.stats.LatencyReservoir` — which is
how the fairness tests observe that a flooding client cannot starve the
polite ones.  ``QueryService.stats()`` returns everything in one
:class:`ServiceStats` snapshot.

All counter mutations happen on the service's event-loop thread (request
admission, batching, and completion bookkeeping are coroutine code), so
the mutable accumulators need no lock; the engine ledger they are paired
with locks itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..engine.stats import EngineStats, LatencyReservoir


@dataclass(frozen=True)
class ServiceCounters:
    """One consistent snapshot of the front-end's own counters."""

    #: Requests admitted for execution (coalesced requests not included).
    submitted: int
    #: Requests answered by an identical in-flight request (single-flight).
    coalesced: int
    #: Requests that joined a same-shape micro-batch instead of opening one.
    batched: int
    #: Queue items (groups of ≥ 1 request) handed to the worker pool.
    groups: int
    #: Requests completed successfully.
    completed: int
    #: Requests completed with an exception.
    failed: int
    #: High-water mark of the bounded request queue.
    max_queue_depth: int
    #: Widest group dispatched (1 = no batching happened).
    max_group: int
    #: Requests rejected at admission (per-client backpressure).
    rejected: int = 0
    #: Requests torn down by cancellation (disconnect, explicit cancel,
    #: last-waiter abandonment).
    cancelled: int = 0
    #: Requests that hit their deadline before completing.
    deadline_exceeded: int = 0

    @property
    def requests(self) -> int:
        """Everything that entered the service, coalesced or not."""
        return self.submitted + self.coalesced


@dataclass(frozen=True)
class ClientStats:
    """Per-client rollup: request counts and completion-latency quantiles.

    Counters here are *as observed by the client*: a coalesced request
    counts for the client that issued it (even though the engine executed
    it once for everyone), and latency runs from admission to the moment
    the client's future resolved.
    """

    client: str
    submitted: int
    coalesced: int
    batched: int
    completed: int
    failed: int
    rejected: int
    p50_seconds: float
    p95_seconds: float

    @property
    def requests(self) -> int:
        return self.submitted + self.coalesced


@dataclass(frozen=True)
class ServiceStats:
    """Front-end counters next to the shared engine's snapshot."""

    service: ServiceCounters
    engine: EngineStats
    clients: Tuple[ClientStats, ...] = field(default_factory=tuple)

    def client(self, name: str) -> ClientStats:
        """The rollup for one client (raises ``KeyError`` when unknown)."""
        for stats in self.clients:
            if stats.client == name:
                return stats
        raise KeyError(name)

    def summary(self) -> str:
        """Multi-line rendering for logs and the examples."""
        counters = self.service
        head = (
            f"ServiceStats: {counters.requests} request(s) "
            f"({counters.coalesced} coalesced, {counters.batched} batched, "
            f"{counters.rejected} rejected), "
            f"{counters.groups} group(s) dispatched "
            f"(widest {counters.max_group}), queue depth ≤ "
            f"{counters.max_queue_depth}; {counters.completed} ok, "
            f"{counters.failed} failed"
        )
        lines = [head]
        for client in self.clients:
            label = client.client or "<anonymous>"
            lines.append(
                f"  client {label}: {client.requests} request(s) "
                f"({client.coalesced} coalesced, {client.rejected} rejected) "
                f"p50={client.p50_seconds * 1e3:.2f}ms "
                f"p95={client.p95_seconds * 1e3:.2f}ms"
            )
        lines.append(self.engine.summary())
        return "\n".join(lines)


class MutableCounters:
    """Loop-thread accumulator behind :class:`ServiceCounters`."""

    __slots__ = (
        "submitted",
        "coalesced",
        "batched",
        "groups",
        "completed",
        "failed",
        "max_queue_depth",
        "max_group",
        "rejected",
        "cancelled",
        "deadline_exceeded",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.coalesced = 0
        self.batched = 0
        self.groups = 0
        self.completed = 0
        self.failed = 0
        self.max_queue_depth = 0
        self.max_group = 0
        self.rejected = 0
        self.cancelled = 0
        self.deadline_exceeded = 0

    def snapshot(self) -> ServiceCounters:
        return ServiceCounters(
            submitted=self.submitted,
            coalesced=self.coalesced,
            batched=self.batched,
            groups=self.groups,
            completed=self.completed,
            failed=self.failed,
            max_queue_depth=self.max_queue_depth,
            max_group=self.max_group,
            rejected=self.rejected,
            cancelled=self.cancelled,
            deadline_exceeded=self.deadline_exceeded,
        )


class MutableClientStats:
    """Loop-thread accumulator behind :class:`ClientStats`."""

    __slots__ = (
        "client",
        "submitted",
        "coalesced",
        "batched",
        "completed",
        "failed",
        "rejected",
        "latencies",
    )

    def __init__(self, client: str) -> None:
        self.client = client
        self.submitted = 0
        self.coalesced = 0
        self.batched = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.latencies = LatencyReservoir(256)

    def record_latency(self, seconds: float, ok: bool) -> None:
        self.latencies.add(seconds)
        if ok:
            self.completed += 1
        else:
            self.failed += 1

    def snapshot(self) -> ClientStats:
        return ClientStats(
            client=self.client,
            submitted=self.submitted,
            coalesced=self.coalesced,
            batched=self.batched,
            completed=self.completed,
            failed=self.failed,
            rejected=self.rejected,
            p50_seconds=self.latencies.quantile(0.5),
            p95_seconds=self.latencies.quantile(0.95),
        )
