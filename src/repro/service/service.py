"""The async query-service front-end: many callers, one shared engine.

Vardi's combined-complexity point — when queries arrive as inputs, the
query side dominates — is the regime a multi-tenant service lives in:
many distinct query *shapes*, endlessly repeated parameterizations.  The
engine already amortizes that shape work (plan cache, warm kernel indexes,
shard partitions), but only for callers who share one engine.
:class:`QueryService` is the sharing layer:

* an ``asyncio`` facade built around one generic ``run`` / ``run_batch``
  pair over :class:`~repro.operations.Operation` values — the typed
  methods (``execute`` / ``decide`` / ``explain`` / ``count`` /
  ``grouped_count`` / ``exists`` / ``forall`` / ``stats``) are one-line
  wrappers — multiplexing every concurrent client onto one thread-safe
  :class:`~repro.engine.QueryEngine`;
* a **bounded request queue** between admission and execution — when all
  dispatchers are busy and the queue is full, new work awaits (natural
  asyncio backpressure) instead of piling up unboundedly;
* **single-flight coalescing** — a request identical to one already in
  flight (same kind, same options, same query, same database) does not
  execute again;
  it awaits the in-flight result, which is safe to share because results
  are immutable relations;
* **micro-batching** — same-shape requests arriving within
  ``batch_window`` seconds collect into one group and run through the
  engine's N-wide batch lifting (``run_batch`` over generic operations),
  turning a flood of single queries into a handful of lifted executions;
* **per-client fairness** — requests tagged with a ``client`` (the
  network front-end of :mod:`repro.protocol` tags every connection) land
  in per-client lanes of a :class:`~repro.service.fairness.FairQueue`
  drained round-robin, so one flooding client cannot starve the rest;
  with ``max_pending_per_client`` set, a client that floods past its
  admitted-but-unfinished budget is *rejected* with a typed
  :class:`~repro.errors.ServiceOverloadedError` instead of wedging the
  queue;
* **typed rejections** — facade methods accept query *text* as well as
  :class:`~repro.query.conjunctive.ConjunctiveQuery` objects; malformed
  text is mapped to :class:`~repro.errors.RequestRejectedError` (code
  ``parse_error``, with the parser's position/line/column in
  ``detail``) instead of leaking a raw parser traceback.

Blocking engine calls run on a service-owned dispatch
:class:`~repro.parallel.pool.WorkerPool`, deliberately separate from the
engine's own pool: the event loop never blocks on query evaluation, and —
because a dispatch thread is not a task of the *engine's* pool — the
sharded intra-query fan-out of ``repro.parallel`` still engages beneath
every service request.

A service instance is bound to the first event loop that uses it; all
internal state (in-flight map, batch collectors, counters) is touched
only from that loop's thread, which is what makes the front-end itself
lock-free — the engine below it carries the thread-safety contracts
(locked plan cache, ledger and runtimes, convergent kernel cache fills;
see ``docs/service.md``).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..engine.analysis import plan_cache_key
from ..engine.engine import QueryEngine
from ..errors import (
    CancelledRequestError,
    DeadlineExceededError,
    ParseError,
    RequestRejectedError,
    ServiceOverloadedError,
)
from ..operations import (
    COUNT,
    DECIDE,
    EXECUTE,
    EXPLAIN,
    Operation,
    operations_of,
)
from ..parallel.pool import THREADS, WorkerPool, default_worker_count
from ..query.conjunctive import ConjunctiveQuery
from ..query.parser import parse_query
from ..relational.database import Database
from ..relational.relation import Relation
from ..resilience.token import CancelToken, activate
from .fairness import ANONYMOUS, FairQueue
from .stats import MutableClientStats, MutableCounters, ServiceStats

#: Queries cross the facade as objects or as rule-notation text.
QueryLike = Union[str, ConjunctiveQuery]

#: Seconds one micro-batch collector stays open for same-shape arrivals.
DEFAULT_BATCH_WINDOW = 0.002

#: Bound of the request queue (groups, each ≥ 1 request).
DEFAULT_MAX_PENDING = 256

#: Largest group one collector may grow to before it flushes early.
DEFAULT_BATCH_LIMIT = 64

#: Most client tags the per-client stats rollup tracks (LRU eviction).
MAX_TRACKED_CLIENTS = 64


class _Group:
    """One queue item: same-shape, same-client requests dispatched together."""

    __slots__ = (
        "kind",
        "options",
        "database",
        "queries",
        "futures",
        "flushed",
        "client",
        "token",
        "abandoned",
    )

    def __init__(
        self,
        kind: str,
        database: Database,
        queries: List[ConjunctiveQuery],
        futures: List["asyncio.Future[Any]"],
        client: str = ANONYMOUS,
        token: Optional[CancelToken] = None,
        options: Tuple[Tuple[str, Any], ...] = (),
    ) -> None:
        self.kind = kind
        #: Canonical option tuple shared by every member (part of the
        #: collector shape — members with different options never mix).
        self.options = options
        self.database = database
        self.queries = queries
        self.futures = futures
        self.flushed = False
        self.client = client
        #: Cancellation/deadline token the dispatcher activates around the
        #: engine call.  ``None`` for plain requests; created lazily when a
        #: fully abandoned group needs tearing down.
        self.token = token
        #: Member futures whose every waiter has left.  The group's
        #: execution is cancelled only once this reaches ``len(futures)``
        #: — the last-waiter rule for coalesced/batched requests.
        self.abandoned = 0


class _Flight:
    """One single-flight entry: the shared future plus its waiter census.

    ``waiters`` counts the callers currently awaiting the future (the
    originator plus coalesced joiners).  A waiter that leaves early —
    client disconnect, explicit cancel, deadline expiry — decrements it;
    when the last one goes, the flight's group is told, and only a fully
    abandoned group cancels the underlying execution.  ``abandoned``
    marks a flight already reported to its group, so a joiner arriving
    after a full abandonment (but before teardown settles the future)
    reclaims it instead of double-counting.
    """

    __slots__ = ("future", "database", "group", "waiters", "abandoned")

    def __init__(self, future: "asyncio.Future[Any]", database: Database) -> None:
        self.future = future
        self.database = database
        self.group: Optional[_Group] = None
        self.waiters = 0
        self.abandoned = False


class QueryService:
    """Async multiplexer of concurrent callers onto one shared engine.

    Parameters
    ----------
    engine:
        The shared engine.  ``None`` constructs one (forwarding
        ``engine_kwargs``) that the service owns and closes.
    batch_window:
        Micro-batching window in seconds; ``0`` disables batching and
        every request dispatches alone.
    max_pending:
        Bound of the request queue (admission backpressure).
    batch_limit:
        A collector flushes early once it holds this many requests.
    dispatchers:
        Number of dispatcher coroutines pulling from the queue (defaults
        to the worker pool's budget) — the cap on concurrently executing
        engine calls.
    max_pending_per_client:
        Admitted-but-unfinished budget per client tag.  ``None`` (the
        default) keeps PR 4's awaiting backpressure for everyone; a bound
        makes the service *reject* a flooding client's excess requests
        with :class:`~repro.errors.ServiceOverloadedError` — the
        structured-error behavior the network front-end needs — while
        polite clients stay unaffected.
    """

    def __init__(
        self,
        engine: Optional[QueryEngine] = None,
        *,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_pending: int = DEFAULT_MAX_PENDING,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        dispatchers: Optional[int] = None,
        max_pending_per_client: Optional[int] = None,
        **engine_kwargs: Any,
    ) -> None:
        if engine is not None and engine_kwargs:
            raise ValueError(
                "pass engine_kwargs only when the service constructs the "
                f"engine; got both an engine and {sorted(engine_kwargs)}"
            )
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {batch_limit}")
        if dispatchers is not None and dispatchers < 1:
            # Zero dispatchers would accept requests that nothing ever
            # serves — fail loudly like the neighbouring guards.
            raise ValueError(f"dispatchers must be >= 1, got {dispatchers}")
        if max_pending_per_client is not None and max_pending_per_client < 1:
            raise ValueError(
                f"max_pending_per_client must be >= 1, got {max_pending_per_client}"
            )
        self._engine = engine if engine is not None else QueryEngine(**engine_kwargs)
        self._owns_engine = engine is None
        # Dispatch runs on a service-owned thread pool, deliberately
        # SEPARATE from the engine's: a dispatch thread blocking on an
        # engine call is not a task *of the engine's pool*, so the
        # engine's re-entrancy guard stays cold and the sharded
        # intra-query fan-out (per-level semijoins, per-member batch
        # execution) still engages beneath the service.  Running dispatch
        # on the engine's own pool would mark its workers in-task and
        # silently serialize every inner map.  No deadlock either way:
        # the two pools' wait graphs are acyclic (dispatch waits on
        # engine workers, never the reverse).
        self._pool = WorkerPool(max(2, default_worker_count()), THREADS)
        self._batch_window = batch_window
        self._max_pending = max_pending
        self._batch_limit = batch_limit
        self._dispatcher_count = dispatchers or self._pool.max_workers
        self._max_pending_per_client = max_pending_per_client
        self._counters = MutableCounters()
        #: client tag → rollup (bounded LRU — connections churn, stats
        #: must not grow without limit).
        self._clients: "OrderedDict[str, MutableClientStats]" = OrderedDict()
        #: client tag → admitted-but-unfinished request count.
        self._client_pending: Dict[str, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["FairQueue[_Group]"] = None
        self._dispatchers: List["asyncio.Task[None]"] = []
        self._background: Set["asyncio.Task[None]"] = set()
        #: key → flight.  The flight's database reference is load-
        #: bearing: keys embed ``id(database)``, and holding the object
        #: for the entry's lifetime guarantees that id cannot be reused
        #: by a different database while a lookup could still hit it.
        self._inflight: Dict[Tuple, _Flight] = {}
        self._collecting: Dict[Tuple, _Group] = {}
        #: Groups created but not yet on the queue — ``aclose`` enqueues
        #: any survivors so no admitted request is ever stranded.
        self._unenqueued: Set[_Group] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    async def run(
        self,
        operation: Operation,
        database: Database,
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> Any:
        """Run one :class:`~repro.operations.Operation` through the shared
        engine — the generic path every typed facade wraps.

        Single-flight coalescing and micro-batching key on the full
        operation (kind *and* options), so two callers issuing the same
        operation share one execution, while operations that differ only
        in options never mix.  *deadline* bounds the request in seconds
        from admission: past it the call raises
        :class:`~repro.errors.DeadlineExceededError` and the underlying
        execution is cooperatively cancelled (unless other waiters still
        ride it).
        """
        operation.validate()
        return await self._submit(
            operation.kind,
            operation.query,
            database,
            client,
            deadline,
            operation.options,
        )

    async def run_batch(
        self,
        operations: Sequence[Operation],
        database: Database,
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> List[Any]:
        """Run an explicit batch of operations (no window wait).

        Operations sharing ``(kind, options)`` dispatch as one group
        through the engine's N-wide batch lifting; a mixed batch splits
        into per-``group_key`` groups submitted concurrently, and results
        come back in input order regardless.
        """
        if not operations:
            return []
        for operation in operations:
            operation.validate()
        slots: Dict[Tuple[str, Tuple], List[int]] = {}
        for index, operation in enumerate(operations):
            slots.setdefault(operation.group_key, []).append(index)
        if len(slots) == 1:
            ((kind, options), _members) = next(iter(slots.items()))
            return await self._submit_group(
                kind,
                [operation.query for operation in operations],
                database,
                client,
                deadline,
                options,
            )
        # Mixed batch: one group per (kind, options), gathered together,
        # answers re-assembled into input order.
        groups = [
            self._submit_group(
                kind,
                [operations[index].query for index in members],
                database,
                client,
                deadline,
                options,
            )
            for (kind, options), members in slots.items()
        ]
        settled = await asyncio.gather(*groups)
        results: List[Any] = [None] * len(operations)
        for members, answers in zip(slots.values(), settled):
            for index, answer in zip(members, answers):
                results[index] = answer
        return results

    async def execute(
        self,
        query: QueryLike,
        database: Database,
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> Relation:
        """Q(d) through the shared engine (single-flight, micro-batched).

        *deadline* bounds the request in seconds from admission: past it
        the call raises :class:`~repro.errors.DeadlineExceededError` and
        the underlying execution is cooperatively cancelled (unless other
        waiters still ride it).  Deadline'd requests skip micro-batch
        collectors — one group, one token, one budget.
        """
        return await self.run(
            Operation(EXECUTE, query), database, client=client, deadline=deadline
        )

    async def decide(
        self,
        query: QueryLike,
        database: Database,
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> bool:
        """Is Q(d) nonempty?  Decision requests micro-batch through the
        engine's decision-only N-wide lifting (``run_batch``)."""
        return await self.run(
            Operation(DECIDE, query), database, client=client, deadline=deadline
        )

    async def explain(
        self,
        query: QueryLike,
        database: Database,
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> str:
        """The engine's plan rendering, without executing (coalesced but
        never batched — explaining is per-query by definition)."""
        return await self.run(
            Operation(EXPLAIN, query), database, client=client, deadline=deadline
        )

    async def count(
        self,
        query: QueryLike,
        database: Database,
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> int:
        """\\|Q(d)\\| through the engine's counting pass (single-flight,
        micro-batched like decisions — counts share the reduction)."""
        return await self.run(
            Operation(COUNT, query), database, client=client, deadline=deadline
        )

    async def grouped_count(
        self,
        query: QueryLike,
        database: Database,
        group_by: Sequence[str],
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> Relation:
        """Grouped answer counts over *group_by* head variables."""
        return await self.run(
            Operation.grouped_count(query, group_by),
            database,
            client=client,
            deadline=deadline,
        )

    async def exists(
        self,
        query: QueryLike,
        database: Database,
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> bool:
        """Is Q(d) nonempty? — the aggregate spelling of ``decide``."""
        return await self.run(
            Operation.exists(query), database, client=client, deadline=deadline
        )

    async def forall(
        self,
        query: QueryLike,
        database: Database,
        *,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
    ) -> bool:
        """Does every tuple over the head variables' candidate domains
        satisfy the query body?  (``count == |domain|``.)"""
        return await self.run(
            Operation.forall(query), database, client=client, deadline=deadline
        )

    async def stats(self) -> ServiceStats:
        """Service counters, per-client rollups, and the engine snapshot."""
        self._ensure_open()
        return ServiceStats(
            service=self._counters.snapshot(),
            engine=self._engine.stats(),
            clients=tuple(record.snapshot() for record in self._clients.values()),
        )

    @property
    def engine(self) -> QueryEngine:
        """The shared engine (one plan cache for every client)."""
        return self._engine

    # ------------------------------------------------------------------
    # Admission: single-flight, then batching, then the bounded queue
    # ------------------------------------------------------------------

    def _coerce_query(self, query: QueryLike, client: str) -> ConjunctiveQuery:
        """Query text → object; failures become typed rejections.

        A raw :class:`ParseError` traceback must not cross the facade —
        remote callers need a stable code plus the parser's coordinates,
        and the rejection is counted per client.
        """
        if isinstance(query, ConjunctiveQuery):
            return query
        if isinstance(query, str):
            try:
                return parse_query(query)
            except ParseError as error:
                self._reject(client)
                raise RequestRejectedError(
                    f"query text rejected: {error}",
                    code="parse_error",
                    position=error.position,
                    line=error.line,
                    column=error.column,
                ) from error
        self._reject(client)
        raise RequestRejectedError(
            "expected a ConjunctiveQuery or rule-notation query text, got "
            f"{type(query).__name__}",
            code="bad_request",
        )

    def _client_stats(self, client: str) -> MutableClientStats:
        """Get-or-create *client*'s rollup (bounded LRU on client tags)."""
        record = self._clients.get(client)
        if record is None:
            if len(self._clients) >= MAX_TRACKED_CLIENTS:
                self._clients.popitem(last=False)
            record = MutableClientStats(client)
            self._clients[client] = record
        else:
            self._clients.move_to_end(client)
        return record

    def _reject(self, client: str) -> None:
        self._counters.rejected += 1
        self._client_stats(client).rejected += 1

    def _check_capacity(self, client: str, count: int = 1) -> None:
        """Per-client admission budget: reject the flood, structurally.

        Only *admitted-but-unfinished* requests count — coalesced waiters
        ride an execution someone else already owns and cost nothing.
        """
        bound = self._max_pending_per_client
        if bound is None:
            return
        pending = self._client_pending.get(client, 0)
        if pending + count > bound:
            self._reject(client)
            raise ServiceOverloadedError(
                f"client {client or 'anonymous'!r} has {pending} pending "
                f"request(s); budget is {bound}",
                client=client,
                pending=pending,
                budget=bound,
            )

    def _track_pending(self, future: "asyncio.Future[Any]", client: str) -> None:
        """Count *future* against *client*'s budget until it resolves."""
        self._client_pending[client] = self._client_pending.get(client, 0) + 1

        def _release(_done: "asyncio.Future[Any]", client: str = client) -> None:
            remaining = self._client_pending.get(client, 0) - 1
            if remaining > 0:
                self._client_pending[client] = remaining
            else:
                self._client_pending.pop(client, None)

        future.add_done_callback(_release)

    async def _await_result(
        self,
        flight: _Flight,
        client: str,
        started: float,
        deadline: Optional[float] = None,
    ) -> Any:
        """Await a flight's (shielded) result as one counted waiter.

        The shield keeps the execution alive for other coalesced waiters
        when *this* caller leaves; the waiter census is what turns "this
        caller left" into "nobody is waiting — cancel the work".  With a
        *deadline*, the wait is also bounded wall-clock from admission:
        the caller gets its :class:`~repro.errors.DeadlineExceededError`
        on time even if the engine is between check-points.
        """
        stats = self._client_stats(client)
        assert self._loop is not None
        flight.waiters += 1
        if flight.abandoned:
            # Rejoining a fully abandoned (but not yet settled) flight:
            # take the abandonment back before it cancels the group.
            flight.abandoned = False
            if flight.group is not None:
                flight.group.abandoned -= 1
        try:
            if deadline is None:
                result = await asyncio.shield(flight.future)
            else:
                # A bare timer that cancels the shield wrapper is several
                # times cheaper per request than ``asyncio.wait_for``
                # (which adds an ``ensure_future`` wrapper and a waiter
                # future on 3.11) — it keeps the no-fault overhead of
                # deadline'd floods in the noise.  Only the wrapper is
                # cancelled; the shared flight future stays alive for
                # coalesced waiters either way.
                remaining = max(0.0, started + deadline - self._loop.time())
                guarded = asyncio.shield(flight.future)
                expired = False

                def _expire() -> None:
                    nonlocal expired
                    if not guarded.done():
                        expired = True
                        guarded.cancel()

                handle = self._loop.call_later(remaining, _expire)
                try:
                    result = await guarded
                except asyncio.CancelledError:
                    if expired:
                        raise asyncio.TimeoutError from None
                    raise
                finally:
                    handle.cancel()
        except asyncio.CancelledError:
            # The caller was cancelled (client disconnect, explicit
            # cancel): leave the flight; the last waiter out tears the
            # execution down.
            self._counters.cancelled += 1
            self._abandon(flight, "client disconnected or cancelled")
            raise
        except asyncio.TimeoutError:
            self._counters.deadline_exceeded += 1
            stats.record_latency(self._loop.time() - started, ok=False)
            self._abandon(flight, "deadline exceeded")
            raise DeadlineExceededError(
                f"deadline of {deadline:g}s exceeded", deadline=deadline
            ) from None
        except BaseException:
            flight.waiters -= 1
            stats.record_latency(self._loop.time() - started, ok=False)
            raise
        flight.waiters -= 1
        stats.record_latency(self._loop.time() - started, ok=True)
        return result

    def _abandon(self, flight: _Flight, reason: str) -> None:
        """One waiter left a flight early; cascade when it was the last."""
        flight.waiters -= 1
        if flight.waiters > 0 or flight.future.done() or flight.abandoned:
            return
        flight.abandoned = True
        group = flight.group
        if group is None:
            return
        group.abandoned += 1
        if group.abandoned >= len(group.futures):
            self._teardown_group(group, reason)

    def _teardown_group(self, group: _Group, reason: str) -> None:
        """Every waiter of every member is gone: stop the group's work.

        Cancels the group's token — a running execution aborts at its
        next evaluator check-point — and, when the group is still waiting
        in the admission queue, removes it outright: the FairQueue slot
        frees immediately and the dead futures settle with a typed error.
        """
        token = group.token
        if token is None:
            token = group.token = CancelToken()
        token.cancel(reason)
        if self._queue is not None and self._queue.purge(
            lambda item: item is group
        ):
            error = CancelledRequestError(
                f"request cancelled: {reason}", reason=reason
            )
            for future in group.futures:
                if not future.done():
                    future.set_exception(error)

    async def _submit(
        self,
        kind: str,
        query: QueryLike,
        database: Database,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
        options: Tuple[Tuple[str, Any], ...] = (),
    ) -> Any:
        self._start_if_needed()
        assert self._loop is not None
        started = self._loop.time()
        query = self._coerce_query(query, client)
        key = (kind, options, id(database), query)
        existing = self._inflight.get(key)
        if existing is not None and existing.group is not None:
            token = existing.group.token
            if token is not None and token.cancelled:
                # The flight's teardown already fired (every waiter left,
                # its token is cancelled) but the dying execution hasn't
                # settled yet.  Rejoining cannot resurrect a cancelled
                # token — the newcomer would inherit a cancellation it
                # never asked for — so treat the entry as gone and start
                # a fresh flight.  ``_retire`` removes entries by future
                # identity, so the dead flight's settle cannot clobber
                # the fresh one's registration.
                existing = None
        if existing is not None:
            # Single-flight: identical request already in flight — await
            # its (immutable, safely shared) result instead of executing.
            # Coalescing crosses client lanes on purpose: the waiter rides
            # an execution someone else owns, so it neither counts against
            # its budget nor occupies a queue slot.  A deadline'd waiter
            # coalesces too: its own wait is bounded either way, and the
            # execution is cancelled only when *every* waiter has left.
            self._counters.coalesced += 1
            self._client_stats(client).coalesced += 1
            return await self._await_result(existing, client, started, deadline)
        self._check_capacity(client)
        future: "asyncio.Future[Any]" = self._loop.create_future()
        flight = _Flight(future, database)
        self._inflight[key] = flight
        self._track_pending(future, client)

        def _retire(done: "asyncio.Future[Any]", key: Tuple = key) -> None:
            # The entry lives until the *execution* completes (not until
            # the originating caller returns): a cancelled originator must
            # not stop later identical requests from coalescing onto the
            # still-running execution.  Reading the exception here also
            # marks it retrieved for the orphan case where every caller
            # was cancelled before the result arrived.
            entry = self._inflight.get(key)
            if entry is not None and entry.future is done:
                del self._inflight[key]
            if not done.cancelled():
                done.exception()

        future.add_done_callback(_retire)
        self._counters.submitted += 1
        self._client_stats(client).submitted += 1
        try:
            await self._route(kind, query, database, future, client, flight, options)
        except asyncio.CancelledError:
            # Caller cancelled during admission: the enqueue (if reached)
            # continues service-owned and the future resolves later for
            # any coalesced waiters — do not poison it.
            raise
        except BaseException as exc:
            # Admission itself failed (e.g. the shape key could not be
            # computed for an unknown relation): the future must carry
            # the error, or every coalesced waiter hangs forever.
            self._counters.failed += 1
            if not future.done():
                future.set_exception(exc)
            raise
        return await self._await_result(flight, client, started, deadline)

    async def _submit_group(
        self,
        kind: str,
        queries: List[QueryLike],
        database: Database,
        client: str = ANONYMOUS,
        deadline: Optional[float] = None,
        options: Tuple[Tuple[str, Any], ...] = (),
    ) -> List[Any]:
        if not queries:
            return []
        self._start_if_needed()
        assert self._loop is not None
        started = self._loop.time()
        coerced = [self._coerce_query(query, client) for query in queries]
        self._check_capacity(client, count=len(coerced))
        futures = [self._loop.create_future() for _ in coerced]
        for future in futures:
            self._track_pending(future, client)
        self._counters.submitted += len(coerced)
        stats = self._client_stats(client)
        stats.submitted += len(coerced)
        group = _Group(
            kind,
            database,
            coerced,
            list(futures),
            client,
            CancelToken(deadline),
            options,
        )
        group.flushed = True  # explicit batches never collect further
        self._unenqueued.add(group)
        await self._put(group)
        try:
            if deadline is None:
                results = list(await asyncio.gather(*futures))
            else:
                remaining = max(0.0, started + deadline - self._loop.time())
                results = list(
                    await asyncio.wait_for(
                        asyncio.gather(
                            *(asyncio.shield(future) for future in futures)
                        ),
                        remaining,
                    )
                )
        except asyncio.CancelledError:
            # Explicit batches have exactly one waiter — tear down now.
            self._counters.cancelled += len(futures)
            self._teardown_group(group, "client disconnected or cancelled")
            raise
        except asyncio.TimeoutError:
            self._counters.deadline_exceeded += len(futures)
            seconds = self._loop.time() - started
            for _ in futures:
                stats.record_latency(seconds, ok=False)
            self._teardown_group(group, "deadline exceeded")
            assert deadline is not None
            raise DeadlineExceededError(
                f"deadline of {deadline:g}s exceeded", deadline=deadline
            ) from None
        except BaseException:
            seconds = self._loop.time() - started
            for _ in futures:
                stats.record_latency(seconds, ok=False)
            raise
        seconds = self._loop.time() - started
        for _ in futures:
            stats.record_latency(seconds, ok=True)
        return results

    async def _route(
        self,
        kind: str,
        query: ConjunctiveQuery,
        database: Database,
        future: "asyncio.Future[Any]",
        client: str = ANONYMOUS,
        flight: Optional[_Flight] = None,
        options: Tuple[Tuple[str, Any], ...] = (),
    ) -> None:
        # Every group carries a (deadline-free) token from birth so that
        # the dispatch closure and the teardown path always see the SAME
        # token: a lazily-created one could be cancelled after dispatch
        # already captured ``None``, silently losing the cancellation.
        # Deadlines stay waiter-side (``_await_result``'s bounded wait) —
        # a deadline'd request batches and coalesces like any other, and
        # its engine work stops via last-waiter abandonment, so deadlines
        # cost none of the sharing the service exists to provide.
        window = self._batch_window
        if window <= 0.0 or kind == EXPLAIN:
            group = _Group(
                kind, database, [query], [future], client, CancelToken(), options
            )
            group.flushed = True
            if flight is not None:
                flight.group = group
            self._unenqueued.add(group)
            await self._put(group)
            return
        # Collectors are client-pure (the client tag is part of the shape
        # key): a group sits in exactly one fairness lane, so a flooding
        # client's batches cannot ride a polite client's admission slot.
        shape = (kind, options, client, id(database), plan_cache_key(query, database))
        group = self._collecting.get(shape)
        if group is not None and not group.flushed:
            group.queries.append(query)
            group.futures.append(future)
            if flight is not None:
                flight.group = group
            self._counters.batched += 1
            self._client_stats(client).batched += 1
            if len(group.queries) >= self._batch_limit:
                await self._flush(shape, group)
            return
        group = _Group(
            kind, database, [query], [future], client, CancelToken(), options
        )
        if flight is not None:
            flight.group = group
        self._unenqueued.add(group)
        self._collecting[shape] = group
        assert self._loop is not None
        flusher = self._loop.create_task(self._flush_later(shape, group, window))
        self._background.add(flusher)
        flusher.add_done_callback(self._background.discard)

    async def _flush_later(self, shape: Tuple, group: _Group, window: float) -> None:
        await asyncio.sleep(window)
        await self._flush(shape, group)

    async def _flush(self, shape: Tuple, group: _Group) -> None:
        """Close a collector and enqueue it (idempotent, loop thread).

        The collector-map entry is removed *before* the (possibly
        blocking) put: the service-owned put task completes even if this
        caller is cancelled at the await, so leaving the entry behind
        would only accumulate dead flushed groups — and a group cancelled
        before its put ran stays recoverable through ``_unenqueued``,
        which ``aclose`` re-enqueues.
        """
        if group.flushed:
            return
        group.flushed = True
        if self._collecting.get(shape) is group:
            del self._collecting[shape]
        await self._put(group)

    async def _put(self, group: _Group) -> None:
        """Enqueue *group*, surviving the caller's cancellation.

        The actual ``queue.put`` runs as a service-owned task: the caller
        awaits it (that is the backpressure), but cancelling the caller —
        a client timeout firing while the queue is full — must not lose a
        group other requests were batched into, so the put itself keeps
        running and completes in the background.
        """
        assert self._queue is not None and self._loop is not None
        put_task = self._loop.create_task(self._enqueue_task(group))
        self._background.add(put_task)
        put_task.add_done_callback(self._background.discard)
        await asyncio.shield(put_task)

    async def _enqueue_task(self, group: _Group) -> None:
        assert self._queue is not None
        await self._queue.put(group, group.client)
        self._unenqueued.discard(group)
        depth = self._queue.qsize()
        if depth > self._counters.max_queue_depth:
            self._counters.max_queue_depth = depth

    # ------------------------------------------------------------------
    # Dispatch: queue → worker pool → engine
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            group = await self._queue.get()
            try:
                await self._run_group(group)
            finally:
                self._queue.task_done()

    async def _run_group(self, group: _Group) -> None:
        self._counters.groups += 1
        if len(group.queries) > self._counters.max_group:
            self._counters.max_group = len(group.queries)
        engine = self._engine
        kind, queries, database = group.kind, group.queries, group.database
        options = group.options
        token = group.token

        def run() -> List[Any]:
            if token is not None:
                # Pre-check before any engine work: a request abandoned
                # or expired while queued costs nothing past this line.
                token.check()
            # One generic dispatch for every kind: the engine's own
            # operation table decides what runs, so a new operation kind
            # needs no change here.
            members = [Operation(kind, query, options) for query in queries]
            with activate(token):
                if len(members) == 1:
                    return [engine.run(members[0], database)]
                return engine.run_batch(members, database)

        try:
            results = await asyncio.wrap_future(self._pool.submit(run))
        except asyncio.CancelledError:
            for future in group.futures:
                if not future.done():
                    future.cancel()
            raise
        except (CancelledRequestError, DeadlineExceededError) as exc:
            # Cooperative teardown, not a failure: deliver the typed
            # error to any waiter still attached.  Waiters that already
            # timed out or left counted themselves (and show up in
            # ``group.abandoned``); count only the others.
            settled = 0
            for future in group.futures:
                if not future.done():
                    future.set_exception(exc)
                    settled += 1
            settled = max(0, settled - group.abandoned)
            if isinstance(exc, DeadlineExceededError):
                self._counters.deadline_exceeded += settled
            else:
                self._counters.cancelled += settled
            return
        except BaseException as exc:  # noqa: BLE001 — delivered to callers
            self._counters.failed += len(group.futures)
            for future in group.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        self._counters.completed += len(group.futures)
        for future, result in zip(group.futures, results):
            if not future.done():
                future.set_result(result)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("QueryService is closed")

    def _start_if_needed(self) -> None:
        self._ensure_open()
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._queue = FairQueue(maxsize=self._max_pending)
            self._dispatchers = [
                loop.create_task(self._dispatch_loop())
                for _ in range(self._dispatcher_count)
            ]
        elif self._loop is not loop:
            raise RuntimeError(
                "QueryService is bound to the event loop that first used "
                "it; create one service per loop"
            )

    async def aclose(self) -> None:
        """Flush collectors, drain the queue, stop dispatchers, release
        owned resources.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None:
            for task in list(self._background):
                task.cancel()
            await asyncio.gather(*self._background, return_exceptions=True)
            # Whatever a cancelled flusher left behind — still-collecting
            # groups, and groups closed but never enqueued — goes onto the
            # queue now, so every admitted request completes.
            for group in list(self._collecting.values()):
                group.flushed = True
            self._collecting.clear()
            for group in list(self._unenqueued):
                group.flushed = True
                await self._put(group)
            assert self._queue is not None
            await self._queue.join()
            for task in self._dispatchers:
                task.cancel()
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
            self._dispatchers = []
        self._pool.close()
        if self._owns_engine:
            self._engine.close()

    async def __aenter__(self) -> "QueryService":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        if self._closed:
            state = "closed"
        else:
            state = "idle" if self._loop is None else "serving"
        return (
            f"QueryService({state}, window={self._batch_window}, "
            f"max_pending={self._max_pending}, "
            f"dispatchers={self._dispatcher_count})"
        )
