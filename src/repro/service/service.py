"""The async query-service front-end: many callers, one shared engine.

Vardi's combined-complexity point — when queries arrive as inputs, the
query side dominates — is the regime a multi-tenant service lives in:
many distinct query *shapes*, endlessly repeated parameterizations.  The
engine already amortizes that shape work (plan cache, warm kernel indexes,
shard partitions), but only for callers who share one engine.
:class:`QueryService` is the sharing layer:

* an ``asyncio`` facade (``execute`` / ``decide`` / ``execute_batch`` /
  ``decide_batch`` / ``explain`` / ``stats``) multiplexing every
  concurrent client onto one thread-safe :class:`~repro.engine.QueryEngine`;
* a **bounded request queue** between admission and execution — when all
  dispatchers are busy and the queue is full, new work awaits (natural
  asyncio backpressure) instead of piling up unboundedly;
* **single-flight coalescing** — a request identical to one already in
  flight (same kind, same query, same database) does not execute again;
  it awaits the in-flight result, which is safe to share because results
  are immutable relations;
* **micro-batching** — same-shape requests arriving within
  ``batch_window`` seconds collect into one group and run through the
  engine's N-wide batch lifting (``execute_batch`` /
  ``decide_batch``), turning a flood of single queries into a handful of
  lifted executions;
* **per-client fairness** — requests tagged with a ``client`` (the
  network front-end of :mod:`repro.protocol` tags every connection) land
  in per-client lanes of a :class:`~repro.service.fairness.FairQueue`
  drained round-robin, so one flooding client cannot starve the rest;
  with ``max_pending_per_client`` set, a client that floods past its
  admitted-but-unfinished budget is *rejected* with a typed
  :class:`~repro.errors.ServiceOverloadedError` instead of wedging the
  queue;
* **typed rejections** — facade methods accept query *text* as well as
  :class:`~repro.query.conjunctive.ConjunctiveQuery` objects; malformed
  text is mapped to :class:`~repro.errors.RequestRejectedError` (code
  ``parse_error``, with the parser's position/line/column in
  ``detail``) instead of leaking a raw parser traceback.

Blocking engine calls run on a service-owned dispatch
:class:`~repro.parallel.pool.WorkerPool`, deliberately separate from the
engine's own pool: the event loop never blocks on query evaluation, and —
because a dispatch thread is not a task of the *engine's* pool — the
sharded intra-query fan-out of ``repro.parallel`` still engages beneath
every service request.

A service instance is bound to the first event loop that uses it; all
internal state (in-flight map, batch collectors, counters) is touched
only from that loop's thread, which is what makes the front-end itself
lock-free — the engine below it carries the thread-safety contracts
(locked plan cache, ledger and runtimes, convergent kernel cache fills;
see ``docs/service.md``).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..engine.analysis import plan_cache_key
from ..engine.engine import QueryEngine
from ..errors import ParseError, RequestRejectedError, ServiceOverloadedError
from ..parallel.pool import THREADS, WorkerPool, default_worker_count
from ..query.conjunctive import ConjunctiveQuery
from ..query.parser import parse_query
from ..relational.database import Database
from ..relational.relation import Relation
from .fairness import ANONYMOUS, FairQueue
from .stats import MutableClientStats, MutableCounters, ServiceStats

#: Queries cross the facade as objects or as rule-notation text.
QueryLike = Union[str, ConjunctiveQuery]

#: Seconds one micro-batch collector stays open for same-shape arrivals.
DEFAULT_BATCH_WINDOW = 0.002

#: Bound of the request queue (groups, each ≥ 1 request).
DEFAULT_MAX_PENDING = 256

#: Largest group one collector may grow to before it flushes early.
DEFAULT_BATCH_LIMIT = 64

#: Most client tags the per-client stats rollup tracks (LRU eviction).
MAX_TRACKED_CLIENTS = 64

EXECUTE = "execute"
DECIDE = "decide"
EXPLAIN = "explain"


class _Group:
    """One queue item: same-shape, same-client requests dispatched together."""

    __slots__ = ("kind", "database", "queries", "futures", "flushed", "client")

    def __init__(
        self,
        kind: str,
        database: Database,
        queries: List[ConjunctiveQuery],
        futures: List["asyncio.Future[Any]"],
        client: str = ANONYMOUS,
    ) -> None:
        self.kind = kind
        self.database = database
        self.queries = queries
        self.futures = futures
        self.flushed = False
        self.client = client


class QueryService:
    """Async multiplexer of concurrent callers onto one shared engine.

    Parameters
    ----------
    engine:
        The shared engine.  ``None`` constructs one (forwarding
        ``engine_kwargs``) that the service owns and closes.
    batch_window:
        Micro-batching window in seconds; ``0`` disables batching and
        every request dispatches alone.
    max_pending:
        Bound of the request queue (admission backpressure).
    batch_limit:
        A collector flushes early once it holds this many requests.
    dispatchers:
        Number of dispatcher coroutines pulling from the queue (defaults
        to the worker pool's budget) — the cap on concurrently executing
        engine calls.
    max_pending_per_client:
        Admitted-but-unfinished budget per client tag.  ``None`` (the
        default) keeps PR 4's awaiting backpressure for everyone; a bound
        makes the service *reject* a flooding client's excess requests
        with :class:`~repro.errors.ServiceOverloadedError` — the
        structured-error behavior the network front-end needs — while
        polite clients stay unaffected.
    """

    def __init__(
        self,
        engine: Optional[QueryEngine] = None,
        *,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_pending: int = DEFAULT_MAX_PENDING,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        dispatchers: Optional[int] = None,
        max_pending_per_client: Optional[int] = None,
        **engine_kwargs: Any,
    ) -> None:
        if engine is not None and engine_kwargs:
            raise ValueError(
                "pass engine_kwargs only when the service constructs the "
                f"engine; got both an engine and {sorted(engine_kwargs)}"
            )
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {batch_limit}")
        if dispatchers is not None and dispatchers < 1:
            # Zero dispatchers would accept requests that nothing ever
            # serves — fail loudly like the neighbouring guards.
            raise ValueError(f"dispatchers must be >= 1, got {dispatchers}")
        if max_pending_per_client is not None and max_pending_per_client < 1:
            raise ValueError(
                f"max_pending_per_client must be >= 1, got {max_pending_per_client}"
            )
        self._engine = engine if engine is not None else QueryEngine(**engine_kwargs)
        self._owns_engine = engine is None
        # Dispatch runs on a service-owned thread pool, deliberately
        # SEPARATE from the engine's: a dispatch thread blocking on an
        # engine call is not a task *of the engine's pool*, so the
        # engine's re-entrancy guard stays cold and the sharded
        # intra-query fan-out (per-level semijoins, per-member batch
        # execution) still engages beneath the service.  Running dispatch
        # on the engine's own pool would mark its workers in-task and
        # silently serialize every inner map.  No deadlock either way:
        # the two pools' wait graphs are acyclic (dispatch waits on
        # engine workers, never the reverse).
        self._pool = WorkerPool(max(2, default_worker_count()), THREADS)
        self._batch_window = batch_window
        self._max_pending = max_pending
        self._batch_limit = batch_limit
        self._dispatcher_count = dispatchers or self._pool.max_workers
        self._max_pending_per_client = max_pending_per_client
        self._counters = MutableCounters()
        #: client tag → rollup (bounded LRU — connections churn, stats
        #: must not grow without limit).
        self._clients: "OrderedDict[str, MutableClientStats]" = OrderedDict()
        #: client tag → admitted-but-unfinished request count.
        self._client_pending: Dict[str, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["FairQueue[_Group]"] = None
        self._dispatchers: List["asyncio.Task[None]"] = []
        self._background: Set["asyncio.Task[None]"] = set()
        #: key → (future, database).  The database reference is load-
        #: bearing: keys embed ``id(database)``, and holding the object
        #: for the entry's lifetime guarantees that id cannot be reused
        #: by a different database while a lookup could still hit it.
        self._inflight: Dict[Tuple, Tuple["asyncio.Future[Any]", Database]] = {}
        self._collecting: Dict[Tuple, _Group] = {}
        #: Groups created but not yet on the queue — ``aclose`` enqueues
        #: any survivors so no admitted request is ever stranded.
        self._unenqueued: Set[_Group] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    async def execute(
        self, query: QueryLike, database: Database, *, client: str = ANONYMOUS
    ) -> Relation:
        """Q(d) through the shared engine (single-flight, micro-batched)."""
        return await self._submit(EXECUTE, query, database, client)

    async def decide(
        self, query: QueryLike, database: Database, *, client: str = ANONYMOUS
    ) -> bool:
        """Is Q(d) nonempty?  Decision requests micro-batch through the
        engine's decision-only N-wide lifting (``decide_batch``)."""
        return await self._submit(DECIDE, query, database, client)

    async def explain(
        self, query: QueryLike, database: Database, *, client: str = ANONYMOUS
    ) -> str:
        """The engine's plan rendering, without executing (coalesced but
        never batched — explaining is per-query by definition)."""
        return await self._submit(EXPLAIN, query, database, client)

    async def execute_batch(
        self,
        queries: Sequence[QueryLike],
        database: Database,
        *,
        client: str = ANONYMOUS,
    ) -> List[Relation]:
        """Evaluate an explicit batch as one group (no window wait)."""
        return await self._submit_group(EXECUTE, list(queries), database, client)

    async def decide_batch(
        self,
        queries: Sequence[QueryLike],
        database: Database,
        *,
        client: str = ANONYMOUS,
    ) -> List[bool]:
        """Decide an explicit batch as one group (no window wait)."""
        return await self._submit_group(DECIDE, list(queries), database, client)

    async def stats(self) -> ServiceStats:
        """Service counters, per-client rollups, and the engine snapshot."""
        self._ensure_open()
        return ServiceStats(
            service=self._counters.snapshot(),
            engine=self._engine.stats(),
            clients=tuple(record.snapshot() for record in self._clients.values()),
        )

    @property
    def engine(self) -> QueryEngine:
        """The shared engine (one plan cache for every client)."""
        return self._engine

    # ------------------------------------------------------------------
    # Admission: single-flight, then batching, then the bounded queue
    # ------------------------------------------------------------------

    def _coerce_query(self, query: QueryLike, client: str) -> ConjunctiveQuery:
        """Query text → object; failures become typed rejections.

        A raw :class:`ParseError` traceback must not cross the facade —
        remote callers need a stable code plus the parser's coordinates,
        and the rejection is counted per client.
        """
        if isinstance(query, ConjunctiveQuery):
            return query
        if isinstance(query, str):
            try:
                return parse_query(query)
            except ParseError as error:
                self._reject(client)
                raise RequestRejectedError(
                    f"query text rejected: {error}",
                    code="parse_error",
                    position=error.position,
                    line=error.line,
                    column=error.column,
                ) from error
        self._reject(client)
        raise RequestRejectedError(
            "expected a ConjunctiveQuery or rule-notation query text, got "
            f"{type(query).__name__}",
            code="bad_request",
        )

    def _client_stats(self, client: str) -> MutableClientStats:
        """Get-or-create *client*'s rollup (bounded LRU on client tags)."""
        record = self._clients.get(client)
        if record is None:
            if len(self._clients) >= MAX_TRACKED_CLIENTS:
                self._clients.popitem(last=False)
            record = MutableClientStats(client)
            self._clients[client] = record
        else:
            self._clients.move_to_end(client)
        return record

    def _reject(self, client: str) -> None:
        self._counters.rejected += 1
        self._client_stats(client).rejected += 1

    def _check_capacity(self, client: str, count: int = 1) -> None:
        """Per-client admission budget: reject the flood, structurally.

        Only *admitted-but-unfinished* requests count — coalesced waiters
        ride an execution someone else already owns and cost nothing.
        """
        bound = self._max_pending_per_client
        if bound is None:
            return
        pending = self._client_pending.get(client, 0)
        if pending + count > bound:
            self._reject(client)
            raise ServiceOverloadedError(
                f"client {client or 'anonymous'!r} has {pending} pending "
                f"request(s); budget is {bound}",
                client=client,
                pending=pending,
                budget=bound,
            )

    def _track_pending(self, future: "asyncio.Future[Any]", client: str) -> None:
        """Count *future* against *client*'s budget until it resolves."""
        self._client_pending[client] = self._client_pending.get(client, 0) + 1

        def _release(_done: "asyncio.Future[Any]", client: str = client) -> None:
            remaining = self._client_pending.get(client, 0) - 1
            if remaining > 0:
                self._client_pending[client] = remaining
            else:
                self._client_pending.pop(client, None)

        future.add_done_callback(_release)

    async def _await_result(
        self, future: "asyncio.Future[Any]", client: str, started: float
    ) -> Any:
        """Await a (shielded) result, recording the client's latency."""
        stats = self._client_stats(client)
        assert self._loop is not None
        try:
            result = await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except BaseException:
            stats.record_latency(self._loop.time() - started, ok=False)
            raise
        stats.record_latency(self._loop.time() - started, ok=True)
        return result

    async def _submit(
        self,
        kind: str,
        query: QueryLike,
        database: Database,
        client: str = ANONYMOUS,
    ) -> Any:
        self._start_if_needed()
        assert self._loop is not None
        started = self._loop.time()
        query = self._coerce_query(query, client)
        key = (kind, id(database), query)
        existing = self._inflight.get(key)
        if existing is not None:
            # Single-flight: identical request already in flight — await
            # its (immutable, safely shared) result instead of executing.
            # Coalescing crosses client lanes on purpose: the waiter rides
            # an execution someone else owns, so it neither counts against
            # its budget nor occupies a queue slot.
            self._counters.coalesced += 1
            self._client_stats(client).coalesced += 1
            return await self._await_result(existing[0], client, started)
        self._check_capacity(client)
        future: "asyncio.Future[Any]" = self._loop.create_future()
        self._inflight[key] = (future, database)
        self._track_pending(future, client)

        def _retire(done: "asyncio.Future[Any]", key: Tuple = key) -> None:
            # The entry lives until the *execution* completes (not until
            # the originating caller returns): a cancelled originator must
            # not stop later identical requests from coalescing onto the
            # still-running execution.  Reading the exception here also
            # marks it retrieved for the orphan case where every caller
            # was cancelled before the result arrived.
            entry = self._inflight.get(key)
            if entry is not None and entry[0] is done:
                del self._inflight[key]
            if not done.cancelled():
                done.exception()

        future.add_done_callback(_retire)
        self._counters.submitted += 1
        self._client_stats(client).submitted += 1
        try:
            await self._route(kind, query, database, future, client)
        except asyncio.CancelledError:
            # Caller cancelled during admission: the enqueue (if reached)
            # continues service-owned and the future resolves later for
            # any coalesced waiters — do not poison it.
            raise
        except BaseException as exc:
            # Admission itself failed (e.g. the shape key could not be
            # computed for an unknown relation): the future must carry
            # the error, or every coalesced waiter hangs forever.
            self._counters.failed += 1
            if not future.done():
                future.set_exception(exc)
            raise
        return await self._await_result(future, client, started)

    async def _submit_group(
        self,
        kind: str,
        queries: List[QueryLike],
        database: Database,
        client: str = ANONYMOUS,
    ) -> List[Any]:
        if not queries:
            return []
        self._start_if_needed()
        assert self._loop is not None
        started = self._loop.time()
        coerced = [self._coerce_query(query, client) for query in queries]
        self._check_capacity(client, count=len(coerced))
        futures = [self._loop.create_future() for _ in coerced]
        for future in futures:
            self._track_pending(future, client)
        self._counters.submitted += len(coerced)
        stats = self._client_stats(client)
        stats.submitted += len(coerced)
        group = _Group(kind, database, coerced, list(futures), client)
        group.flushed = True  # explicit batches never collect further
        self._unenqueued.add(group)
        await self._put(group)
        try:
            results = list(await asyncio.gather(*futures))
        except asyncio.CancelledError:
            raise
        except BaseException:
            seconds = self._loop.time() - started
            for _ in futures:
                stats.record_latency(seconds, ok=False)
            raise
        seconds = self._loop.time() - started
        for _ in futures:
            stats.record_latency(seconds, ok=True)
        return results

    async def _route(
        self,
        kind: str,
        query: ConjunctiveQuery,
        database: Database,
        future: "asyncio.Future[Any]",
        client: str = ANONYMOUS,
    ) -> None:
        window = self._batch_window
        if window <= 0.0 or kind == EXPLAIN:
            group = _Group(kind, database, [query], [future], client)
            group.flushed = True
            self._unenqueued.add(group)
            await self._put(group)
            return
        # Collectors are client-pure (the client tag is part of the shape
        # key): a group sits in exactly one fairness lane, so a flooding
        # client's batches cannot ride a polite client's admission slot.
        shape = (kind, client, id(database), plan_cache_key(query, database))
        group = self._collecting.get(shape)
        if group is not None and not group.flushed:
            group.queries.append(query)
            group.futures.append(future)
            self._counters.batched += 1
            self._client_stats(client).batched += 1
            if len(group.queries) >= self._batch_limit:
                await self._flush(shape, group)
            return
        group = _Group(kind, database, [query], [future], client)
        self._unenqueued.add(group)
        self._collecting[shape] = group
        assert self._loop is not None
        flusher = self._loop.create_task(self._flush_later(shape, group, window))
        self._background.add(flusher)
        flusher.add_done_callback(self._background.discard)

    async def _flush_later(self, shape: Tuple, group: _Group, window: float) -> None:
        await asyncio.sleep(window)
        await self._flush(shape, group)

    async def _flush(self, shape: Tuple, group: _Group) -> None:
        """Close a collector and enqueue it (idempotent, loop thread).

        The collector-map entry is removed *before* the (possibly
        blocking) put: the service-owned put task completes even if this
        caller is cancelled at the await, so leaving the entry behind
        would only accumulate dead flushed groups — and a group cancelled
        before its put ran stays recoverable through ``_unenqueued``,
        which ``aclose`` re-enqueues.
        """
        if group.flushed:
            return
        group.flushed = True
        if self._collecting.get(shape) is group:
            del self._collecting[shape]
        await self._put(group)

    async def _put(self, group: _Group) -> None:
        """Enqueue *group*, surviving the caller's cancellation.

        The actual ``queue.put`` runs as a service-owned task: the caller
        awaits it (that is the backpressure), but cancelling the caller —
        a client timeout firing while the queue is full — must not lose a
        group other requests were batched into, so the put itself keeps
        running and completes in the background.
        """
        assert self._queue is not None and self._loop is not None
        put_task = self._loop.create_task(self._enqueue_task(group))
        self._background.add(put_task)
        put_task.add_done_callback(self._background.discard)
        await asyncio.shield(put_task)

    async def _enqueue_task(self, group: _Group) -> None:
        assert self._queue is not None
        await self._queue.put(group, group.client)
        self._unenqueued.discard(group)
        depth = self._queue.qsize()
        if depth > self._counters.max_queue_depth:
            self._counters.max_queue_depth = depth

    # ------------------------------------------------------------------
    # Dispatch: queue → worker pool → engine
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            group = await self._queue.get()
            try:
                await self._run_group(group)
            finally:
                self._queue.task_done()

    async def _run_group(self, group: _Group) -> None:
        self._counters.groups += 1
        if len(group.queries) > self._counters.max_group:
            self._counters.max_group = len(group.queries)
        engine = self._engine
        kind, queries, database = group.kind, group.queries, group.database

        def run() -> List[Any]:
            if kind == EXECUTE:
                if len(queries) == 1:
                    return [engine.execute(queries[0], database)]
                return engine.execute_batch(queries, database)
            if kind == DECIDE:
                if len(queries) == 1:
                    return [engine.decide(queries[0], database)]
                return engine.decide_batch(queries, database)
            assert kind == EXPLAIN
            return [engine.explain(queries[0], database)]

        try:
            results = await asyncio.wrap_future(self._pool.submit(run))
        except asyncio.CancelledError:
            for future in group.futures:
                if not future.done():
                    future.cancel()
            raise
        except BaseException as exc:  # noqa: BLE001 — delivered to callers
            self._counters.failed += len(group.futures)
            for future in group.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        self._counters.completed += len(group.futures)
        for future, result in zip(group.futures, results):
            if not future.done():
                future.set_result(result)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("QueryService is closed")

    def _start_if_needed(self) -> None:
        self._ensure_open()
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._queue = FairQueue(maxsize=self._max_pending)
            self._dispatchers = [
                loop.create_task(self._dispatch_loop())
                for _ in range(self._dispatcher_count)
            ]
        elif self._loop is not loop:
            raise RuntimeError(
                "QueryService is bound to the event loop that first used "
                "it; create one service per loop"
            )

    async def aclose(self) -> None:
        """Flush collectors, drain the queue, stop dispatchers, release
        owned resources.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None:
            for task in list(self._background):
                task.cancel()
            await asyncio.gather(*self._background, return_exceptions=True)
            # Whatever a cancelled flusher left behind — still-collecting
            # groups, and groups closed but never enqueued — goes onto the
            # queue now, so every admitted request completes.
            for group in list(self._collecting.values()):
                group.flushed = True
            self._collecting.clear()
            for group in list(self._unenqueued):
                group.flushed = True
                await self._put(group)
            assert self._queue is not None
            await self._queue.join()
            for task in self._dispatchers:
                task.cancel()
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
            self._dispatchers = []
        self._pool.close()
        if self._owns_engine:
            self._engine.close()

    async def __aenter__(self) -> "QueryService":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        if self._closed:
            state = "closed"
        else:
            state = "idle" if self._loop is None else "serving"
        return (
            f"QueryService({state}, window={self._batch_window}, "
            f"max_pending={self._max_pending}, "
            f"dispatchers={self._dispatcher_count})"
        )
