"""Per-client fairness on the admission queue: round-robin lane drain.

PR 4's bounded ``asyncio.Queue`` is globally FIFO — fine while every
caller is an in-process coroutine of one application, wrong the moment
the network front-end (:mod:`repro.protocol`) multiplexes *independent*
clients onto the service: one client pipelining hundreds of requests
fills the FIFO and every other client's next request queues behind the
entire flood.  :class:`FairQueue` keeps the same interface surface the
service uses (``put`` / ``get`` / ``task_done`` / ``join`` / ``qsize``)
but partitions pending items into per-client *lanes* and drains them
round-robin: each ``get`` serves the next lane in rotation, so a polite
client's request waits for at most one group per active lane, not for
the flood.

The queue inherits the service's threading model: it is touched only from
the event-loop thread, so there are no locks — waiters are plain
``asyncio`` futures, exactly like ``asyncio.Queue`` itself.

Admission *capacity* stays global (``maxsize`` groups across all lanes —
the natural-backpressure bound), while admission *order* becomes fair.
Per-client rejection (the flood answer the wire protocol needs) lives one
layer up in :class:`~repro.service.QueryService`, which bounds each
client's admitted-but-unfinished requests and rejects the excess with
:class:`~repro.errors.ServiceOverloadedError`.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from typing import Deque, Generic, Optional, Tuple, TypeVar

T = TypeVar("T")

#: Lane key for requests that carry no client tag (in-process callers).
ANONYMOUS = ""


class FairQueue(Generic[T]):
    """A bounded multi-lane queue drained round-robin across lanes.

    ``put(item, client)`` appends to *client*'s lane (awaiting while the
    queue is at ``maxsize`` — global backpressure); ``get()`` pops from
    the lane at the head of the rotation and sends that lane to the back,
    so K active lanes are served 1/K each regardless of how unevenly they
    fill.  Within one lane, order stays FIFO.  ``task_done``/``join``
    follow the ``asyncio.Queue`` contract the service's drain logic
    relies on.
    """

    def __init__(self, maxsize: int = 0) -> None:
        self._maxsize = maxsize
        self._lanes: "OrderedDict[str, Deque[T]]" = OrderedDict()
        self._rotation: Deque[str] = deque()
        self._size = 0
        self._unfinished = 0
        self._getters: Deque["asyncio.Future[None]"] = deque()
        self._putters: Deque["asyncio.Future[None]"] = deque()
        self._finished: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def qsize(self) -> int:
        """Items currently queued across every lane."""
        return self._size

    def pending_for(self, client: str) -> int:
        """Items currently queued in *client*'s lane."""
        lane = self._lanes.get(client)
        return len(lane) if lane is not None else 0

    def lanes(self) -> Tuple[str, ...]:
        """Client keys with at least one queued item, in rotation order."""
        return tuple(self._rotation)

    def empty(self) -> bool:
        return self._size == 0

    def full(self) -> bool:
        return self._maxsize > 0 and self._size >= self._maxsize

    # ------------------------------------------------------------------
    # Waiter plumbing (the asyncio.Queue pattern: wake one, re-check)
    # ------------------------------------------------------------------

    @staticmethod
    def _wake_next(waiters: Deque["asyncio.Future[None]"]) -> None:
        while waiters:
            waiter = waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                break

    async def _wait(self, waiters: Deque["asyncio.Future[None]"]) -> None:
        waiter: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        waiters.append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            waiter.cancel()
            try:
                waiters.remove(waiter)
            except ValueError:
                pass
            # If this waiter was already woken, its wake-up token must
            # pass to the next in line or a slot/item goes unserved.
            if not waiter.cancelled():
                self._wake_next(waiters)
            raise

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    async def put(self, item: T, client: str = ANONYMOUS) -> None:
        """Append *item* to *client*'s lane, awaiting while full."""
        while self.full():
            await self._wait(self._putters)
        self.put_nowait(item, client)

    def put_nowait(self, item: T, client: str = ANONYMOUS) -> None:
        """Append without waiting; raises ``asyncio.QueueFull`` when full."""
        if self.full():
            raise asyncio.QueueFull
        lane = self._lanes.get(client)
        if lane is None:
            lane = deque()
            self._lanes[client] = lane
        if not lane:
            self._rotation.append(client)
        lane.append(item)
        self._size += 1
        self._unfinished += 1
        if self._finished is not None:
            self._finished.clear()
        self._wake_next(self._getters)

    async def get(self) -> T:
        """Pop from the lane at the head of the rotation (round-robin)."""
        while self._size == 0:
            await self._wait(self._getters)
        client = self._rotation.popleft()
        lane = self._lanes[client]
        item = lane.popleft()
        if lane:
            self._rotation.append(client)  # back of the rotation: fairness
        else:
            del self._lanes[client]
        self._size -= 1
        self._wake_next(self._putters)
        return item

    def purge(self, predicate) -> int:
        """Remove queued items matching *predicate*; return how many.

        The cancellation path: a group whose every waiter has left must
        free its admission slot *now*, not when a dispatcher eventually
        reaches it.  Purged items count as finished (no ``task_done``
        will ever come for them) and their slots wake blocked putters.
        """
        removed = 0
        for client in list(self._lanes):
            lane = self._lanes[client]
            kept: Deque[T] = deque(
                item for item in lane if not predicate(item)
            )
            dropped = len(lane) - len(kept)
            if not dropped:
                continue
            removed += dropped
            if kept:
                self._lanes[client] = kept
            else:
                del self._lanes[client]
                try:
                    self._rotation.remove(client)
                except ValueError:
                    pass
        if removed:
            self._size -= removed
            self._unfinished -= removed
            if self._unfinished == 0 and self._finished is not None:
                self._finished.set()
            for _ in range(removed):
                self._wake_next(self._putters)
        return removed

    def task_done(self) -> None:
        if self._unfinished <= 0:
            raise ValueError("task_done() called more times than items queued")
        self._unfinished -= 1
        if self._unfinished == 0 and self._finished is not None:
            self._finished.set()

    async def join(self) -> None:
        """Wait until every queued item has been fetched *and* completed."""
        if self._unfinished == 0:
            return
        if self._finished is None:
            self._finished = asyncio.Event()
        self._finished.clear()
        await self._finished.wait()

    def __repr__(self) -> str:
        return (
            f"FairQueue(size={self._size}, lanes={len(self._lanes)}, "
            f"maxsize={self._maxsize})"
        )


__all__ = ["ANONYMOUS", "FairQueue"]
