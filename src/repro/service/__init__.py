"""Async query-service front-end over one shared :class:`QueryEngine`.

The production-service layer the ROADMAP's north star asks for: concurrent
callers multiplex onto one engine — one plan cache, one stats ledger, one
set of warm kernel indexes and shard partitions — through an ``asyncio``
facade with a bounded request queue, single-flight coalescing of identical
in-flight queries, and micro-batching of same-shape requests into the
engine's N-wide batch lifting.  See ``docs/service.md``.
"""

from .fairness import ANONYMOUS, FairQueue
from .service import (
    DEFAULT_BATCH_LIMIT,
    DEFAULT_BATCH_WINDOW,
    DEFAULT_MAX_PENDING,
    MAX_TRACKED_CLIENTS,
    QueryService,
)
from .stats import ClientStats, ServiceCounters, ServiceStats

__all__ = [
    "ANONYMOUS",
    "ClientStats",
    "DEFAULT_BATCH_LIMIT",
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_MAX_PENDING",
    "FairQueue",
    "MAX_TRACKED_CLIENTS",
    "QueryService",
    "ServiceCounters",
    "ServiceStats",
]
