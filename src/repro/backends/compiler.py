"""The CQ→SQL compiler behind every pushdown backend.

A conjunctive query compiles to one flat ``SELECT DISTINCT`` join: each
relational atom becomes a table alias ``a0, a1, ...`` in the ``FROM``
clause, repeated variables become equality predicates against the column
of the variable's first occurrence, constants become ``= ?`` parameters,
and inequality atoms become ``<>`` predicates.  The head projects the
bound columns (aliased ``o0..``); a boolean head compiles to ``EXISTS``.

The load-bearing trick is *what the tables hold*: not raw values but the
process-wide value-pool codes of :mod:`repro.relational.columns`.  Code
equality is exactly Python value equality — ``1``/``True``/``1.0`` share
one code, distinct NaN objects get distinct codes — so SQL ``=`` / ``<>``
/ ``DISTINCT`` over the code columns reproduce the frozenset-of-rows
kernel semantics bit-for-bit, with none of SQL's own equality quirks
(``NULL ≠ NULL``, ``NaN`` → ``NULL``, 64-bit integer overflow) ever in
play.  The flip side: codes carry no order, so comparison atoms (``<`` /
``<=``) are outside the fragment and raise
:class:`~repro.errors.SqlCompilationError` — as do zero-arity atoms
(no columns to join on) and unhashable constants (not poolable).

Constants stay *raw values* in :class:`CompiledSql.params`; the adapter
encodes them through the pool at bind time, so the compiler itself is
backend- and process-state-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import SqlCompilationError
from ..query.conjunctive import ConjunctiveQuery
from ..query.terms import Constant, Term, Variable


@dataclass(frozen=True)
class CompiledSql:
    """One query's SQL forms, shared by the execute/decide/count kinds.

    ``select_sql`` is ``None`` for boolean heads (nothing to project —
    adapters answer ``execute`` through ``exists_sql``).  Each statement
    binds its own parameter tuple of *raw* constant values, in placeholder
    order; adapters pool-encode them at bind time.
    """

    select_sql: Optional[str]
    select_params: Tuple[Any, ...]
    exists_sql: str
    exists_params: Tuple[Any, ...]
    count_sql: str
    count_params: Tuple[Any, ...]
    head_arity: int

    @property
    def head_attributes(self) -> Tuple[str, ...]:
        return tuple(f"o{i}" for i in range(self.head_arity))


def quote_identifier(name: str) -> str:
    """*name* as a double-quoted SQL identifier."""
    return '"' + name.replace('"', '""') + '"'


def compile_query(
    query: ConjunctiveQuery,
    table_names: Optional[Mapping[str, str]] = None,
) -> CompiledSql:
    """Compile *query* against *table_names* (relation → physical table).

    With no mapping, relation names are quoted verbatim — the *logical*
    rendering ``explain`` shows; adapters pass their physical table map.
    Raises :class:`~repro.errors.SqlCompilationError` when the query lies
    outside the pushdown fragment.
    """
    if query.comparisons:
        raise SqlCompilationError(
            "order comparisons (< / <=) are outside the pushdown fragment: "
            "pool codes are equality-only"
        )
    resolve = _resolver(table_names)
    column_of: Dict[Variable, str] = {}
    from_items: List[str] = []
    where: List[str] = []
    where_params: List[Any] = []
    for index, atom in enumerate(query.atoms):
        if not atom.terms:
            raise SqlCompilationError(
                f"zero-arity atom {atom!r} has no columns to compile"
            )
        alias = f"a{index}"
        from_items.append(f"{resolve(atom.relation)} AS {alias}")
        for position, term in enumerate(atom.terms):
            column = f"{alias}.c{position}"
            if isinstance(term, Constant):
                where.append(f"{column} = ?")
                where_params.append(term.value)
            elif term in column_of:
                where.append(f"{column} = {column_of[term]}")
            else:
                column_of[term] = column
    for inequality in query.inequalities:
        sides: List[str] = []
        for term in (inequality.left, inequality.right):
            sides.append(_operand(term, column_of, where_params))
        where.append(f"{sides[0]} <> {sides[1]}")

    body = " FROM " + ", ".join(from_items)
    if where:
        body += " WHERE " + " AND ".join(where)
    exists_sql = f"SELECT EXISTS(SELECT 1{body})"

    select_items: List[str] = []
    head_params: List[Any] = []
    for position, term in enumerate(query.head_terms):
        if isinstance(term, Constant):
            select_items.append(f"? AS o{position}")
            head_params.append(term.value)
        else:
            select_items.append(f"{column_of[term]} AS o{position}")
    if select_items:
        select_sql: Optional[str] = (
            "SELECT DISTINCT " + ", ".join(select_items) + body
        )
        select_params = tuple(head_params) + tuple(where_params)
        count_sql = f"SELECT COUNT(*) FROM ({select_sql})"
        count_params = select_params
    else:
        # Boolean head: the answer set is {()} or {}; EXISTS *is* the
        # count (0/1) and decides execution too.
        select_sql = None
        select_params = ()
        count_sql = exists_sql
        count_params = tuple(where_params)

    return CompiledSql(
        select_sql=select_sql,
        select_params=select_params,
        exists_sql=exists_sql,
        exists_params=tuple(where_params),
        count_sql=count_sql,
        count_params=count_params,
        head_arity=len(query.head_terms),
    )


def _resolver(
    table_names: Optional[Mapping[str, str]],
) -> Callable[[str], str]:
    if table_names is None:
        return quote_identifier

    def resolve(relation: str) -> str:
        physical = table_names.get(relation)
        if physical is None:
            raise SqlCompilationError(
                f"relation {relation!r} has no backend table (zero-arity "
                "relations are not loaded)"
            )
        return physical

    return resolve


def _operand(
    term: Term, column_of: Mapping[Variable, str], params: List[Any]
) -> str:
    if isinstance(term, Constant):
        params.append(term.value)
        return "?"
    column = column_of.get(term)
    if column is None:
        # Unreachable for validated queries (range restriction), kept as a
        # typed failure rather than a KeyError for direct compiler callers.
        raise SqlCompilationError(f"inequality variable {term!r} unbound by body")
    return column


__all__ = ["CompiledSql", "compile_query", "quote_identifier"]
