"""Native-vs-pushdown arbitration from observed latencies.

The planner's cost model prices the *native* evaluators; it has no prior
for an external SQL engine, and none would survive contact — which side
wins depends on data shape, database size, and how warm SQLite's own
planner is.  So the engine measures instead of modeling:
:class:`PushdownArbiter` keeps one latency reservoir pair per
``(plan-cache key, channel)`` — channel ∈ execute/decide/count — and

1. *explores*: the first call of a shape runs native, the second runs the
   backend, so both arms get a measurement without any cold-start bias
   toward either;
2. *exploits*: with both arms measured, each call takes the lower median;
3. *re-probes*: every :data:`PROBE_STRIDE`-th call runs the current loser
   anyway, so a drifting workload (data growth, warmed caches) can flip
   the decision back.

Shapes outside the pushdown fragment — and shapes whose pushdown ever
raises :class:`~repro.errors.BackendError` — are marked unsupported and
never probed again.  Backend latencies live *only* here: they never feed
the engine's shape ledger or plan runtimes, so the planner's
observed-unit-cost calibration stays a pure native signal.
"""

from __future__ import annotations

import threading
from collections import deque
from statistics import median
from typing import Any, Dict, Optional, Tuple

from ..errors import SqlCompilationError
from ..query.conjunctive import ConjunctiveQuery
from .base import SqlBackend

#: Dispatch decisions (also the arm names in stats snapshots).
NATIVE = "native"
BACKEND = "backend"

#: Every PROBE_STRIDE-th call of a settled shape re-measures the loser.
PROBE_STRIDE = 16

#: Latency samples kept per (shape, channel, arm).
RESERVOIR = 64


class _Arm:
    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: deque = deque(maxlen=RESERVOIR)

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self.samples)

    def median(self) -> Optional[float]:
        if not self.samples:
            return None
        return median(self.samples)


class _Channel:
    __slots__ = ("native", "backend", "calls")

    def __init__(self) -> None:
        self.native = _Arm()
        self.backend = _Arm()
        self.calls = 0


class PushdownArbiter:
    """Per-shape, per-channel native-vs-backend choice (thread-safe)."""

    def __init__(self, backend: SqlBackend, probe_stride: int = PROBE_STRIDE) -> None:
        self._backend = backend
        self._probe_stride = max(2, probe_stride)
        self._lock = threading.Lock()
        self._channels: Dict[Tuple[Any, str], _Channel] = {}
        #: plan key -> False once compilation failed or pushdown errored.
        self._supported: Dict[Any, bool] = {}
        self._reasons: Dict[Any, str] = {}

    @property
    def backend(self) -> SqlBackend:
        return self._backend

    # -- eligibility ----------------------------------------------------

    def supports(self, key: Any, query: ConjunctiveQuery) -> bool:
        """Is the shape pushdown-eligible?  (Compile-checked once per key.)"""
        with self._lock:
            known = self._supported.get(key)
        if known is not None:
            return known
        try:
            self._backend.sql_for(query)
        except SqlCompilationError as exc:
            with self._lock:
                self._supported[key] = False
                self._reasons[key] = str(exc)
            return False
        with self._lock:
            self._supported.setdefault(key, True)
            return self._supported[key]

    def mark_failed(self, key: Any, reason: str) -> None:
        """Pushdown errored at runtime: never choose the backend again."""
        with self._lock:
            self._supported[key] = False
            self._reasons[key] = reason

    # -- choice + measurement -------------------------------------------

    def choose(self, key: Any, channel: str) -> str:
        """Which arm should serve this call?  (Counts the call.)"""
        with self._lock:
            entry = self._channels.setdefault((key, channel), _Channel())
            entry.calls += 1
            if not entry.native.count:
                return NATIVE
            if not entry.backend.count:
                return BACKEND
            native = entry.native.median()
            backend = entry.backend.median()
            winner = BACKEND if backend < native else NATIVE
            if entry.calls % self._probe_stride == 0:
                return NATIVE if winner == BACKEND else BACKEND
            return winner

    def record(self, key: Any, channel: str, arm: str, seconds: float) -> None:
        with self._lock:
            entry = self._channels.setdefault((key, channel), _Channel())
            (entry.native if arm == NATIVE else entry.backend).record(seconds)

    # -- rendering ------------------------------------------------------

    def snapshot(self) -> Dict[Tuple[Any, str], Dict[str, Any]]:
        """Per (shape, channel) medians/sample counts, for ``stats``."""
        out: Dict[Tuple[Any, str], Dict[str, Any]] = {}
        with self._lock:
            for (key, channel), entry in self._channels.items():
                out[(key, channel)] = {
                    "calls": entry.calls,
                    "native_median": entry.native.median(),
                    "native_samples": entry.native.count,
                    "backend_median": entry.backend.median(),
                    "backend_samples": entry.backend.count,
                    "supported": self._supported.get(key, True),
                }
        return out

    def describe(self, key: Any, query: ConjunctiveQuery) -> str:
        """The ``explain`` pushdown section for one shape."""
        if not self.supports(key, query):
            with self._lock:
                reason = self._reasons.get(key, "outside the pushdown fragment")
            return f"  pushdown : {self._backend.name} ineligible — {reason}"
        lines = [f"  pushdown : {self._backend.name} eligible"]
        with self._lock:
            for channel in ("execute", "decide", "count"):
                entry = self._channels.get((key, channel))
                if entry is None or not entry.calls:
                    continue
                lines.append(
                    f"    {channel:<7}: calls={entry.calls} "
                    f"native={_fmt(entry.native)} backend={_fmt(entry.backend)}"
                )
        compiled = self._backend.sql_for(query)
        sql = compiled.select_sql or compiled.exists_sql
        lines.append(f"  sql      : {sql}")
        return "\n".join(lines)


def _fmt(arm: _Arm) -> str:
    value = arm.median()
    if value is None:
        return "unmeasured"
    return f"{value * 1e3:.3f}ms/{arm.count}"


__all__ = ["BACKEND", "NATIVE", "PROBE_STRIDE", "PushdownArbiter"]
