"""The optional DuckDB pushdown adapter, gated on the driver's presence.

DuckDB is not a repo dependency; this module imports it lazily and
:class:`DuckDbBackend` raises a typed
:class:`~repro.errors.BackendUnavailableError` at construction when the
driver is missing, so importing :mod:`repro.backends` never fails and
callers can probe :func:`duckdb_available` before wiring it in.  The
adapter itself is the same :class:`~.dbapi.DbApiBackend` machinery as
SQLite — DuckDB's DBAPI accepts the identical ``?``-parameterized
statements, BIGINT code columns included.
"""

from __future__ import annotations

from typing import Any, Tuple

from ..errors import BackendUnavailableError
from .dbapi import DbApiBackend

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb as _duckdb
except ImportError:  # pragma: no cover
    _duckdb = None


def duckdb_available() -> bool:
    """Is the DuckDB driver importable in this process?"""
    return _duckdb is not None


class DuckDbBackend(DbApiBackend):
    """SQL pushdown through DuckDB (optional dependency)."""

    name = "duckdb"

    def __init__(self, path: str = ":memory:") -> None:
        if _duckdb is None:
            raise BackendUnavailableError(
                "duckdb is not installed; use SqliteBackend or install the "
                "duckdb driver"
            )
        super().__init__()
        self._path = path

    def _connect(self) -> Any:
        return _duckdb.connect(self._path)

    def _driver_errors(self) -> Tuple[type, ...]:
        return (_duckdb.Error,)


__all__ = ["DuckDbBackend", "duckdb_available"]
