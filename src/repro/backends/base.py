"""The backend driver interface and the answer canonicalization contract.

A :class:`SqlBackend` executes whole :class:`~repro.operations.Operation`\\ s
against an independent SQL engine — the pushdown side of the engine's
native-vs-pushdown dispatch, and the oracle side of the differential
harness.  Adapters (``sqlite3`` in-process, DuckDB optional) implement
``load``/``execute``/``decide``/``count``; this base class supplies the
generic ``run``/``run_batch`` dispatch every other layer of the repo uses,
plus compile-based capability probing.

Canonicalization contract (``docs/backends.md``)
------------------------------------------------

Backend tables store value-pool *codes*, so a backend answer row decodes
each code to its pool representative — the first value interned for that
equality class.  Native answers select original row objects instead.  The
two spellings always compare ``==`` (that is the pool invariant), but they
may differ observably: where a database holds ``1`` and ``True`` (equal,
one code), the native row may spell the value ``True`` while the backend
spells the representative.  :func:`canonical_row` maps any row onto the
representative spelling, making engine and backend answers *identical*,
not merely equal — which is what the differential harness compares, and
what any byte-level result comparison must apply first.  NaN follows pool
semantics too: distinct NaN objects are distinct values (distinct codes),
one NaN object equals itself — exactly frozenset/dict membership
semantics, and the backend reproduces it because codes travel, not
floats.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from ..errors import BackendError, SqlCompilationError
from ..operations import (
    AGG_COUNT,
    AGG_EXISTS,
    AGGREGATE,
    COUNT,
    DECIDE,
    EXECUTE,
    Operation,
)
from ..query.conjunctive import ConjunctiveQuery
from ..relational.columns import VALUES
from ..relational.database import Database
from ..relational.relation import Relation
from .compiler import CompiledSql, compile_query


class SqlBackend:
    """Driver interface every pushdown adapter implements.

    Subclasses provide ``load`` plus the three typed entry points; the
    base class turns them into the generic operation surface.  A backend
    answers an operation *entirely* or raises :class:`BackendError` —
    there are no partial/hybrid answers, which is what lets the engine
    treat any backend failure as "run natively instead".
    """

    #: Short adapter name, shown in ``explain`` pushdown lines.
    name = "sql"

    # -- adapter surface ------------------------------------------------

    def load(self, database: Database) -> None:
        """Materialize *database* as backend tables (idempotent)."""
        raise NotImplementedError

    def execute(self, query: ConjunctiveQuery, database: Database) -> Relation:
        """Q(d) with attributes ``o0..``, rows in representative spelling."""
        raise NotImplementedError

    def decide(self, query: ConjunctiveQuery, database: Database) -> bool:
        raise NotImplementedError

    def count(self, query: ConjunctiveQuery, database: Database) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release driver resources (idempotent)."""

    # -- capability probing ---------------------------------------------

    def sql_for(self, query: ConjunctiveQuery) -> CompiledSql:
        """The logical compilation of *query* (``explain``'s rendering)."""
        return compile_query(query)

    def supports(self, query: ConjunctiveQuery) -> bool:
        """Does *query* lie inside the pushdown fragment?"""
        try:
            compile_query(query)
        except SqlCompilationError:
            return False
        return True

    # -- the generic operation surface ----------------------------------

    def run(self, operation: Operation, database: Database) -> Any:
        """Serve one operation natively, or raise :class:`BackendError`.

        ``execute``/``decide``/``count`` push down directly; ``aggregate``
        modes ``count``/``exists`` are the same two statements.  Forced
        evaluators, ``explain``, and the remaining aggregate modes are
        engine business and raise.
        """
        kind = operation.kind
        if kind in (EXECUTE, DECIDE):
            if operation.option("evaluator") is not None:
                raise BackendError(
                    "operations forcing a native evaluator are not pushdown-"
                    "eligible"
                )
            method = self.execute if kind == EXECUTE else self.decide
            return method(operation.query, database)
        if kind == COUNT:
            return self.count(operation.query, database)
        if kind == AGGREGATE:
            mode = operation.option("mode")
            if mode == AGG_COUNT:
                return self.count(operation.query, database)
            if mode == AGG_EXISTS:
                return self.decide(operation.query, database)
            raise BackendError(
                f"aggregate mode {mode!r} is not pushdown-eligible"
            )
        raise BackendError(f"operation kind {kind!r} is not pushdown-eligible")

    def run_batch(
        self, operations: Sequence[Operation], database: Database
    ) -> List[Any]:
        return [self.run(operation, database) for operation in operations]

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "SqlBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Canonicalization helpers (the differential harness's comparison basis)
# ----------------------------------------------------------------------


def canonical_value(value: Any) -> Any:
    """The pool representative of *value*'s equality class.

    Interns on first sight, so the representative is stable for the rest
    of the process — calling this on both sides of a comparison is what
    makes ``1`` vs ``True`` vs ``1.0`` spellings literally identical.
    """
    return VALUES.decode(VALUES.encode(value))


def canonical_row(row: Sequence[Any]) -> Tuple[Any, ...]:
    return tuple(canonical_value(value) for value in row)


def canonical_rows(rows: Iterable[Sequence[Any]]) -> frozenset:
    return frozenset(canonical_row(row) for row in rows)


def canonical_relation(relation: Relation) -> Relation:
    """*relation* with every value in representative spelling."""
    return Relation._from_frozen(relation.attributes, canonical_rows(relation.rows))


__all__ = [
    "SqlBackend",
    "canonical_relation",
    "canonical_row",
    "canonical_rows",
    "canonical_value",
]
