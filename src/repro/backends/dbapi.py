"""Shared DBAPI adapter machinery behind the concrete SQL backends.

:class:`DbApiBackend` implements the whole :class:`~.base.SqlBackend`
surface over an abstract ``_connect()``: loading a
:class:`~repro.relational.database.Database` into code-valued tables,
compiling against the physical table map, binding constants as pool
codes, and decoding result codes back to pool representatives.  Concrete
adapters (:mod:`repro.backends.sqlite`, :mod:`repro.backends.duckdb`)
supply a connection and the driver's error types — nothing else.

Loading
-------

Each database loads once per backend, keyed by object identity
(``Database`` is unhashable by design).  Every relation of arity ≥ 1
becomes one table ``d<n>_r<m>(c0 BIGINT, ...)`` holding the relation's
pool-code columns (:meth:`Relation._code_column` — the same arrays the
native kernel runs on), with one single-column index per attribute so
the SQL planner can drive joins.  Zero-arity relations are skipped;
queries referencing them fail compilation and fall back to native.
A :mod:`weakref` finalizer drops the tables when the database object is
collected, so long-lived backends do not accumulate dead tables.

Concurrency: one lock serializes every statement — DBAPI connections are
not generally thread-safe, and the engine may call a backend from pool
threads.  Pushdown is for shapes where the SQL engine wins wholesale;
serializing it keeps the adapter trivially correct.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Dict, Optional, Tuple

from ..errors import BackendError, SqlCompilationError
from ..query.conjunctive import ConjunctiveQuery
from ..relational.columns import VALUES
from ..relational.database import Database
from ..relational.relation import Relation
from .base import SqlBackend
from .compiler import CompiledSql, compile_query


class _LoadedDatabase:
    """Physical table names of one loaded database + identity witness."""

    __slots__ = ("tables", "ref")

    def __init__(self, tables: Dict[str, str], ref: "weakref.ref") -> None:
        self.tables = tables
        self.ref = ref


class DbApiBackend(SqlBackend):
    """Everything adapter-generic; subclasses provide the connection."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._connection: Optional[Any] = None
        self._loaded: Dict[int, _LoadedDatabase] = {}
        self._sequence = 0

    # -- driver hooks ---------------------------------------------------

    def _connect(self) -> Any:
        raise NotImplementedError

    def _driver_errors(self) -> Tuple[type, ...]:
        """Driver exception types wrapped into :class:`BackendError`."""
        return (Exception,)

    # -- connection + loading -------------------------------------------

    def _conn(self) -> Any:
        if self._connection is None:
            self._connection = self._connect()
        return self._connection

    def load(self, database: Database) -> Dict[str, str]:
        """Ensure *database* is materialized; returns its table map."""
        with self._lock:
            entry = self._loaded.get(id(database))
            if entry is not None and entry.ref() is database:
                return entry.tables
            connection = self._conn()
            prefix = f"d{self._sequence}"
            self._sequence += 1
            tables: Dict[str, str] = {}
            try:
                for number, name in enumerate(database.names()):
                    relation = database[name]
                    if relation.arity == 0:
                        continue
                    table = f"{prefix}_r{number}"
                    columns = ", ".join(
                        f"c{p} BIGINT" for p in range(relation.arity)
                    )
                    connection.execute(f"CREATE TABLE {table} ({columns})")
                    self._insert(connection, table, relation)
                    for p in range(relation.arity):
                        connection.execute(
                            f"CREATE INDEX {table}_i{p} ON {table} (c{p})"
                        )
                    tables[name] = table
            except self._driver_errors() as exc:
                raise BackendError(
                    f"{self.name} backend failed loading database: {exc}"
                ) from exc
            entry = _LoadedDatabase(tables, weakref.ref(database))
            # The finalizer must not reference *database* itself, or it
            # would never become collectable; id() is the eviction key.
            weakref.finalize(database, self._evict, id(database))
            self._loaded[id(database)] = entry
            return entry.tables

    @staticmethod
    def _insert(connection: Any, table: str, relation: Relation) -> None:
        if not relation.rows:
            return
        columns = [relation._code_column(p) for p in range(relation.arity)]
        placeholders = ", ".join("?" for _ in columns)
        connection.executemany(
            f"INSERT INTO {table} VALUES ({placeholders})",
            list(zip(*columns)),
        )

    def _evict(self, database_id: int) -> None:
        with self._lock:
            entry = self._loaded.pop(database_id, None)
            if entry is None or self._connection is None:
                return
            try:
                for table in entry.tables.values():
                    self._connection.execute(f"DROP TABLE IF EXISTS {table}")
            except Exception:
                # Finalizer context: the connection may already be closed.
                pass

    @property
    def loaded_databases(self) -> int:
        """How many databases currently hold tables (tests/diagnostics)."""
        with self._lock:
            return len(self._loaded)

    # -- execution ------------------------------------------------------

    def _prepare(
        self, query: ConjunctiveQuery, database: Database
    ) -> CompiledSql:
        for atom in query.atoms:
            database[atom.relation]  # SchemaError on unknown names, as native
        return compile_query(query, table_names=self.load(database))

    def _fetch_value(self, sql: str, params: Tuple[Any, ...]) -> Any:
        bound = self._bind(params)
        with self._lock:
            try:
                cursor = self._conn().execute(sql, bound)
                return cursor.fetchone()[0]
            except self._driver_errors() as exc:
                raise BackendError(f"{self.name} backend failed: {exc}") from exc

    @staticmethod
    def _bind(params: Tuple[Any, ...]) -> Tuple[int, ...]:
        try:
            return tuple(VALUES.encode(value) for value in params)
        except TypeError as exc:
            raise SqlCompilationError(
                f"unhashable constant cannot be pool-encoded: {exc}"
            ) from exc

    def execute(self, query: ConjunctiveQuery, database: Database) -> Relation:
        compiled = self._prepare(query, database)
        if compiled.select_sql is None:
            nonempty = bool(self._fetch_value(compiled.exists_sql, compiled.exists_params))
            rows = frozenset([()]) if nonempty else frozenset()
            return Relation._from_frozen((), rows)
        bound = self._bind(compiled.select_params)
        with self._lock:
            try:
                cursor = self._conn().execute(compiled.select_sql, bound)
                fetched = cursor.fetchall()
            except self._driver_errors() as exc:
                raise BackendError(f"{self.name} backend failed: {exc}") from exc
        decode = VALUES.decode
        return Relation._from_frozen(
            compiled.head_attributes,
            frozenset(tuple(decode(code) for code in row) for row in fetched),
        )

    def decide(self, query: ConjunctiveQuery, database: Database) -> bool:
        compiled = self._prepare(query, database)
        return bool(self._fetch_value(compiled.exists_sql, compiled.exists_params))

    def count(self, query: ConjunctiveQuery, database: Database) -> int:
        compiled = self._prepare(query, database)
        return int(self._fetch_value(compiled.count_sql, compiled.count_params))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._loaded.clear()
            if self._connection is not None:
                try:
                    self._connection.close()
                finally:
                    self._connection = None


__all__ = ["DbApiBackend"]
