"""The in-process ``sqlite3`` pushdown adapter (stdlib, always available).

An in-memory SQLite database per backend instance by default; pass a
path to persist tables across processes (codes are process-local, so a
persisted file is only meaningful within one process lifetime — it
exists for inspection, not for sharing).

``check_same_thread=False`` plus the :class:`~.dbapi.DbApiBackend` lock
makes the adapter safe to call from the engine's pool threads.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Tuple

from .dbapi import DbApiBackend


class SqliteBackend(DbApiBackend):
    """SQL pushdown through the standard library's ``sqlite3``."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:") -> None:
        super().__init__()
        self._path = path

    def _connect(self) -> Any:
        connection = sqlite3.connect(self._path, check_same_thread=False)
        # One round-trip per statement; the adapter never needs
        # transactional batching beyond executemany's implicit one.
        connection.isolation_level = None
        return connection

    def _driver_errors(self) -> Tuple[type, ...]:
        return (sqlite3.Error,)


__all__ = ["SqliteBackend"]
