"""SQL pushdown backends: one driver interface, many engines.

The CQ version of the many-adapters-one-driver shape: a
:class:`~.base.SqlBackend` executes whole operations against an
independent SQL engine over tables of value-pool codes, the
:mod:`~.compiler` turns conjunctive queries into single-statement
``SELECT DISTINCT`` / ``EXISTS`` / ``COUNT`` pushdowns, and the
:class:`~.dispatch.PushdownArbiter` lets
``QueryEngine(backend=SqliteBackend())`` choose native-vs-pushdown per
shape from observed latencies.  See ``docs/backends.md``.
"""

from .base import (
    SqlBackend,
    canonical_relation,
    canonical_row,
    canonical_rows,
    canonical_value,
)
from .compiler import CompiledSql, compile_query
from .dbapi import DbApiBackend
from .dispatch import BACKEND, NATIVE, PushdownArbiter
from .duckdb import DuckDbBackend, duckdb_available
from .sqlite import SqliteBackend

__all__ = [
    "BACKEND",
    "CompiledSql",
    "DbApiBackend",
    "DuckDbBackend",
    "NATIVE",
    "PushdownArbiter",
    "SqlBackend",
    "SqliteBackend",
    "canonical_relation",
    "canonical_row",
    "canonical_rows",
    "canonical_value",
    "compile_query",
    "duckdb_available",
]
