"""Loading and saving databases (CSV directories and JSON documents).

A :class:`~repro.relational.database.Database` round-trips through:

* a *directory of CSV files*, one ``<relation>.csv`` per relation with a
  header row of attribute names — the interchange format for external
  datasets;
* a single *JSON document* — convenient for fixtures and examples.

Values are strings or numbers.  CSV cells are parsed back as ``int`` when
they look like integers (the common case for the paper's workloads) and
kept as strings otherwise; JSON preserves types natively.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import SchemaError
from .database import Database
from .relation import Relation

PathLike = Union[str, Path]


def _parse_cell(cell: str) -> Any:
    text = cell
    if text and (text.isdigit() or (text[0] == "-" and text[1:].isdigit())):
        return int(text)
    return text


def save_database_csv(database: Database, directory: PathLike) -> None:
    """Write one ``<name>.csv`` per relation into *directory* (created)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for name in database.names():
        relation = database[name]
        with open(root / f"{name}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(relation.attributes)
            for row in sorted(relation.rows, key=repr):
                writer.writerow(row)


def load_database_csv(directory: PathLike) -> Database:
    """Read every ``*.csv`` in *directory* as a relation (header = schema)."""
    root = Path(directory)
    if not root.is_dir():
        raise SchemaError(f"not a directory: {root}")
    relations: Dict[str, Relation] = {}
    for path in sorted(root.glob("*.csv")):
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(f"{path.name}: missing header row") from None
            rows = [tuple(_parse_cell(c) for c in row) for row in reader]
        relations[path.stem] = Relation.from_rows(tuple(header), rows)
    if not relations:
        raise SchemaError(f"no .csv files in {root}")
    return Database(relations)


def database_to_json(database: Database) -> str:
    """Serialize to a JSON document (attributes + rows per relation)."""
    document = {
        "relations": {
            name: {
                "attributes": list(database[name].attributes),
                "rows": [list(row) for row in sorted(database[name].rows, key=repr)],
            }
            for name in database.names()
        },
        "domain": sorted(database.domain(), key=repr),
    }
    return json.dumps(document, indent=2, default=str)


def database_from_json(text: str) -> Database:
    """Inverse of :func:`database_to_json`.

    The domain is restored only when every declared value is JSON-representable
    verbatim; otherwise the active domain is used.
    """
    document = json.loads(text)
    if "relations" not in document:
        raise SchemaError("JSON document lacks a 'relations' key")
    relations: Dict[str, Relation] = {}
    for name, payload in document["relations"].items():
        relations[name] = Relation.from_rows(
            tuple(payload["attributes"]),
            (tuple(row) for row in payload["rows"]),
        )
    database = Database(relations)
    declared = document.get("domain")
    if declared is not None:
        try:
            return Database(relations, domain=declared)
        except SchemaError:
            return database  # lossy domain (e.g. stringified values)
    return database


def save_database_json(database: Database, path: PathLike) -> None:
    """Write :func:`database_to_json` output to *path*."""
    Path(path).write_text(database_to_json(database))


def load_database_json(path: PathLike) -> Database:
    """Read a database from a JSON file."""
    return database_from_json(Path(path).read_text())
