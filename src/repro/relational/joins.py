"""Join algorithm implementations: hash join and sort-merge join.

:meth:`Relation.natural_join` uses a hash join internally; this module
exposes both a hash join and the sort-merge join the paper mentions in the
Theorem 2 cost analysis ("the joins of Step 2 can be performed, for example,
by sorting the two relations on the join attributes and merging"), plus a
pluggable dispatch used by the ablation benchmarks.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, List, Tuple

from ..errors import SchemaError
from .attributes import positions_of
from .relation import Relation, Row

JoinAlgorithm = Callable[[Relation, Relation], Relation]


def shared_attributes(left: Relation, right: Relation) -> Tuple[str, ...]:
    """Attributes common to both relations, in *left*'s column order."""
    right_set = set(right.attributes)
    return tuple(a for a in left.attributes if a in right_set)


def hash_join(left: Relation, right: Relation) -> Relation:
    """Natural join via hashing the smaller side on the shared attributes.

    Expected time O(|left| + |right| + |output|).  Whichever side is
    smaller becomes the build side; rows are always emitted directly in
    left-major column order (left's attributes, then right's extras), so no
    post-join projection is ever needed.
    """
    if len(right) <= len(left):
        # Relation.natural_join builds its hash table on the right operand.
        return left.natural_join(right)

    # Left is smaller: build on it directly and probe with right's rows,
    # still emitting ``left_row + right_extras``.
    shared = shared_attributes(left, right)
    if not shared:
        return left.natural_join(right)  # Cartesian product
    left_set = set(left.attributes)
    right_set = set(right.attributes)
    if left_set <= right_set and right_set <= left_set:
        return left.intersection(right)

    left_pos = positions_of(left.attributes, shared)
    right_pos = positions_of(right.attributes, shared)
    extra = tuple(a for a in right.attributes if a not in left_set)
    extra_pos = positions_of(right.attributes, extra)

    # Code-keyed build and probe: pool codes are global, so left's bucket
    # codes and right's per-row key codes name the same keys.
    buckets = left._code_buckets(left_pos)
    if len(extra_pos) == 1:
        (ep,) = extra_pos
        suffix_of = lambda row: (row[ep],)  # noqa: E731
    elif not extra_pos:
        suffix_of = lambda row: ()  # noqa: E731
    else:
        suffix_of = itemgetter(*extra_pos)

    out: List[Row] = []
    append = out.append
    for row, code in zip(right._row_order(), right._key_codes(right_pos)):
        bucket = buckets.get(code)
        if bucket:
            suffix = suffix_of(row)
            for left_row in bucket:
                append(left_row + suffix)
    return Relation._from_frozen(left.attributes + extra, frozenset(out))


def sort_merge_join(left: Relation, right: Relation) -> Relation:
    """Natural join by sorting both sides on the shared attributes and merging.

    Time O(N log N + |output|) where N is the total input size — the bound
    used in the paper's accounting for Algorithm 1.  Heterogeneous values
    are ordered by a decoration: numbers (bool/int/float, whose cross-type
    equality and hashing Python guarantees) sort by value under a common
    tag, everything else by ``(type name, repr)``.  Each row is decorated
    exactly once before the merge, and the merge loop compares only the
    precomputed decorations; within a run of equal decorations, rows are
    matched on their *actual* key values, so repr collisions cannot produce
    spurious matches, and ``True``/``1``/``1.0`` join exactly as they do
    under :func:`hash_join`.  (Exotic cross-type equality outside the
    numeric tower — a custom class equal to a str, say — can still land in
    different runs; hash_join is the reference for such values.)
    """
    shared = shared_attributes(left, right)
    if not shared:
        return left.natural_join(right)  # Cartesian product

    left_pos = positions_of(left.attributes, shared)
    right_pos = positions_of(right.attributes, shared)
    extra = tuple(a for a in right.attributes if a not in set(left.attributes))
    extra_pos = positions_of(right.attributes, extra)

    def decorate(key: Row) -> Tuple:
        # "#num" sorts before all type names, and numeric values compare
        # across bool/int/float — so equal numbers share a decoration run.
        return tuple(
            ("#num", v)
            if isinstance(v, (bool, int, float))
            else (type(v).__name__, repr(v))
            for v in key
        )

    # Decorate once: (decorated key, raw key, payload) triples, sorted on
    # the decoration.  Right payloads are the pre-extracted extra columns.
    left_items: List[Tuple[Tuple, Row, Row]] = sorted(
        (
            (decorate(key), key, row)
            for row in left.rows
            for key in (tuple(row[p] for p in left_pos),)
        ),
        key=itemgetter(0),
    )
    right_items: List[Tuple[Tuple, Row, Row]] = sorted(
        (
            (decorate(key), key, tuple(row[p] for p in extra_pos))
            for row in right.rows
            for key in (tuple(row[p] for p in right_pos),)
        ),
        key=itemgetter(0),
    )

    out: List[Row] = []
    i = j = 0
    n_left, n_right = len(left_items), len(right_items)
    while i < n_left and j < n_right:
        left_dec = left_items[i][0]
        right_dec = right_items[j][0]
        if left_dec < right_dec:
            i += 1
        elif left_dec > right_dec:
            j += 1
        else:
            # Collect the equal-decoration runs on both sides.
            i_end = i
            while i_end < n_left and left_items[i_end][0] == left_dec:
                i_end += 1
            j_end = j
            while j_end < n_right and right_items[j_end][0] == left_dec:
                j_end += 1
            # Within the runs, match on the raw keys (repr-collision-safe).
            by_key: Dict[Row, List[Row]] = {}
            for li in range(i, i_end):
                by_key.setdefault(left_items[li][1], []).append(left_items[li][2])
            for rj in range(j, j_end):
                rows_for_key = by_key.get(right_items[rj][1])
                if rows_for_key:
                    suffix = right_items[rj][2]
                    for left_row in rows_for_key:
                        out.append(left_row + suffix)
            i, j = i_end, j_end

    return Relation._from_frozen(left.attributes + extra, frozenset(out))


#: Named registry used by the ablation benchmarks.
JOIN_ALGORITHMS: Dict[str, JoinAlgorithm] = {
    "hash": hash_join,
    "sort_merge": sort_merge_join,
}


def get_join_algorithm(name: str) -> JoinAlgorithm:
    """Look up a join algorithm by name; raises SchemaError if unknown."""
    try:
        return JOIN_ALGORITHMS[name]
    except KeyError:
        raise SchemaError(
            f"unknown join algorithm {name!r}; known: {sorted(JOIN_ALGORITHMS)}"
        ) from None
