"""Join algorithm implementations: hash join and sort-merge join.

:meth:`Relation.natural_join` uses a hash join internally; this module
exposes both a hash join and the sort-merge join the paper mentions in the
Theorem 2 cost analysis ("the joins of Step 2 can be performed, for example,
by sorting the two relations on the join attributes and merging"), plus a
pluggable dispatch used by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..errors import SchemaError
from .attributes import positions_of
from .relation import Relation, Row

JoinAlgorithm = Callable[[Relation, Relation], Relation]


def shared_attributes(left: Relation, right: Relation) -> Tuple[str, ...]:
    """Attributes common to both relations, in *left*'s column order."""
    right_set = set(right.attributes)
    return tuple(a for a in left.attributes if a in right_set)


def hash_join(left: Relation, right: Relation) -> Relation:
    """Natural join via hashing the smaller side on the shared attributes.

    Expected time O(|left| + |right| + |output|).
    """
    if len(right) < len(left):
        # Build on the smaller side, then restore left-major column order.
        swapped = hash_join(right, left)
        order = left.attributes + tuple(
            a for a in right.attributes if a not in set(left.attributes)
        )
        return swapped.project(order)
    return left.natural_join(right)


def sort_merge_join(left: Relation, right: Relation) -> Relation:
    """Natural join by sorting both sides on the shared attributes and merging.

    Time O(N log N + |output|) where N is the total input size — the bound
    used in the paper's accounting for Algorithm 1.  Join values must be
    mutually comparable; we sort by ``repr`` as a total-order fallback when
    values are heterogeneous.
    """
    shared = shared_attributes(left, right)
    if not shared:
        return left.natural_join(right)  # Cartesian product

    left_pos = positions_of(left.attributes, shared)
    right_pos = positions_of(right.attributes, shared)
    extra = tuple(a for a in right.attributes if a not in set(left.attributes))
    extra_pos = positions_of(right.attributes, extra)

    def sort_key(key: Row) -> Tuple:
        return tuple((type(v).__name__, repr(v)) for v in key)

    left_sorted: List[Row] = sorted(
        left.rows, key=lambda r: sort_key(tuple(r[p] for p in left_pos))
    )
    right_sorted: List[Row] = sorted(
        right.rows, key=lambda r: sort_key(tuple(r[p] for p in right_pos))
    )

    out: List[Row] = []
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        lk = tuple(left_sorted[i][p] for p in left_pos)
        rk = tuple(right_sorted[j][p] for p in right_pos)
        if sort_key(lk) < sort_key(rk):
            i += 1
        elif sort_key(lk) > sort_key(rk):
            j += 1
        else:
            # Collect the equal-key runs on both sides and emit their product.
            i_end = i
            while i_end < len(left_sorted) and tuple(
                left_sorted[i_end][p] for p in left_pos
            ) == lk:
                i_end += 1
            j_end = j
            while j_end < len(right_sorted) and tuple(
                right_sorted[j_end][p] for p in right_pos
            ) == rk:
                j_end += 1
            for li in range(i, i_end):
                for rj in range(j, j_end):
                    out.append(
                        left_sorted[li]
                        + tuple(right_sorted[rj][p] for p in extra_pos)
                    )
            i, j = i_end, j_end

    return Relation(left.attributes + extra, out)


#: Named registry used by the ablation benchmarks.
JOIN_ALGORITHMS: Dict[str, JoinAlgorithm] = {
    "hash": hash_join,
    "sort_merge": sort_merge_join,
}


def get_join_algorithm(name: str) -> JoinAlgorithm:
    """Look up a join algorithm by name; raises SchemaError if unknown."""
    try:
        return JOIN_ALGORITHMS[name]
    except KeyError:
        raise SchemaError(
            f"unknown join algorithm {name!r}; known: {sorted(JOIN_ALGORITHMS)}"
        ) from None
